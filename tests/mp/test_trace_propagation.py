"""Trace-context propagation over the mp wire codec, under failure.

Two regression guarantees from the wire-trace work ride here:

1. SIGKILL + restore: after a worker process dies and the service
   rebuilds its shard in a fresh process, relayed child spans — the
   restore replay included — still parent onto live parent-side span
   ids, so the latency waterfall stays one tree across process
   generations (child ids are pid-prefixed, so a respawn shows up as a
   brand-new id range).
2. A corrupted frame cannot orphan the worker's span stack: the wire
   trace context is adopted only *after* a frame fully decodes, so the
   command following a garbage frame parents under its own wire
   context, never a stale one.
"""

import os
import signal
import time

from repro.mp import codec
from repro.mp.supervisor import ShardProcessSupervisor
from repro.service.server import OccupancyMapService
from repro.telemetry import RingBufferSink, tracing

from tests.mp.test_process_backend import make_batches, make_config

#: Worker span ids are ``(pid << 40) | counter``; the parent process
#: allocates from 1 upward, so this bit cleanly splits the two ranges.
CHILD_ID_BASE = 1 << 40


def child_spans(spans):
    return [s for s in spans if s.span_id and s.span_id >= CHILD_ID_BASE]


def parent_side_ids(spans):
    return {s.span_id for s in spans if s.span_id and s.span_id < CHILD_ID_BASE}


def wire_rooted(events):
    """Relayed span events whose parent is a parent-process span id."""
    return [
        event
        for event in events
        if event.get("k") == "span"
        and "p" in event
        and event["p"] < CHILD_ID_BASE
    ]


class TestKillAndRestore:
    def test_relayed_spans_rejoin_the_tree_across_generations(self):
        ring = RingBufferSink()
        batches = make_batches()
        with tracing(ring):
            with OccupancyMapService(make_config()) as service:
                for batch in batches[:4]:
                    service.submit_observations(batch)
                service.flush()
                before = child_spans(ring.spans)
                assert before, "workers relayed no spans"
                pids_before = {span.span_id >> 40 for span in before}

                supervisor = service.map.supervisor
                victim = supervisor.pid_of(0)
                os.kill(victim, signal.SIGKILL)
                deadline = time.monotonic() + 10.0
                while supervisor.alive(0) and time.monotonic() < deadline:
                    time.sleep(0.01)
                assert not supervisor.alive(0), "worker survived SIGKILL"

                # Recovery is traffic-driven: keep submitting, the dead
                # shard is rebuilt (checkpoint + journal replay) in a
                # fresh process on first touch.
                for batch in batches[4:]:
                    service.submit_observations(batch)
                service.flush()

        spans = ring.spans
        children = child_spans(spans)
        pids_after = {span.span_id >> 40 for span in children}
        # The respawned worker has a new pid, hence a new id range.
        fresh_pids = pids_after - pids_before
        assert fresh_pids, "no spans arrived from the respawned process"
        # Every cross-process parent link resolves to a recorded
        # parent-side span: no dangling edges anywhere in the tree.
        known = parent_side_ids(spans)
        linked = [
            span
            for span in children
            if span.parent_id is not None and span.parent_id < CHILD_ID_BASE
        ]
        assert linked, "no child span carried wire trace context"
        for span in linked:
            assert span.parent_id in known, (
                f"{span.name} parents onto unknown id {span.parent_id}"
            )
        # And the new generation specifically produced linked spans —
        # the replayed batches re-parent correctly, not just pre-kill
        # traffic.
        assert [
            span for span in linked if (span.span_id >> 40) in fresh_pids
        ], "respawned worker's spans never joined the parent tree"


class TestCorruptFrame:
    def make_supervisor(self):
        supervisor = ShardProcessSupervisor(
            num_shards=1,
            worker_config={
                "resolution": 0.2,
                "depth": 6,
                "max_range": float("inf"),
            },
        )
        supervisor.start()
        return supervisor

    def exchange_apply(self, supervisor, parent_span):
        payload = codec.encode_observations(
            [((1, 2, 3), True), ((4, 5, 6), False)]
        )
        reply = supervisor.request(
            0, codec.MSG_APPLY, payload, parent_span=parent_span
        )
        _body, events = codec.decode_reply(reply.payload)
        return events

    def test_garbage_frame_does_not_orphan_the_span_stack(self):
        supervisor = self.make_supervisor()
        try:
            roots = wire_rooted(self.exchange_apply(supervisor, 111))
            assert roots, "apply relayed no wire-rooted spans"
            assert all(event["p"] == 111 for event in roots)

            # Inject garbage straight down the worker pipe (holding the
            # request lock so the exchange stays sequenced) and read the
            # ERROR frame back ourselves.
            with supervisor._locks[0]:
                conn = supervisor._workers[0].conn
                conn.send_bytes(b"\x00" * 64)
                assert conn.poll(10.0), "worker never answered the garbage"
                error = codec.decode_frame(conn.recv_bytes())
            assert error.type == codec.MSG_ERROR
            body, _events = codec.decode_reply(error.payload)
            assert b"CodecError" in body

            # The next command parents under its *own* wire context: a
            # failed decode pushed nothing, so nothing stale leaks.
            roots = wire_rooted(self.exchange_apply(supervisor, 222))
            assert roots
            assert all(event["p"] == 222 for event in roots)
            assert not [event for event in roots if event["p"] == 111]
        finally:
            supervisor.close()

    def test_restore_replay_parents_under_the_wire_context(self):
        supervisor = self.make_supervisor()
        try:
            batches = [
                [((1, 1, 1), True), ((2, 2, 2), True)],
                [((3, 3, 3), False)],
            ]
            reply = supervisor.request(
                0,
                codec.MSG_RESTORE,
                codec.encode_restore(None, 0, batches),
                parent_span=333,
            )
            body, events = codec.decode_reply(reply.payload)
            assert codec.decode_json(body) == {"replayed": 2}
            roots = wire_rooted(events)
            assert roots, "restore replay relayed no wire-rooted spans"
            assert all(event["p"] == 333 for event in roots)
        finally:
            supervisor.close()
