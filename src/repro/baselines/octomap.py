"""Vanilla OctoMap pipeline (the paper's primary baseline).

Every traced voxel observation — duplicates included — performs the full
root-to-leaf octree round trip (paper §2.2).  Queries are served from the
octree and, in the serial workflow, wait for the whole update to finish;
that waiting is what :meth:`critical_path_seconds` measures.
"""

from __future__ import annotations

from repro.baselines.interface import BatchRecord, MappingSystem
from repro.sensor.scaninsert import ScanBatch

__all__ = ["OctoMapPipeline"]


class OctoMapPipeline(MappingSystem):
    """OctoMap: ray tracing straight into the octree."""

    name = "OctoMap"

    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        tree = self._tree
        with self.timings.stage("octree_update") as watch, self.tracer.span(
            "octree_update", category="octree", voxels=len(batch)
        ):
            if self.kernel == "vector":
                tree.update_batch_bulk(
                    batch.keys_array(), batch.occupied_array()
                )
            else:
                for key, occupied in batch.observations:
                    tree.update_node(key, occupied)
        record.octree_update = watch.elapsed
