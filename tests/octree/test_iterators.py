"""Tests for bounding-box leaf iteration and occupancy extraction."""

import pytest

from repro.octree.iterators import (
    count_occupied,
    iter_leaves_in_box,
    occupied_keys_in_box,
)
from repro.octree.tree import OccupancyOctree

DEPTH = 6


def make_tree():
    return OccupancyOctree(resolution=0.1, depth=DEPTH)


class TestBoxIteration:
    def test_empty_tree_yields_nothing(self):
        tree = make_tree()
        assert list(iter_leaves_in_box(tree, (0, 0, 0), (63, 63, 63))) == []

    def test_finds_leaf_inside_box(self):
        tree = make_tree()
        tree.update_node((10, 10, 10), True)
        hits = list(iter_leaves_in_box(tree, (8, 8, 8), (12, 12, 12)))
        assert ((10, 10, 10), 0, pytest.approx(tree.params.delta_occupied)) in [
            (k, l, v) for k, l, v in hits
        ]

    def test_culls_outside_box(self):
        tree = make_tree()
        tree.update_node((10, 10, 10), True)
        tree.update_node((50, 50, 50), True)
        hits = list(iter_leaves_in_box(tree, (0, 0, 0), (20, 20, 20)))
        keys = [k for k, _l, _v in hits]
        assert (10, 10, 10) in keys
        assert (50, 50, 50) not in keys

    def test_invalid_box_raises(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            list(iter_leaves_in_box(tree, (5, 0, 0), (1, 10, 10)))

    def test_box_boundary_inclusive(self):
        tree = make_tree()
        tree.update_node((5, 5, 5), True)
        hits = list(iter_leaves_in_box(tree, (5, 5, 5), (5, 5, 5)))
        assert len(hits) == 1


class TestOccupiedExtraction:
    def test_occupied_keys_filter_free(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.update_node((2, 2, 2), False)
        occupied = occupied_keys_in_box(tree, (0, 0, 0), (5, 5, 5))
        assert (1, 1, 1) in occupied
        assert (2, 2, 2) not in occupied

    def test_pruned_block_expands_within_box(self):
        tree = make_tree()
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        tree.update_node((x, y, z), True)
        occupied = occupied_keys_in_box(tree, (0, 0, 0), (1, 1, 1))
        assert sorted(occupied) == [
            (x, y, z) for x in range(2) for y in range(2) for z in range(2)
        ]

    def test_pruned_block_clipped_to_box(self):
        tree = make_tree()
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        tree.update_node((x, y, z), True)
        occupied = occupied_keys_in_box(tree, (0, 0, 0), (0, 1, 1))
        assert all(key[0] == 0 for key in occupied)
        assert len(occupied) == 4


class TestCountOccupied:
    def test_counts_individual_voxels(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.update_node((2, 2, 2), True)
        tree.update_node((3, 3, 3), False)
        assert count_occupied(tree) == 2

    def test_counts_pruned_blocks_by_volume(self):
        tree = make_tree()
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        tree.update_node((x, y, z), True)
        assert count_occupied(tree) == 8
