"""Convenience wiring between the octree and the memory simulator.

Two instrumentation styles:

- **Recorded**: attach a :class:`~repro.simcache.trace.TraceRecorder` so
  the node-visit trace can be replayed later through different cache
  geometries (used by the Figure-10 ordering study).
- **Streaming**: attach a :class:`~repro.simcache.cost_model.MemoryHierarchy`
  directly, costing accesses as they happen without storing the trace
  (used when the trace would be too large to keep).
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree
from repro.simcache.cost_model import MemoryHierarchy, jetson_tx2_hierarchy
from repro.simcache.trace import TraceRecorder

__all__ = ["recorded_octree", "streaming_octree"]


def recorded_octree(
    resolution: float,
    depth: int = 16,
    params: Optional[OccupancyParams] = None,
) -> Tuple[OccupancyOctree, TraceRecorder]:
    """An octree plus the recorder capturing its node-visit trace."""
    recorder = TraceRecorder()
    tree = OccupancyOctree(
        resolution=resolution,
        depth=depth,
        params=params,
        visit_hook=recorder.record,
    )
    return tree, recorder


def streaming_octree(
    resolution: float,
    depth: int = 16,
    params: Optional[OccupancyParams] = None,
    hierarchy: Optional[MemoryHierarchy] = None,
) -> Tuple[OccupancyOctree, MemoryHierarchy]:
    """An octree whose every node visit is costed through ``hierarchy``.

    A fresh Jetson-TX2-like hierarchy is created when none is given; read
    ``hierarchy.total_cycles`` after the workload for the modeled cost.
    """
    hierarchy = hierarchy or jetson_tx2_hierarchy()
    tree = OccupancyOctree(
        resolution=resolution,
        depth=depth,
        params=params,
        visit_hook=hierarchy.access_node,
    )
    return tree, hierarchy
