"""Tracer core: span lifecycle, nesting, disabled-path behaviour."""

import threading

from repro.telemetry import (
    NULL_SPAN,
    RingBufferSink,
    Tracer,
    get_tracer,
    set_tracer,
    tracing,
)


def make_tracer():
    ring = RingBufferSink()
    return Tracer(sinks=[ring]), ring


class TestSpanLifecycle:
    def test_span_records_timing_and_attrs(self):
        tracer, ring = make_tracer()
        with tracer.span("work", category="cache", size=3) as span:
            span.set(extra=1)
        (recorded,) = ring.spans
        assert recorded.name == "work"
        assert recorded.category == "cache"
        assert recorded.duration >= 0.0
        assert recorded.start > 0.0
        assert recorded.attributes == {"size": 3, "extra": 1}
        assert recorded.thread_id == threading.get_ident()

    def test_nesting_sets_parent_ids(self):
        tracer, ring = make_tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert outer.parent_id is None
        # Inner closes (dispatches) first.
        assert [s.name for s in ring.spans] == ["inner", "outer"]

    def test_nesting_spans_separate_tracers(self):
        # The open-span stack is shared, so a span from one tracer
        # parents a span from another (service tracer + global tracer).
        tracer_a, ring_a = make_tracer()
        tracer_b, ring_b = make_tracer()
        with tracer_a.span("service-side") as outer:
            with tracer_b.span("pipeline-side") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert [s.name for s in ring_a.spans] == ["service-side"]
        assert [s.name for s in ring_b.spans] == ["pipeline-side"]

    def test_span_ids_unique_across_tracers(self):
        tracer_a, _ = make_tracer()
        tracer_b, _ = make_tracer()
        with tracer_a.span("a") as span_a:
            pass
        with tracer_b.span("b") as span_b:
            pass
        assert span_a.span_id != span_b.span_id

    def test_exception_recorded_and_stack_unwound(self):
        tracer, ring = make_tracer()
        try:
            with tracer.span("boom"):
                raise ValueError("x")
        except ValueError:
            pass
        (span,) = ring.spans
        assert span.attributes["error"] == "ValueError"
        # Stack unwound: the next span is a root again.
        with tracer.span("after") as after:
            pass
        assert after.parent_id is None

    def test_record_span_retroactive(self):
        tracer, ring = make_tracer()
        tracer.record_span("wait", "parallel", start=10.0, duration=0.5, n=2)
        (span,) = ring.spans
        assert span.start == 10.0
        assert span.duration == 0.5
        assert span.parent_id is None
        assert span.attributes == {"n": 2}

    def test_to_dict_round_trips_json(self):
        import json

        tracer, ring = make_tracer()
        with tracer.span("work", category="octree", voxels=7):
            pass
        record = json.loads(json.dumps(ring.spans[0].to_dict()))
        assert record["name"] == "work"
        assert record["cat"] == "octree"
        assert record["attrs"] == {"voxels": 7}


class TestDisabledPath:
    def test_disabled_span_is_shared_null(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("a") is NULL_SPAN
        assert tracer.span("b", category="cache", big=1) is NULL_SPAN

    def test_null_span_supports_full_api(self):
        with NULL_SPAN as span:
            assert span.set(anything=1) is NULL_SPAN
            assert span.duration == 0.0

    def test_disabled_count_and_record_are_noops(self):
        ring = RingBufferSink()
        tracer = Tracer(enabled=False, sinks=[ring])
        tracer.count("n", 5)
        tracer.record_span("x", "c", start=0.0, duration=1.0)
        assert len(ring) == 0
        assert ring.counts == {}

    def test_zero_count_not_dispatched(self):
        tracer, ring = make_tracer()
        tracer.count("n", 0)
        assert ring.counts == {}


class TestCountsAndDecorator:
    def test_counts_aggregate_by_category_and_name(self):
        tracer, ring = make_tracer()
        tracer.count("cache.hits", 3, category="cache")
        tracer.count("cache.hits", 2, category="cache")
        tracer.count("cache.hits", 2, category="other")
        assert ring.counts[("cache", "cache.hits")] == 5
        assert ring.counts[("other", "cache.hits")] == 2

    def test_trace_decorator_wraps_calls(self):
        tracer, ring = make_tracer()

        @tracer.trace("fn", category="pipeline")
        def double(x):
            return 2 * x

        assert double(4) == 8
        assert double.__name__ == "double"
        (span,) = ring.spans
        assert span.name == "fn"
        assert span.category == "pipeline"


class TestGlobalTracer:
    def test_global_starts_disabled(self):
        assert get_tracer().enabled is False

    def test_tracing_context_enables_in_place_and_restores(self):
        ring = RingBufferSink()
        held = get_tracer()  # captured before, like a pipeline would
        with tracing(ring):
            assert held.enabled
            with held.span("inside"):
                pass
        assert not held.enabled
        assert held.sinks == []
        assert [s.name for s in ring.spans] == ["inside"]
        # After exit: back to no-op.
        with held.span("outside"):
            pass
        assert len(ring) == 1

    def test_set_tracer_swaps_and_returns_previous(self):
        replacement = Tracer(enabled=False)
        previous = set_tracer(replacement)
        try:
            assert get_tracer() is replacement
        finally:
            set_tracer(previous)
        assert get_tracer() is previous


class TestThreadSafety:
    def test_concurrent_spans_keep_per_thread_parents(self):
        tracer, ring = make_tracer()
        errors = []

        def work(tag):
            try:
                for _ in range(200):
                    with tracer.span(f"outer-{tag}") as outer:
                        with tracer.span(f"inner-{tag}") as inner:
                            assert inner.parent_id == outer.span_id
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=work, args=(t,)) for t in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(ring) == 4 * 200 * 2
        ids = [s.span_id for s in ring.spans]
        assert len(set(ids)) == len(ids)
