"""Tests for octree merging and map comparison."""

import pytest

from repro.octree.merge import map_agreement, merge_many, merge_tree
from repro.octree.tree import OccupancyOctree

DEPTH = 6


def make_tree():
    return OccupancyOctree(resolution=0.1, depth=DEPTH)


class TestMerge:
    def test_accumulate_disjoint_regions(self):
        a = make_tree()
        b = make_tree()
        a.update_node((1, 1, 1), True)
        b.update_node((5, 5, 5), False)
        moved = merge_tree(a, b)
        assert moved == 1
        assert a.params.is_occupied(a.search((1, 1, 1)))
        assert not a.params.is_occupied(a.search((5, 5, 5)))

    def test_accumulate_adds_evidence(self):
        a = make_tree()
        b = make_tree()
        a.update_node((2, 2, 2), True)
        b.update_node((2, 2, 2), True)
        merge_tree(a, b)
        expected = a.params.accumulate(
            a.params.delta_occupied, a.params.delta_occupied
        )
        assert a.search((2, 2, 2)) == pytest.approx(expected)

    def test_accumulate_conflicting_evidence_cancels(self):
        a = make_tree()
        b = make_tree()
        a.update_node((2, 2, 2), True)
        b.update_node((2, 2, 2), True)
        # b also saw it free twice: net free evidence in b.
        b.update_node((2, 2, 2), False)
        b.update_node((2, 2, 2), False)
        merge_tree(a, b)
        value = a.search((2, 2, 2))
        expected = a.params.accumulate(a.params.delta_occupied, b_value_for((2, 2, 2)))
        assert value == pytest.approx(expected)

    def test_overwrite_replaces(self):
        a = make_tree()
        b = make_tree()
        a.update_node((3, 3, 3), True)
        b.update_node((3, 3, 3), False)
        merge_tree(a, b, strategy="overwrite")
        assert a.search((3, 3, 3)) == pytest.approx(-a.params.delta_free)

    def test_merge_pruned_source(self):
        a = make_tree()
        b = make_tree()
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        b.update_node((x, y, z), True)
        moved = merge_tree(a, b)
        assert moved == 8  # pruned block expands to 8 finest voxels
        assert a.search((1, 0, 1)) == pytest.approx(a.params.max_occ)

    def test_overwrite_disjoint_regions(self):
        """Overwrite on non-overlapping trees degenerates to a union —
        the sharded service's snapshot-export case."""
        a = make_tree()
        b = make_tree()
        a.update_node((1, 1, 1), True)
        b.update_node((5, 5, 5), True)
        b.update_node((6, 6, 6), False)
        moved = merge_tree(a, b, strategy="overwrite")
        assert moved == 2
        assert a.params.is_occupied(a.search((1, 1, 1)))
        assert a.params.is_occupied(a.search((5, 5, 5)))
        assert not a.params.is_occupied(a.search((6, 6, 6)))

    def test_overwrite_overlapping_keeps_source_values_only(self):
        a = make_tree()
        b = make_tree()
        for _ in range(5):
            a.update_node((2, 2, 2), True)
        b.update_node((2, 2, 2), True)
        merge_tree(a, b, strategy="overwrite")
        # a's five observations are gone; b's single one remains.
        assert a.search((2, 2, 2)) == pytest.approx(b.search((2, 2, 2)))

    def test_accumulate_into_empty_destination_copies(self):
        a = make_tree()
        b = make_tree()
        b.update_node((3, 4, 5), True)
        b.update_node((3, 4, 5), False)
        merge_tree(a, b)
        assert a.search((3, 4, 5)) == pytest.approx(b.search((3, 4, 5)))

    def test_empty_source_moves_nothing(self):
        a = make_tree()
        a.update_node((1, 1, 1), True)
        for strategy in ("accumulate", "overwrite"):
            assert merge_tree(a, make_tree(), strategy=strategy) == 0
        assert a.params.is_occupied(a.search((1, 1, 1)))

    def test_rejects_mismatched_geometry(self):
        a = make_tree()
        with pytest.raises(ValueError):
            merge_tree(a, OccupancyOctree(resolution=0.2, depth=DEPTH))
        with pytest.raises(ValueError):
            merge_tree(a, OccupancyOctree(resolution=0.1, depth=DEPTH - 1))
        with pytest.raises(ValueError):
            merge_tree(a, make_tree(), strategy="replace-all")


def b_value_for(key):
    """Recompute the value b accumulated for ``key`` in the cancel test."""
    tree = make_tree()
    tree.update_node(key, True)
    tree.update_node(key, False)
    tree.update_node(key, False)
    return tree.search(key)


class TestMergeMany:
    def test_disjoint_shards_union(self):
        shards = [make_tree() for _ in range(3)]
        shards[0].update_node((1, 1, 1), True)
        shards[1].update_node((9, 9, 9), True)
        shards[2].update_node((20, 20, 20), False)
        dest = make_tree()
        moved = merge_many(dest, shards, strategy="overwrite")
        assert moved == 3
        assert dest.params.is_occupied(dest.search((1, 1, 1)))
        assert dest.params.is_occupied(dest.search((9, 9, 9)))
        assert not dest.params.is_occupied(dest.search((20, 20, 20)))

    def test_later_source_wins_under_overwrite(self):
        first = make_tree()
        second = make_tree()
        first.update_node((2, 2, 2), True)
        second.update_node((2, 2, 2), False)
        dest = make_tree()
        merge_many(dest, [first, second], strategy="overwrite")
        assert not dest.params.is_occupied(dest.search((2, 2, 2)))

    def test_no_sources_is_a_noop(self):
        dest = make_tree()
        assert merge_many(dest, []) == 0
        assert dest.num_nodes == 0


class TestAgreement:
    def test_identical_maps(self):
        a = make_tree()
        a.update_node((1, 2, 3), True)
        a.update_node((4, 5, 6), False)
        report = map_agreement(a, a)
        assert report.compared == 2
        assert report.decision_agreement == 1.0
        assert report.missing == 0

    def test_missing_counted(self):
        a = make_tree()
        a.update_node((1, 2, 3), True)
        empty = make_tree()
        report = map_agreement(a, empty)
        assert report.missing == 1
        assert report.decision_agreement == 0.0

    def test_disagreement_counted(self):
        a = make_tree()
        b = make_tree()
        a.update_node((1, 2, 3), True)
        b.update_node((1, 2, 3), False)
        report = map_agreement(a, b)
        assert report.compared == 1
        assert report.matching == 0

    def test_empty_reference(self):
        report = map_agreement(make_tree(), make_tree())
        assert report.decision_agreement == 1.0

    def test_empty_reference_against_populated_other(self):
        """Agreement iterates the reference: an empty reference compares
        zero voxels regardless of what the other map holds."""
        other = make_tree()
        other.update_node((1, 2, 3), True)
        report = map_agreement(make_tree(), other)
        assert report.compared == 0
        assert report.missing == 0
        assert report.decision_agreement == 1.0

    def test_identical_after_merge_roundtrip(self):
        a = make_tree()
        for key in [(1, 1, 1), (2, 3, 4), (8, 8, 8)]:
            a.update_node(key, True)
        copy = make_tree()
        merge_tree(copy, a, strategy="overwrite")
        report = map_agreement(a, copy)
        assert report.compared == 3
        assert report.matching == 3
        assert report.missing == 0
