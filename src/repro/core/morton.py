"""3-D Morton codes (Z-order curve) as used by OctoCache (paper §4.3).

A Morton code interleaves the bits of three integer coordinates into a single
integer.  Two properties make it central to OctoCache:

1. **Bucket indexing** — the Morton OctoCache locates a cache bucket with
   ``M(v) % w`` instead of a generic hash, so that sequential bucket eviction
   emits voxels in Morton order (paper §4.3, implementation details).
2. **Optimal octree insertion order** — sorting voxels by Morton code of
   their discrete coordinates minimises the locality functional
   :func:`repro.core.locality.locality_cost` over the octree, which is the
   paper's main theorem.  Intuitively, adjacent codes share long key
   prefixes, hence long chains of common octree ancestors.

Both scalar and numpy-vectorised encoders are provided.  Scalar encoding
uses 8-bit dilation lookup tables (the classic Stocco & Schrack technique
the paper cites), vectorised encoding uses numpy magic-number dilation.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "MAX_COORD_BITS",
    "dilate3",
    "contract3",
    "morton_encode3",
    "morton_decode3",
    "morton_encode3_array",
    "morton_decode3_array",
    "morton_sort",
    "morton_argsort",
    "common_prefix_depth",
]

#: Maximum number of bits per coordinate supported by the scalar encoder.
#: 21 bits/axis fills 63 bits, matching a 21-level octree — deeper than the
#: 16-level tree of the paper's standard configuration.
MAX_COORD_BITS = 21

# ---------------------------------------------------------------------------
# Dilation tables: _DILATE_TABLE[b] spreads the 8 bits of b to every 3rd bit.
# ---------------------------------------------------------------------------


def _build_dilate_table() -> List[int]:
    table = []
    for value in range(256):
        spread = 0
        for bit in range(8):
            if value & (1 << bit):
                spread |= 1 << (3 * bit)
        table.append(spread)
    return table


_DILATE_TABLE: List[int] = _build_dilate_table()


def dilate3(value: int) -> int:
    """Spread the bits of ``value`` so bit *i* moves to bit *3i*.

    ``dilate3(0b111) == 0b001001001``.  Supports up to
    :data:`MAX_COORD_BITS` input bits.
    """
    if value < 0:
        raise ValueError(f"coordinate must be non-negative, got {value}")
    if value >> MAX_COORD_BITS:
        raise ValueError(
            f"coordinate {value} exceeds {MAX_COORD_BITS} bits supported by dilate3"
        )
    return (
        _DILATE_TABLE[value & 0xFF]
        | (_DILATE_TABLE[(value >> 8) & 0xFF] << 24)
        | (_DILATE_TABLE[(value >> 16) & 0xFF] << 48)
    )


def contract3(value: int) -> int:
    """Inverse of :func:`dilate3`: gather every 3rd bit back together."""
    result = 0
    bit = 0
    while value:
        if value & 1:
            result |= 1 << bit
        value >>= 3
        bit += 1
    return result


def morton_encode3(x: int, y: int, z: int) -> int:
    """Interleave three non-negative integer coordinates into a Morton code.

    Per bit level the x bit is most significant, then y, then z: level *i*
    contributes ``(x_i, y_i, z_i)`` as one 3-bit group, so
    ``morton_encode3(1, 5, 3)`` with x=001, y=101, z=011 yields the groups
    ``(0,1,0)(0,0,1)(1,1,1)`` = ``0b010001111`` = 143.  (The paper's worked
    example in §4.3 concatenates the same per-level groups with a different
    axis convention and prints 167; the optimality theorem holds for any
    fixed axis permutation, and each 3-bit group here directly indexes the
    child chosen along the octree's root-to-leaf path.)
    """
    return (dilate3(x) << 2) | (dilate3(y) << 1) | dilate3(z)


def morton_decode3(code: int) -> Tuple[int, int, int]:
    """Invert :func:`morton_encode3` back into ``(x, y, z)``."""
    if code < 0:
        raise ValueError(f"Morton code must be non-negative, got {code}")
    return (
        contract3((code >> 2) & 0o111111111111111111111),
        contract3((code >> 1) & 0o111111111111111111111),
        contract3(code & 0o111111111111111111111),
    )


# ---------------------------------------------------------------------------
# Vectorised variants (numpy, magic-number dilation for 21-bit coordinates).
# ---------------------------------------------------------------------------


def _dilate3_array(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return v


def morton_encode3_array(
    x: np.ndarray, y: np.ndarray, z: np.ndarray
) -> np.ndarray:
    """Vectorised :func:`morton_encode3` over equal-length integer arrays."""
    x = np.asarray(x)
    y = np.asarray(y)
    z = np.asarray(z)
    if np.any(x < 0) or np.any(y < 0) or np.any(z < 0):
        raise ValueError("coordinates must be non-negative")
    if (
        np.any(x >> MAX_COORD_BITS)
        or np.any(y >> MAX_COORD_BITS)
        or np.any(z >> MAX_COORD_BITS)
    ):
        raise ValueError(f"coordinates exceed {MAX_COORD_BITS} bits")
    return (
        (_dilate3_array(x) << np.uint64(2))
        | (_dilate3_array(y) << np.uint64(1))
        | _dilate3_array(z)
    )


def _contract3_array(values: np.ndarray) -> np.ndarray:
    v = values.astype(np.uint64) & np.uint64(0x1249249249249249)
    v = (v | (v >> np.uint64(2))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v >> np.uint64(4))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v >> np.uint64(8))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v >> np.uint64(16))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v >> np.uint64(32))) & np.uint64(0x1FFFFF)
    return v


def morton_decode3_array(codes: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Vectorised :func:`morton_decode3`; returns ``(x, y, z)`` arrays."""
    codes = np.asarray(codes, dtype=np.uint64)
    return (
        _contract3_array(codes >> np.uint64(2)),
        _contract3_array(codes >> np.uint64(1)),
        _contract3_array(codes),
    )


# ---------------------------------------------------------------------------
# Ordering helpers.
# ---------------------------------------------------------------------------


def morton_sort(
    coords: Iterable[Tuple[int, int, int]]
) -> List[Tuple[int, int, int]]:
    """Return voxel coordinates sorted ascending by Morton code.

    This is the ordering the paper proves optimal for octree insertion.
    """
    return sorted(coords, key=lambda c: morton_encode3(*c))


def morton_argsort(coords: Sequence[Tuple[int, int, int]]) -> List[int]:
    """Return indices that sort ``coords`` by Morton code (stable)."""
    return sorted(range(len(coords)), key=lambda i: morton_encode3(*coords[i]))


def common_prefix_depth(code_a: int, code_b: int, levels: int) -> int:
    """Number of leading 3-bit groups shared by two Morton codes.

    For leaf voxels of an ``levels``-deep octree this equals the depth of
    their closest common ancestor: each 3-bit group selects one child along
    the root-to-leaf path, so a shared prefix is a shared ancestor chain.
    """
    if levels < 0:
        raise ValueError(f"levels must be non-negative, got {levels}")
    depth = 0
    for level in range(levels - 1, -1, -1):
        shift = 3 * level
        if (code_a >> shift) & 0b111 != (code_b >> shift) & 0b111:
            break
        depth += 1
    return depth
