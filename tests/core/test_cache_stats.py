"""Focused tests for CacheStats bookkeeping."""

from repro.core.cache import CacheStats, VoxelCache
from repro.core.config import CacheConfig


class TestCacheStats:
    def test_fresh_stats(self):
        stats = CacheStats()
        assert stats.insertions == 0
        assert stats.hit_ratio == 0.0

    def test_flush_counts_as_evicted(self):
        cache = VoxelCache(CacheConfig(num_buckets=4, bucket_threshold=4))
        for i in range(6):
            cache.insert((i, 0, 0), True)
        cache.flush()
        assert cache.stats.evicted == 6

    def test_query_counters_separate_from_insert(self):
        cache = VoxelCache(CacheConfig(num_buckets=4, bucket_threshold=4))
        cache.insert((1, 1, 1), True)
        cache.query((1, 1, 1))
        cache.query((2, 2, 2))
        stats = cache.stats
        assert stats.hits == 0  # first insert was a miss
        assert stats.misses == 1
        assert stats.query_hits == 1
        assert stats.query_misses == 1

    def test_standalone_cache_without_backend(self):
        cache = VoxelCache(CacheConfig(num_buckets=4, bucket_threshold=2))
        value = cache.insert((1, 2, 3), True)
        assert value == cache.params.update(cache.params.threshold, True)
        assert cache.query((9, 9, 9)) is None  # no backend: just None

    def test_hit_ratio_over_lifetime(self):
        cache = VoxelCache(CacheConfig(num_buckets=16, bucket_threshold=4))
        for _ in range(3):
            cache.insert((1, 1, 1), True)
        assert cache.stats.hit_ratio == 2 / 3
