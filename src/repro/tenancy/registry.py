"""``TenantRegistry``: many occupancy maps on one shared shard pool.

A fleet operator runs *one* OctoCache service and hosts every robot's
map in it.  The registry multiplexes tenants onto the service's existing
shards rather than dedicating shards per tenant:

- **Placement** — each tenant routes with its own salted
  :class:`~repro.service.sharding.ShardRouter`
  (``salt = tenant_salt(name)``), so ``(tenant, voxel)`` is
  consistent-hashed onto the shared pool and identically shaped maps
  from different robots do not pile their hot blocks onto the same
  shards.  On a shard, each tenant owns a private ``(shard, tenant)``
  pipeline slot (see :meth:`ShardedMap.apply_to_shard` /
  :meth:`ProcessShardedMap.apply_to_shard`), so tenants never share
  voxel state.
- **Fairness** — one dispatcher thread per shard drains per-tenant
  deques round-robin (deficit round robin with a one-slice quantum): a
  tenant replaying a log at memory speed gets one slice per turn, same
  as a tenant trickling live scans.
- **Quotas** — submissions pass a per-tenant token bucket (scans/s) and
  an all-or-nothing queue-slot reservation (one slot per target shard
  slice); a rejected submission leaves the tenant's map byte-identical.
- **Lifecycle** — every accepted slice is journaled into the tenant's
  own :class:`~repro.resilience.recovery.CheckpointStore` *before* it is
  applied; ``persist`` snapshots each shard slice (CRC'd serialize-v2),
  ``evict`` persists then frees the tenant's memory, and ``restore``
  rebuilds the map bit-exactly from snapshot + journal-tail replay —
  the same recovery machinery shard crashes already use, pointed at a
  tenant.  On the process backend the registry also installs itself as
  ``map.tenant_recovery_source``, so a SIGKILLed worker process lazily
  rebuilds every tenant slot it hosted from the tenant journals.
- **Streaming** — subscribers get leaf deltas since their cursor
  (:mod:`repro.tenancy.changelog`); capture costs one keyed read per
  written voxel and is skipped while a tenant has no subscribers.

Per-tenant counters land in the service's own
:class:`~repro.service.metrics.MetricsRegistry` under
``tenant.<what>.<name>`` (the per-shard ``queue_depth.shard<i>``
convention, extended to tenants), so ``/metrics`` exports them with no
exposition changes; ``/tenants`` (:mod:`repro.obs.admin`) serves
:meth:`TenantRegistry.tenants_dict`.
"""

from __future__ import annotations

import enum
import hashlib
import threading
import time
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.memsight.report import MemoryReport
from repro.octree.key import VoxelKey
from repro.octree.merge import merge_tree
from repro.octree.tree import OccupancyOctree
from repro.resilience.recovery import CheckpointStore
from repro.service.sharding import ShardRouter
from repro.tenancy.changelog import ChangeLog, Subscription
from repro.tenancy.quota import TenantQuota

__all__ = [
    "Tenant",
    "TenantQuotaExceeded",
    "TenantReceipt",
    "TenantRegistry",
    "TenantState",
    "tenant_salt",
]


def tenant_salt(name: str) -> int:
    """A stable 64-bit routing salt for one tenant id.

    blake2b keyed by nothing and truncated to 8 bytes: stable across
    processes and Python versions (unlike ``hash()``), so an evicted
    tenant restored on a fresh service lands its voxels on the same
    shards it journaled them for.
    """
    digest = hashlib.blake2b(name.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little")


class TenantState(str, enum.Enum):
    """Lifecycle of one tenant.

    ``ACTIVE`` accepts scans and answers queries; ``EVICTED`` holds only
    the durable snapshot + journal (no shard memory) until
    :meth:`TenantRegistry.restore` rebuilds it bit-exactly.
    """

    ACTIVE = "active"
    EVICTED = "evicted"


class TenantQuotaExceeded(RuntimeError):
    """A ``must_accept`` submission was rejected by the tenant's quota.

    All-or-nothing: when this raises, nothing was enqueued and the
    tenant's map is untouched.
    """


@dataclass(frozen=True)
class TenantReceipt:
    """What happened to one tenant-scoped submission.

    ``reason`` is empty on acceptance, else ``"rate"`` (token bucket) or
    ``"slots"`` (queue-slot quota) — the axis that rejected it.
    """

    observations: int
    enqueued: int
    rejected: int
    reason: str = ""

    @property
    def accepted(self) -> bool:
        return self.rejected == 0


class _SlotPool:
    """A counted pool supporting atomic multi-slot reservation.

    ``threading.Semaphore`` cannot reserve N slots atomically, and
    all-or-nothing admission needs exactly that: either every target
    shard slice gets a slot or none does.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._free = capacity
        self._lock = threading.Lock()

    def try_reserve(self, count: int) -> bool:
        with self._lock:
            if self._free >= count:
                self._free -= count
                return True
            return False

    def release(self, count: int = 1) -> None:
        with self._lock:
            self._free = min(self.capacity, self._free + count)

    @property
    def free(self) -> int:
        with self._lock:
            return self._free


class Tenant:
    """One hosted map: routing, durability, quota, and accounting."""

    def __init__(
        self,
        name: str,
        slot: int,
        router: ShardRouter,
        store: CheckpointStore,
        quota: TenantQuota,
        changelog_capacity: int,
    ) -> None:
        self.name = name
        self.slot = slot
        self.router = router
        self.store = store
        self.quota = quota
        self.bucket = quota.make_bucket()
        self.slots = _SlotPool(quota.queue_slots)
        self.state = TenantState.ACTIVE
        self.changelog = ChangeLog(changelog_capacity)
        #: Enqueued-but-unapplied shard slices (guarded by the registry's
        #: flush condition variable).
        self.outstanding = 0
        self.submitted_observations = 0
        self.served_observations = 0
        self.rejected_observations = 0

    def to_dict(self) -> Dict[str, object]:
        num_shards = self.router.num_shards
        return {
            "slot": self.slot,
            "state": self.state.value,
            "submitted_observations": self.submitted_observations,
            "served_observations": self.served_observations,
            "rejected_observations": self.rejected_observations,
            "pending_slices": self.outstanding,
            "quota": self.quota.to_dict(),
            "queue_slots_free": self.slots.free,
            "changelog": self.changelog.stats(),
            "journal_entries": sum(
                self.store.journal_length(shard) for shard in range(num_shards)
            ),
        }

    def memory_breakdown(self, exact: bool = False) -> MemoryReport:
        """Registry-owned state: the tenant's journals + changelog ring.

        Map slot bytes are deliberately *not* here — they already live
        under the map component (``map/shard<i>/tenant<slot>``), and a
        component tree must not double-count.  Per-tenant attribution
        that combines both views is
        :meth:`TenantRegistry.tenant_memory_bytes`.
        """
        return MemoryReport(
            f"tenant{self.slot}",
            children=[
                self.store.memory_breakdown(exact=exact),
                self.changelog.memory_breakdown(exact=exact),
            ],
        )


class TenantRegistry:
    """Hosts many tenants' maps on one service's shared shard pool.

    Args:
        service: a running
            :class:`~repro.service.server.OccupancyMapService`; the
            registry shares its map backend (both worker backends work),
            its metrics registry, and — once constructed — announces
            itself as ``service.tenant_registry`` so the admin server's
            ``/tenants`` route finds it.
        default_quota: quota for tenants created without an explicit one.
        changelog_capacity: per-tenant change-log ring size (deltas).
        checkpoint_dir: when set, tenant snapshots are persisted under
            ``<dir>/tenant-<slot>/shard-<i>.oct``.

    Typical use::

        registry = TenantRegistry(service)
        registry.create("robot-7")
        registry.submit_observations("robot-7", batch.observations)
        registry.flush("robot-7")
        registry.evict("robot-7")      # persist + free shard memory
        registry.restore("robot-7")    # bit-exact rebuild
    """

    def __init__(
        self,
        service,
        default_quota: Optional[TenantQuota] = None,
        changelog_capacity: int = 65536,
        checkpoint_dir: Optional[str] = None,
    ) -> None:
        self.service = service
        self.map = service.map
        self.metrics = service.metrics
        self.num_shards = service.config.num_shards
        self.default_quota = default_quota or TenantQuota()
        self.changelog_capacity = changelog_capacity
        self.checkpoint_dir = checkpoint_dir
        self._tenants: Dict[str, Tenant] = {}
        self._by_slot: Dict[int, Tenant] = {}
        self._next_slot = 1
        self._lock = threading.RLock()
        self._cv = threading.Condition()
        self._errors: List[BaseException] = []
        self._stopped = False
        self._closed = False
        # Per-shard dispatch state: a deque of slices per (tenant) slot,
        # and an "active ring" of slots with pending work.  The ring is
        # the round-robin: dispatchers take one slice per slot per turn.
        self._shard_cvs = [threading.Condition() for _ in range(self.num_shards)]
        self._pending: List[Dict[int, Deque[List[Tuple[VoxelKey, bool]]]]] = [
            {} for _ in range(self.num_shards)
        ]
        self._rings: List[Deque[int]] = [deque() for _ in range(self.num_shards)]
        self._dispatchers = [
            threading.Thread(
                target=self._dispatch_loop,
                args=(shard_id,),
                name=f"octocache-tenant-shard-{shard_id}",
                daemon=True,
            )
            for shard_id in range(self.num_shards)
        ]
        for thread in self._dispatchers:
            thread.start()
        # Process backend: a SIGKILLed worker lazily rebuilds the tenant
        # slots it hosted from the tenant journals, exactly like the
        # default map's sibling-shard restore.
        if hasattr(self.map, "tenant_recovery_source"):
            self.map.tenant_recovery_source = self._tenant_recovery_state
        #: Advisory per-tenant pressure flags (name -> level) from the
        #: service's PressureMonitor; surfaced in ``/tenants``.  The
        #: hook only *observes* — nothing is shed or evicted here.
        self._pressure_flags: Dict[str, str] = {}
        pressure = getattr(service, "pressure", None)
        if pressure is not None:
            pressure.on_pressure = self._on_pressure
        service.tenant_registry = self

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def create(
        self, name: str, quota: Optional[TenantQuota] = None
    ) -> Tenant:
        """Admit a new tenant (fresh empty map, ACTIVE)."""
        self._check_open()
        with self._lock:
            if name in self._tenants:
                raise ValueError(f"tenant {name!r} already exists")
            slot = self._next_slot
            self._next_slot += 1
            directory = None
            if self.checkpoint_dir is not None:
                import os

                directory = os.path.join(self.checkpoint_dir, f"tenant-{slot}")
            tenant = Tenant(
                name=name,
                slot=slot,
                router=ShardRouter(
                    self.num_shards,
                    self.service.config.depth,
                    salt=tenant_salt(name),
                ),
                store=CheckpointStore(self.num_shards, directory=directory),
                quota=quota or self.default_quota,
                changelog_capacity=self.changelog_capacity,
            )
            self._tenants[name] = tenant
            self._by_slot[slot] = tenant
        self.metrics.state(f"tenant_state.{name}", initial="active")
        self.metrics.gauge("tenant.count").set(len(self._tenants))
        return tenant

    def get(self, name: str) -> Tenant:
        with self._lock:
            tenant = self._tenants.get(name)
        if tenant is None:
            raise KeyError(f"unknown tenant {name!r}")
        return tenant

    def names(self) -> List[str]:
        with self._lock:
            return sorted(self._tenants)

    def persist(self, name: str) -> int:
        """Checkpoint every shard slice of one tenant; returns the number
        of shards snapshotted.

        Drains the tenant's pending slices first, so each snapshot
        covers exactly the journal entries applied so far.  A shard
        whose snapshot fails (e.g. its worker process just died) is
        skipped — its previous checkpoint stays valid and recovery just
        replays a longer journal tail, so ``persist`` degrades to
        journal-only durability instead of failing the tenant.
        """
        tenant = self._require_active(name)
        self.flush(name)
        written = 0
        for shard_id in range(self.num_shards):
            upto = tenant.store.journal_length(shard_id)
            try:
                blob = self.map.shard_snapshot_blob(shard_id, tenant=tenant.slot)
                tenant.store.write_snapshot_blob(shard_id, blob, upto)
                written += 1
            except Exception:
                self.metrics.counter("tenant.persist_failures").inc()
        self.metrics.counter(f"tenant.persists.{name}").inc()
        return written

    def evict(self, name: str) -> None:
        """Persist one tenant, then free every shard slice it owns.

        The evicted tenant keeps only its durable snapshot (plus the
        journal tail of any shard whose snapshot failed): map slots are
        dropped, journals are compacted below the checkpoint, and the
        changelog ring is cleared (subscribers see ``truncated`` and
        resync).  Its in-memory footprint returns to the baseline —
        :meth:`restore` rebuilds the exact map.  Queries and submissions
        against an evicted tenant raise until then.
        """
        tenant = self._require_active(name)
        self.persist(name)
        tenant.state = TenantState.EVICTED
        self.map.drop_tenant(tenant.slot)
        for shard_id in range(self.num_shards):
            tenant.store.compact(shard_id)
        tenant.changelog.clear()
        self.metrics.state(f"tenant_state.{name}").set("evicted")
        self.metrics.counter(f"tenant.evictions.{name}").inc()

    def restore(self, name: str) -> None:
        """Rebuild an evicted tenant bit-exactly from its checkpoints.

        Per shard: latest snapshot + the journal tail it doesn't cover,
        through the same :func:`restore_pipeline` replay shard-crash
        recovery uses — so the restored map answers every query exactly
        as it did at eviction.
        """
        tenant = self.get(name)
        if tenant.state is TenantState.ACTIVE:
            raise RuntimeError(f"tenant {name!r} is active; nothing to restore")
        for shard_id in range(self.num_shards):
            checkpoint, tail = tenant.store.recovery_state(shard_id)
            if checkpoint is None and not tail:
                continue
            self.map.restore_shard(
                shard_id, checkpoint, tail, tenant=tenant.slot
            )
        tenant.state = TenantState.ACTIVE
        self.metrics.state(f"tenant_state.{name}").set("active")
        self.metrics.counter(f"tenant.restores.{name}").inc()

    def _tenant_recovery_state(self, slot: int, shard_id: int):
        """``map.tenant_recovery_source`` hook (process backend): the
        snapshot + journal tail that rebuilds one tenant's shard slice
        after its worker process died."""
        with self._lock:
            tenant = self._by_slot.get(slot)
        if tenant is None:
            return None, []
        return tenant.store.recovery_state(shard_id)

    # ------------------------------------------------------------------
    # Ingest path.
    # ------------------------------------------------------------------

    def submit_observations(
        self,
        name: str,
        observations: Sequence[Tuple[VoxelKey, bool]],
        must_accept: bool = False,
    ) -> TenantReceipt:
        """Admit one pre-traced scan into a tenant's map.

        Admission is all-or-nothing per scan: one token from the
        tenant's rate bucket, then one queue slot per non-empty target
        shard slice reserved atomically.  Either everything is enqueued
        or nothing is; with ``must_accept`` a rejection raises
        :class:`TenantQuotaExceeded` instead of returning a receipt.
        """
        self._check_open()
        tenant = self._require_active(name)
        total = len(observations)
        tenant.submitted_observations += total
        self.metrics.counter(f"tenant.submitted.{name}").inc(total)
        # The registry shares the service's ingest SLO surface: these
        # are the same counters/histograms load-bench and /slo evaluate,
        # so the knee detector works identically in fleet mode.
        self.service.tracer.count("ingest.requests", category="service")
        if not tenant.bucket.try_acquire(1.0):
            return self._reject(tenant, total, "rate", must_accept)
        parts = tenant.router.partition(observations)
        targets = [
            (shard_id, part) for shard_id, part in enumerate(parts) if part
        ]
        if not targets:
            return TenantReceipt(observations=total, enqueued=0, rejected=0)
        if not tenant.slots.try_reserve(len(targets)):
            return self._reject(tenant, total, "slots", must_accept)
        with self._cv:
            tenant.outstanding += len(targets)
        submitted_at = time.perf_counter()
        for shard_id, part in targets:
            with self._shard_cvs[shard_id]:
                queue = self._pending[shard_id].get(tenant.slot)
                if queue is None:
                    queue = deque()
                    self._pending[shard_id][tenant.slot] = queue
                    self._rings[shard_id].append(tenant.slot)
                queue.append((part, submitted_at))
                self._shard_cvs[shard_id].notify()
        self.metrics.gauge(f"tenant.pending.{name}").set(tenant.outstanding)
        return TenantReceipt(observations=total, enqueued=total, rejected=0)

    def _reject(
        self, tenant: Tenant, total: int, reason: str, must_accept: bool
    ) -> TenantReceipt:
        tenant.rejected_observations += total
        self.metrics.counter(f"tenant.rejected.{tenant.name}").inc(total)
        self.metrics.counter(f"tenant.rejected_scans.{tenant.name}").inc()
        self.service.tracer.count("ingest.rejected_batches", category="service")
        if must_accept:
            raise TenantQuotaExceeded(
                f"tenant {tenant.name!r} quota rejected the scan "
                f"({reason}); nothing was enqueued"
            )
        return TenantReceipt(
            observations=total, enqueued=0, rejected=total, reason=reason
        )

    def _dispatch_loop(self, shard_id: int) -> None:
        cv = self._shard_cvs[shard_id]
        pending = self._pending[shard_id]
        ring = self._rings[shard_id]
        while True:
            with cv:
                while not ring and not self._stopped:
                    cv.wait()
                if not ring:
                    return  # stopped and drained
                slot = ring.popleft()
                part, submitted_at = pending[slot].popleft()
                if pending[slot]:
                    ring.append(slot)  # one slice per turn: round robin
                else:
                    del pending[slot]
            self._apply_slice(shard_id, slot, part, submitted_at)

    def _apply_slice(
        self,
        shard_id: int,
        slot: int,
        part: List[Tuple[VoxelKey, bool]],
        submitted_at: float,
    ) -> None:
        with self._lock:
            tenant = self._by_slot.get(slot)
        try:
            if tenant is None or tenant.state is not TenantState.ACTIVE:
                return
            # Journal before applying — same invariant as the service's
            # shard workers, so a crash mid-apply (or mid-evict) rebuilds
            # the slice from the tenant journal.
            tenant.store.append(shard_id, part)
            self.map.apply_to_shard(shard_id, part, tenant=slot)
            applied_at = time.perf_counter()
            # Same span names the service's shard workers emit, so the
            # fleet's end-to-end/freshness latency lands in the very
            # histograms the SLO engine and load-bench evaluate.
            for span_name in ("ingest.e2e", "ingest.freshness"):
                self.service.tracer.record_span(
                    span_name,
                    "service",
                    start=submitted_at,
                    duration=max(0.0, applied_at - submitted_at),
                    shard=shard_id,
                    observations=len(part),
                    tenant=tenant.name,
                )
            tenant.served_observations += len(part)
            self.metrics.counter(f"tenant.served.{tenant.name}").inc(len(part))
            if tenant.changelog.active:
                self._capture_deltas(shard_id, tenant, part)
        except BaseException as error:
            with self._cv:
                self._errors.append(error)
        finally:
            if tenant is not None:
                tenant.slots.release(1)
                with self._cv:
                    tenant.outstanding -= 1
                    self._cv.notify_all()
                self.metrics.gauge(f"tenant.pending.{tenant.name}").set(
                    tenant.outstanding
                )
            else:
                with self._cv:
                    self._cv.notify_all()

    def _capture_deltas(
        self,
        shard_id: int,
        tenant: Tenant,
        part: List[Tuple[VoxelKey, bool]],
    ) -> None:
        """Record ``(key, post-apply value)`` for each voxel the slice
        touched — the accumulated value a query would answer right now,
        which is what subscribers replicate."""
        keys: List[VoxelKey] = []
        seen = set()
        for key, _occupied in part:
            if key not in seen:
                seen.add(key)
                keys.append(key)
        values = self.map.query_keys_in_shard(
            shard_id, keys, tenant=tenant.slot
        )
        tenant.changelog.record(
            [
                (key, value)
                for key, value in zip(keys, values)
                if value is not None
            ]
        )

    # ------------------------------------------------------------------
    # Query path and subscriptions.
    # ------------------------------------------------------------------

    def query_key(self, name: str, key: VoxelKey) -> Optional[float]:
        """Log-odds occupancy of one voxel in one tenant's map."""
        tenant = self._require_active(name)
        shard_id = tenant.router.shard_of(key)
        return self.map.query_keys_in_shard(
            shard_id, [key], tenant=tenant.slot
        )[0]

    def query_keys(
        self, name: str, keys: Sequence[VoxelKey]
    ) -> List[Optional[float]]:
        """Batch keyed query against one tenant's map (order preserved)."""
        tenant = self._require_active(name)
        parts: Dict[int, List[Tuple[int, VoxelKey]]] = {}
        for index, key in enumerate(keys):
            parts.setdefault(tenant.router.shard_of(key), []).append(
                (index, key)
            )
        answers: List[Optional[float]] = [None] * len(keys)
        for shard_id, indexed in parts.items():
            values = self.map.query_keys_in_shard(
                shard_id, [key for _i, key in indexed], tenant=tenant.slot
            )
            for (index, _key), value in zip(indexed, values):
                answers[index] = value
        return answers

    def snapshot(self, name: str) -> OccupancyOctree:
        """One tenant's whole map as a single octree (union of its
        per-shard authoritative trees — disjoint by routing)."""
        tenant = self._require_active(name)
        tree = OccupancyOctree(
            resolution=self.service.config.resolution,
            depth=self.service.config.depth,
            params=self.map.params,
        )
        for shard_id in range(self.num_shards):
            merge_tree(
                tree,
                self.map.shard_snapshot_tree(shard_id, tenant=tenant.slot),
                strategy="overwrite",
            )
        return tree

    def subscribe(self, name: str) -> Subscription:
        """Open a map-diff stream on one tenant (see ``changelog.py``).

        Delta capture starts with the first subscription and stops with
        the last close, so unobserved tenants pay nothing.
        """
        return self.get(name).changelog.subscribe()

    # ------------------------------------------------------------------
    # Barriers, introspection, shutdown.
    # ------------------------------------------------------------------

    def flush(self, name: Optional[str] = None) -> None:
        """Wait until a tenant's (or every tenant's) slices are applied.

        Raises the first dispatcher error, like the service's ``flush``.
        """
        with self._cv:
            while not self._errors:
                if name is None:
                    with self._lock:
                        tenants = list(self._tenants.values())
                    busy = any(t.outstanding > 0 for t in tenants)
                else:
                    busy = self.get(name).outstanding > 0
                if not busy:
                    break
                self._cv.wait()
        self._raise_errors()

    def _raise_errors(self) -> None:
        with self._cv:
            if not self._errors:
                return
            errors, self._errors = self._errors, []
        raise RuntimeError(
            f"{len(errors)} tenant dispatcher error(s); first: {errors[0]!r}"
        ) from errors[0]

    def memory_breakdown(self, exact: bool = False) -> MemoryReport:
        """The ``tenancy`` component: per-tenant journals + changelogs.

        Tenant *map* bytes live under the map component's per-shard
        tenant slots; this node carries only what the registry itself
        owns, so summing the service's component tree never counts a
        byte twice.
        """
        with self._lock:
            tenants = sorted(
                self._tenants.values(), key=lambda tenant: tenant.slot
            )
        return MemoryReport(
            "tenancy",
            children=[tenant.memory_breakdown(exact=exact) for tenant in tenants],
        )

    def tenant_memory_bytes(self) -> Dict[str, int]:
        """Attributed footprint per tenant name: map slots across every
        shard plus the tenant's journals and changelog ring.

        This is the view the pressure monitor's per-tenant watermarks
        and the ``tenant.mem_bytes.<name>`` gauges evaluate.
        """
        try:
            slot_bytes = self.map.tenant_memory_bytes()
        except Exception:
            slot_bytes = {}
        with self._lock:
            tenants = list(self._tenants.items())
        return {
            name: int(slot_bytes.get(tenant.slot, 0))
            + tenant.memory_breakdown().total_bytes
            for name, tenant in tenants
        }

    def _on_pressure(self, level: str, tenant_levels: Dict[str, str]) -> None:
        """Advisory hook from the service's :class:`PressureMonitor`:
        remember which tenants are over their watermark so ``/tenants``
        can surface the flag.  Observation only — no shedding here."""
        with self._lock:
            self._pressure_flags = dict(tenant_levels)

    def tenants_dict(self) -> Dict[str, object]:
        """JSON-able fleet state (the admin server's ``/tenants`` body).

        Each entry carries a ``memory`` rollup (map slots + journals +
        changelog, in bytes) and — when the pressure monitor has flagged
        the tenant — a ``memory_pressure`` level.
        """
        with self._lock:
            tenants = dict(self._tenants)
            flags = dict(self._pressure_flags)
        try:
            slot_bytes = self.map.tenant_memory_bytes()
        except Exception:
            slot_bytes = {}
        entries: Dict[str, object] = {}
        for name, tenant in sorted(tenants.items()):
            entry = tenant.to_dict()
            map_bytes = int(slot_bytes.get(tenant.slot, 0))
            registry_report = tenant.memory_breakdown()
            durable = registry_report.child("durability")
            changelog = registry_report.child("changelog")
            entry["memory"] = {
                "map_bytes": map_bytes,
                "journal_bytes": durable.total_bytes if durable else 0,
                "changelog_bytes": changelog.total_bytes if changelog else 0,
                "total_bytes": map_bytes + registry_report.total_bytes,
            }
            if name in flags:
                entry["memory_pressure"] = flags[name]
            entries[name] = entry
        return {
            "enabled": True,
            "count": len(tenants),
            "tenants": entries,
        }

    def _require_active(self, name: str) -> Tenant:
        tenant = self.get(name)
        if tenant.state is not TenantState.ACTIVE:
            raise RuntimeError(
                f"tenant {name!r} is {tenant.state.value}; restore it first"
            )
        return tenant

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("tenant registry is closed")

    def close(self) -> None:
        """Drain pending slices, stop the dispatchers.  Idempotent.

        Does not close the underlying service (the registry is a guest
        on it) and does not evict tenants — close then reopen loses only
        the in-memory maps of tenants never persisted.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stopped = True
        for cv in self._shard_cvs:
            with cv:
                cv.notify_all()
        for thread in self._dispatchers:
            thread.join(timeout=10.0)
        pressure = getattr(self.service, "pressure", None)
        if pressure is not None and pressure.on_pressure == self._on_pressure:
            pressure.on_pressure = None
        if getattr(self.service, "tenant_registry", None) is self:
            self.service.tenant_registry = None

    def __enter__(self) -> "TenantRegistry":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
