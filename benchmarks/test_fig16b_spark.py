"""Figure 16 (DJI Spark): the bottleneck shifts to rotor power.

The paper's §6.1.2 observation: on the weak DJI Spark, OctoCache buys *no*
completion-time improvement in Openland and Factory — the rotor-limited
top speed, not compute, binds there — while the compute-bound Room still
benefits.  This is the experiment that separates "mapping is faster"
from "the mission gets faster": the second needs compute to be the
binding constraint.
"""

from repro.analysis.report import format_table
from repro.uav.environments import make_environment
from repro.uav.vehicle import DJI_SPARK
from repro.uav.velocity import max_safe_velocity

from .test_fig16_uav_octomap import fly

ENVIRONMENTS = ("openland", "room")


def test_fig16_spark_rotor_bottleneck(benchmark, emit):
    def run():
        results = {}
        for name in ENVIRONMENTS:
            env = make_environment(name)
            results[name] = (
                fly(env, "octomap", uav=DJI_SPARK),
                fly(env, "octocache", uav=DJI_SPARK),
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (octomap, octocache) in results.items():
        rows.append(
            [
                name,
                f"{octomap.mean_response_latency * 1000:.0f}ms",
                f"{octocache.mean_response_latency * 1000:.0f}ms",
                f"{octomap.mean_velocity:.2f}",
                f"{octocache.mean_velocity:.2f}",
                f"{octomap.completion_time:.1f}s",
                f"{octocache.completion_time:.1f}s",
            ]
        )
    emit(
        "fig16b_spark_rotor_bottleneck",
        format_table(
            [
                "environment",
                "OctoMap resp",
                "OctoCache resp",
                "v OctoMap",
                "v OctoCache",
                "T OctoMap",
                "T OctoCache",
            ],
            rows,
        ),
    )

    openland_octomap, openland_octocache = results["openland"]
    room_octomap, room_octocache = results["room"]

    # Mapping still speeds up everywhere...
    assert (
        openland_octocache.mean_response_latency
        < openland_octomap.mean_response_latency
    )

    # ...but in openland the Spark runs against its rotor ceiling: with
    # OctoCache's latency the velocity bound saturates the cap, so the
    # compute speedup buys almost no velocity (the paper's "no
    # improvement ... as the bottleneck shifts to UAV rotor power").
    openland = make_environment("openland")
    v_fast = max_safe_velocity(
        DJI_SPARK,
        openland.sensing_range,
        openland_octocache.mean_response_latency,
    )
    assert v_fast >= 0.95 * DJI_SPARK.max_velocity
    velocity_gain_openland = (
        openland_octocache.mean_velocity / openland_octomap.mean_velocity
    )
    assert velocity_gain_openland < 1.25

    # In the room, compute binds even for the Spark: a large velocity and
    # completion-time win remains — the contrast that demonstrates the
    # bottleneck shift.
    velocity_gain_room = (
        room_octocache.mean_velocity / room_octomap.mean_velocity
    )
    assert velocity_gain_room > 1.5
    assert velocity_gain_room > 2.0 * velocity_gain_openland
    assert room_octocache.completion_time < room_octomap.completion_time