#!/usr/bin/env python3
"""Frontier exploration: autonomous mapping of an unknown room.

Goes beyond the paper's fixed-goal missions to show the pieces a mapping
*library* user actually composes: OctoCache's fast updates, the
``last_batch`` change feed for incremental frontier maintenance,
unknown-space reasoning, and collision-checked local planning — all
driving a UAV that picks its own goals until the room is covered.

A frontier voxel is known-free with at least one unknown 6-neighbour:
the boundary between mapped and unmapped space.  The explorer repeatedly
flies toward the nearest reachable frontier until none remain (or a cycle
budget runs out), then renders the final map as ASCII art.

Run:  python examples/exploration.py
"""

import math
import time

import numpy as np

from repro import OctoCacheMap
from repro.analysis.visualize import occupancy_slice
from repro.datasets.sensor_model import SensorModel
from repro.uav.environments import make_environment
from repro.uav.planner import GreedyPlanner

RESOLUTION = 0.2
DEPTH = 11
SENSING_RANGE = 3.0
MAX_CYCLES = 120


def frontier_keys(mapping, candidates):
    """Known-free keys among ``candidates`` with an unknown 6-neighbour."""
    frontiers = []
    tree = mapping.octree
    for key in candidates:
        value = mapping.query_key(key)
        if value is None or mapping.params.is_occupied(value):
            continue
        for axis in range(3):
            for step in (-1, 1):
                neighbour = list(key)
                neighbour[axis] += step
                if mapping.query_key(tuple(neighbour)) is None:
                    frontiers.append(key)
                    break
            else:
                continue
            break
    return frontiers


def main() -> None:
    env = make_environment("room")
    mapping = OctoCacheMap(
        resolution=RESOLUTION, depth=DEPTH, max_range=SENSING_RANGE
    )
    mapping.keep_last_batch = True
    sensor = SensorModel(
        horizontal_fov=np.deg2rad(90),
        vertical_fov=np.deg2rad(55),
        horizontal_rays=40,
        vertical_rays=18,
        max_range=SENSING_RANGE,
        emit_misses=True,
    )
    planner = GreedyPlanner()

    position = np.asarray(env.start, dtype=np.float64)
    yaw = 0.0
    known_free = set()
    start_time = time.perf_counter()

    for cycle in range(MAX_CYCLES):
        cloud = sensor.scan(env.scene, tuple(position), yaw)
        mapping.insert_point_cloud(cloud)

        # Incremental frontier bookkeeping from the batch's touched voxels.
        for key in mapping.last_batch.unique_keys():
            value = mapping.query_key(key)
            if value is not None and not mapping.params.is_occupied(value):
                known_free.add(key)
            else:
                known_free.discard(key)

        frontiers = frontier_keys(mapping, known_free)
        if not frontiers:
            print(f"cycle {cycle}: no frontiers left — exploration complete")
            break

        # Fly toward the nearest frontier at flight altitude.
        centres = np.array([mapping.octree.key_to_coord(k) for k in frontiers])
        level = np.abs(centres[:, 2] - env.start[2]) < 1.0
        if level.any():
            centres = centres[level]
        distances = np.linalg.norm(centres - position, axis=1)
        goal = centres[int(np.argmin(distances))]

        plan = planner.plan_step(
            mapping, tuple(position), tuple(goal), lookahead=SENSING_RANGE,
            base_yaw=yaw,
        )
        if plan is None:
            yaw += math.radians(60.0)  # hover and look around
            continue
        step = plan.direction * min(0.5 * plan.reach, 1.0)
        position = position + step
        if abs(plan.direction[0]) > 1e-9 or abs(plan.direction[1]) > 1e-9:
            yaw = math.atan2(plan.direction[1], plan.direction[0])

        if cycle % 10 == 0:
            print(
                f"cycle {cycle:3d}: {len(known_free):5d} free voxels known, "
                f"{len(frontiers):4d} frontiers, "
                f"cache hit ratio {mapping.hit_ratio:.2f}"
            )

    mapping.finalize()
    elapsed = time.perf_counter() - start_time
    print(
        f"\nexplored in {elapsed:.1f}s wall: {mapping.octree.num_nodes} octree "
        f"nodes, cache hit ratio {mapping.hit_ratio:.2f}"
    )
    print("\nfinal map slice at flight altitude ('#' wall, '.' free):\n")
    print(occupancy_slice(mapping, env.start[2], (-1.5, 13.5), (-4.5, 4.5)))


if __name__ == "__main__":
    main()
