#!/usr/bin/env python3
"""Closed-loop UAV navigation: OctoMap vs OctoCache (paper §6.1).

Flies the AscTec Pelican through the Room environment (the paper's
hardest scenario) with both mapping systems and prints the Figure-16-style
metrics: per-cycle response latency, safe flight velocity, and mission
completion time.

Run:  python examples/uav_mission.py [environment]
      environment ∈ {openland, farm, room, factory}, default room
"""

import sys

from repro import OctoMapPipeline, OctoCacheMap
from repro.analysis.report import format_table
from repro.uav import ASCTEC_PELICAN, MissionConfig, make_environment, run_mission


def main() -> None:
    env_name = sys.argv[1] if len(sys.argv) > 1 else "room"
    env = make_environment(env_name)
    print(
        f"environment: {env.name} — goal {env.goal_distance:.0f} m away, "
        f"sensing range {env.sensing_range} m, resolution {env.resolution} m"
    )

    pipelines = {
        "OctoMap": OctoMapPipeline,
        "OctoCache": OctoCacheMap,
    }
    rows = []
    results = {}
    for name, cls in pipelines.items():
        config = MissionConfig(
            environment=env,
            uav=ASCTEC_PELICAN,
            max_cycles=900,
            model_octree_offload=True,
        )
        result = run_mission(
            config,
            lambda res: cls(
                resolution=res, depth=12, max_range=config.sensing_range
            ),
        )
        results[name] = result
        rows.append(
            [
                name,
                "reached" if result.success else "timed out",
                f"{result.mean_response_latency * 1000:.0f}ms",
                f"{result.mean_velocity:.2f} m/s",
                f"{result.completion_time:.1f}s",
                result.cycles,
                result.map_queries,
            ]
        )

    print()
    print(
        format_table(
            [
                "mapping system",
                "outcome",
                "response latency",
                "mean velocity",
                "completion time",
                "cycles",
                "map queries",
            ],
            rows,
        )
    )

    octomap = results["OctoMap"]
    octocache = results["OctoCache"]
    if octomap.success and octocache.success:
        speedup = octomap.mean_response_latency / octocache.mean_response_latency
        saving = 1.0 - octocache.completion_time / octomap.completion_time
        print(
            f"\nOctoCache: {speedup:.2f}x faster mapping response, "
            f"{saving * 100:.0f}% shorter mission"
        )


if __name__ == "__main__":
    main()
