"""Baseline mapping pipelines the paper evaluates against.

All pipelines (baselines and OctoCache variants) implement
:class:`repro.baselines.interface.MappingSystem`, so harnesses and the UAV
simulator swap them freely.
"""

from repro.baselines.interface import MappingSystem
from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.octomap_rt import OctoMapRTPipeline
from repro.baselines.skimap import SkiMapPipeline
from repro.baselines.skiplist import SkipList
from repro.baselines.voxelgrid import VoxelGridPipeline

__all__ = [
    "MappingSystem",
    "OctoMapPipeline",
    "OctoMapRTPipeline",
    "SkiMapPipeline",
    "SkipList",
    "VoxelGridPipeline",
]
