"""Tests for multi-waypoint missions."""

import pytest

from repro.core.octocache import OctoCacheMap
from repro.uav.environments import make_environment
from repro.uav.mission import MissionConfig
from repro.uav.waypoints import run_waypoint_mission


def factory_for(config):
    return lambda res: OctoCacheMap(
        resolution=res, depth=11, max_range=config.sensing_range
    )


class TestWaypointMission:
    def test_requires_waypoints(self):
        env = make_environment("room")
        config = MissionConfig(environment=env)
        with pytest.raises(ValueError):
            run_waypoint_mission(config, factory_for(config), [])

    def test_patrol_two_waypoints(self):
        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=500)
        # Out to mid-room and back to the start: a minimal patrol.
        waypoints = [(6.0, 0.5, 1.2), (0.5, 0.0, 1.2)]
        result = run_waypoint_mission(config, factory_for(config), waypoints)
        assert result.success
        assert not result.crashed
        assert len(result.legs) == 2
        assert result.total_time > 0
        assert result.total_energy == pytest.approx(
            sum(leg.energy_joules for leg in result.legs)
        )

    def test_return_leg_profits_from_map(self):
        """The return leg flies through already-mapped space.  Wall-clock
        comparisons jitter under test-runner load, so the check is
        structural: each leg ends with a finalize (cache flushed into the
        octree), so the durable warmth lives in the *octree* — on the
        return leg, cache misses overwhelmingly find their voxel already
        recorded there (``octree_fills``), unlike the outbound leg whose
        misses are mostly brand-new space."""
        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=500)
        holder = {}

        def factory(res):
            from repro.core.octocache import OctoCacheMap

            mapping = OctoCacheMap(
                resolution=res, depth=11, max_range=config.sensing_range
            )
            holder.setdefault("mapping", mapping)
            return holder["mapping"]

        waypoints = [(6.0, 0.5, 1.2), (0.5, 0.0, 1.2)]

        # Snapshot cache counters at the leg boundary via a wrapper.
        from repro.uav import waypoints as wp_module

        original_run = wp_module.run_mission
        snapshots = []

        def snapshotting_run(cfg, factory_fn, planner=None):
            result = original_run(cfg, factory_fn, planner=planner)
            stats = holder["mapping"].cache.stats
            snapshots.append((stats.octree_fills, stats.misses))
            return result

        wp_module.run_mission = snapshotting_run
        try:
            result = run_waypoint_mission(config, factory, waypoints)
        finally:
            wp_module.run_mission = original_run

        assert result.success
        (fills1, misses1), (fills2, misses2) = snapshots
        outbound_known = fills1 / misses1
        return_known = (fills2 - fills1) / (misses2 - misses1)
        # Clearly more of the return path is known space.  (Not "most":
        # scans are sparse at range, so each pass still discovers fresh
        # far-field voxels even along a revisited corridor.)
        assert return_known > 1.5 * outbound_known, (
            outbound_known,
            return_known,
        )

    def test_failed_leg_aborts_rest(self):
        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=2)  # hopeless
        waypoints = [(6.0, 0.5, 1.2), (0.5, 0.0, 1.2)]
        result = run_waypoint_mission(config, factory_for(config), waypoints)
        assert not result.success
        assert len(result.legs) == 1
