"""Experiment harnesses: timing decomposition, sweeps, and report tables.

Everything `benchmarks/` uses to regenerate the paper's tables and figures
lives here, so experiments are runnable both under pytest-benchmark and as
plain scripts (see ``examples/``).

The sweep and ordering harnesses import the pipeline classes, which in
turn import :mod:`repro.analysis.decomposition`; to keep that cycle
harmless they are loaded lazily (PEP 562) rather than at package import.
"""

from repro.analysis.decomposition import StageTimings, Stopwatch
from repro.analysis.report import format_ratio, format_table, series_block

__all__ = [
    "ConstructionResult",
    "ORDERINGS",
    "OrderingResult",
    "StageTimings",
    "Stopwatch",
    "cache_size_sweep",
    "format_ratio",
    "format_table",
    "occupancy_slice",
    "print_slice",
    "render_parallel_timeline",
    "render_serial_timeline",
    "make_orderings",
    "run_construction",
    "run_ordering_experiment",
    "series_block",
    "suggest_cache_config",
    "sweep_resolutions",
    "tau_sweep",
]

_LAZY = {
    "occupancy_slice": "repro.analysis.visualize",
    "print_slice": "repro.analysis.visualize",
    "render_parallel_timeline": "repro.analysis.timeline",
    "render_serial_timeline": "repro.analysis.timeline",
    "ConstructionResult": "repro.analysis.sweeps",
    "cache_size_sweep": "repro.analysis.sweeps",
    "run_construction": "repro.analysis.sweeps",
    "suggest_cache_config": "repro.analysis.sweeps",
    "sweep_resolutions": "repro.analysis.sweeps",
    "tau_sweep": "repro.analysis.sweeps",
    "ORDERINGS": "repro.analysis.orderings",
    "OrderingResult": "repro.analysis.orderings",
    "make_orderings": "repro.analysis.orderings",
    "run_ordering_experiment": "repro.analysis.orderings",
}


def __getattr__(name):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    module = importlib.import_module(module_name)
    value = getattr(module, name)
    globals()[name] = value
    return value
