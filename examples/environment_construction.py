#!/usr/bin/env python3
"""3-D environment construction: OctoMap vs OctoCache (paper §6.2).

Builds the FR-079-corridor-like dataset's map with the vanilla OctoMap
pipeline, serial OctoCache, and the two-thread OctoCache, then prints the
runtime decomposition and speedups — a miniature of Figures 20 and 22.

Run:  python examples/environment_construction.py
"""

from repro import OctoMapPipeline, OctoCacheMap, ParallelOctoCacheMap
from repro.analysis.report import format_ratio, format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config
from repro.datasets import make_dataset

RESOLUTION = 0.1
DEPTH = 12


def main() -> None:
    dataset = make_dataset("fr079_corridor", pose_scale=1.0, ray_scale=0.6)
    cache_config = suggest_cache_config(dataset, RESOLUTION, DEPTH)
    print(
        f"dataset: {dataset.name}, {len(dataset)} scans; "
        f"cache: {cache_config.num_buckets} buckets x tau={cache_config.bucket_threshold}"
    )

    factories = {
        "OctoMap": lambda res: OctoMapPipeline(
            resolution=res, depth=DEPTH, max_range=dataset.sensor.max_range
        ),
        "OctoCache (serial)": lambda res: OctoCacheMap(
            resolution=res,
            depth=DEPTH,
            max_range=dataset.sensor.max_range,
            cache_config=cache_config,
        ),
        "OctoCache (parallel)": lambda res: ParallelOctoCacheMap(
            resolution=res,
            depth=DEPTH,
            max_range=dataset.sensor.max_range,
            cache_config=cache_config,
        ),
    }

    results = {
        name: run_construction(dataset, RESOLUTION, factory, depth=DEPTH)
        for name, factory in factories.items()
    }

    baseline = results["OctoMap"].total_seconds
    rows = [
        [
            name,
            f"{result.total_seconds:.2f}",
            format_ratio(baseline, result.total_seconds),
            f"{result.cache_hit_ratio:.2f}",
            result.octree_voxels_written,
            result.octree_nodes,
        ]
        for name, result in results.items()
    ]
    print()
    print(
        format_table(
            [
                "pipeline",
                "total(s)",
                "speedup",
                "hit ratio",
                "octree writes",
                "octree nodes",
            ],
            rows,
        )
    )

    print("\nruntime decomposition (OctoCache serial):")
    serial = results["OctoCache (serial)"]
    for stage, seconds in sorted(
        serial.stage_seconds.items(), key=lambda kv: -kv[1]
    ):
        share = 100 * seconds / serial.total_seconds
        print(f"  {stage:>16}: {seconds:7.3f}s ({share:4.1f}%)")

    timeline = serial.timeline
    print(
        f"\nmodeled two-core timeline: {timeline.serial_seconds:.2f}s serial -> "
        f"{timeline.parallel_seconds:.2f}s parallel "
        f"({timeline.speedup:.2f}x, thread-1 wait {timeline.thread1_wait_seconds:.2f}s)"
    )


if __name__ == "__main__":
    main()
