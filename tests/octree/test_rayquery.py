"""Tests for map ray queries (cast_ray)."""

import numpy as np
import pytest

from repro.octree.rayquery import cast_ray
from repro.octree.tree import OccupancyOctree
from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import trace_scan

RES = 0.1
DEPTH = 10


def wall_tree():
    """A tree with a scanned wall at x = 2 m."""
    tree = OccupancyOctree(resolution=RES, depth=DEPTH)
    ys = np.linspace(-1.0, 1.0, 21)
    zs = np.linspace(-1.0, 1.0, 21)
    points = np.array([[2.0, y, z] for y in ys for z in zs])
    batch = trace_scan(PointCloud(points, origin=(0.0, 0.0, 0.0)), RES, DEPTH)
    tree.update_batch(batch.observations)
    return tree


class TestCastRay:
    def test_hits_wall(self):
        tree = wall_tree()
        result = cast_ray(tree, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=5.0)
        assert result.hit
        assert result.endpoint[0] == pytest.approx(2.0, abs=2 * RES)

    def test_miss_within_range(self):
        tree = wall_tree()
        result = cast_ray(tree, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=1.0)
        assert not result.hit
        assert result.endpoint[0] < 1.1

    def test_miss_into_unknown_ignored(self):
        tree = wall_tree()
        result = cast_ray(
            tree, (0.0, 0.0, 0.0), (-1.0, 0.0, 0.0), max_range=3.0
        )
        assert not result.hit
        assert not result.blocked_by_unknown

    def test_unknown_blocks_when_requested(self):
        tree = wall_tree()
        result = cast_ray(
            tree,
            (0.0, 0.0, 0.0),
            (-1.0, 0.0, 0.0),
            max_range=3.0,
            ignore_unknown=False,
        )
        assert not result.hit
        assert result.blocked_by_unknown

    def test_direction_normalised(self):
        tree = wall_tree()
        short = cast_ray(tree, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=5.0)
        scaled = cast_ray(tree, (0.0, 0.0, 0.0), (10.0, 0.0, 0.0), max_range=5.0)
        assert short.key == scaled.key

    def test_validation(self):
        tree = wall_tree()
        with pytest.raises(ValueError):
            cast_ray(tree, (0, 0, 0), (1, 0, 0), max_range=0.0)
        with pytest.raises(ValueError):
            cast_ray(tree, (0, 0, 0), (0, 0, 0), max_range=1.0)

    def test_zero_length_in_voxel(self):
        tree = wall_tree()
        result = cast_ray(
            tree, (0.0, 0.0, 0.0), (1.0, 0.0, 0.0), max_range=RES / 10
        )
        assert not result.hit
        assert result.key is None
