"""Voxel ray traversal (OctoMap's ``computeRayKeys`` equivalent).

A ray is shot from the sensor origin to each point of the cloud; every
voxel the ray passes through is observed *free* and the voxel containing
the endpoint is observed *occupied* (paper §3.1).  Traversal uses the
Amanatides–Woo stepping scheme: exact, never skips a voxel, and visits
voxels in near-to-far order.
"""

from __future__ import annotations

import math
from typing import List, Tuple

from repro.octree.key import VoxelKey, coord_to_key

__all__ = ["compute_ray_keys", "ray_endpoint_key"]


def ray_endpoint_key(
    endpoint: Tuple[float, float, float], resolution: float, depth: int
) -> VoxelKey:
    """Key of the voxel containing a ray endpoint."""
    return coord_to_key(endpoint, resolution, depth)


def compute_ray_keys(
    origin: Tuple[float, float, float],
    endpoint: Tuple[float, float, float],
    resolution: float,
    depth: int,
) -> List[VoxelKey]:
    """Keys of all voxels a ray traverses, *excluding* the endpoint voxel.

    The returned keys are the ray's free-space observations, ordered from
    the origin outward; the endpoint voxel (the occupied observation) is
    intentionally excluded, mirroring OctoMap's ``computeRayKeys``.
    Degenerate rays whose origin and endpoint share a voxel return ``[]``.
    """
    start_key = coord_to_key(origin, resolution, depth)
    end_key = coord_to_key(endpoint, resolution, depth)
    if start_key == end_key:
        return []

    offset = 1 << (depth - 1)
    current = [start_key[0], start_key[1], start_key[2]]
    direction = [endpoint[i] - origin[i] for i in range(3)]
    length = math.sqrt(sum(d * d for d in direction))
    if length == 0.0:
        return []

    step: List[int] = [0, 0, 0]
    t_max: List[float] = [math.inf, math.inf, math.inf]
    t_delta: List[float] = [math.inf, math.inf, math.inf]
    for axis in range(3):
        d = direction[axis]
        if d > 0.0:
            step[axis] = 1
        elif d < 0.0:
            step[axis] = -1
        else:
            continue
        # Distance (in ray-parameter t ∈ [0, 1]) to the first voxel border
        # crossed on this axis, and between successive borders.
        voxel_border = (current[axis] - offset + (1 if step[axis] > 0 else 0)) * resolution
        t_max[axis] = (voxel_border - origin[axis]) / d
        t_delta[axis] = resolution / abs(d)

    keys: List[VoxelKey] = [start_key]
    # The Manhattan key distance bounds the number of border crossings; the
    # extra slack absorbs float ties at voxel corners.
    max_steps = sum(abs(end_key[i] - start_key[i]) for i in range(3)) + 3
    for _ in range(max_steps):
        axis = 0
        if t_max[1] < t_max[axis]:
            axis = 1
        if t_max[2] < t_max[axis]:
            axis = 2
        current[axis] += step[axis]
        t_max[axis] += t_delta[axis]
        key = (current[0], current[1], current[2])
        if key == end_key:
            break
        if t_max[axis] > 1.0 and min(t_max) > 1.0:
            # Passed the endpoint without landing exactly on end_key (a
            # corner-crossing tie); the caller records end_key occupied
            # regardless, so the free-space prefix collected so far is
            # complete.
            break
        keys.append(key)
    return keys
