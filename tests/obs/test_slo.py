"""SLO engine: windowed SLIs, burn-rate alerts, waterfall reconciliation.

The windowed-histogram fix (reset-safe ``state_snapshot``/``since``
deltas) is load-bearing for everything here: the same cumulative series
must serve Prometheus (only ever grows) and the SLO windows (deltas)
without double-counting, so those semantics get their own test class.
"""

import pytest

from repro.obs.slo import (
    SLOEngine,
    SLObjective,
    default_objectives,
    latency_waterfall,
    sli_from_window,
)
from repro.service.metrics import MetricsRegistry


class TestHistogramWindows:
    def test_state_snapshot_delta_isolates_new_samples(self):
        registry = MetricsRegistry()
        hist = registry.histogram("lat_seconds")
        for value in (0.01, 0.02, 0.03):
            hist.record(value)
        earlier = hist.state_snapshot()
        for value in (5.0, 5.0, 5.0):
            hist.record(value)
        window = hist.state_snapshot().since(earlier)
        assert window.count == 3
        # Only the slow samples are in the window: the old fast ones
        # must not dilute the windowed percentile.
        assert window.percentile(0.5) > 1.0
        # Cumulative view is untouched.
        assert hist.state_snapshot().count == 6

    def test_since_none_or_mismatched_baseline_degrades_to_cumulative(self):
        registry = MetricsRegistry()
        hist = registry.histogram("a_seconds")
        hist.record(0.1)
        state = hist.state_snapshot()
        assert state.since(None).count == 1
        other = MetricsRegistry().histogram("b_seconds")
        other.record(0.1)
        other.record(0.2)
        bigger = other.state_snapshot()
        # Same bounds and later >= earlier: a legitimate delta.
        assert bigger.since(state).count == 1
        # earlier.count > later.count means a reset happened in between:
        # the delta would be negative, so fall back to cumulative.
        assert state.since(bigger).count == 1
        # Different bucket bounds: never comparable, fall back.
        from repro.service.metrics import HistogramState

        alien = HistogramState((1.0,), [0], 0, 0.0)
        assert bigger.since(alien).count == 2

    def test_fraction_le_interpolates_within_buckets(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h_seconds")
        for _ in range(100):
            hist.record(0.015)  # lands in the (0.01, 0.025] bucket
        window = hist.state_snapshot().since(None)
        assert window.fraction_le(0.01) == pytest.approx(0.0)
        assert window.fraction_le(0.025) == pytest.approx(1.0)
        between = window.fraction_le(0.02)
        assert 0.0 < between < 1.0

    def test_percentile_bounds_and_empty_window(self):
        registry = MetricsRegistry()
        hist = registry.histogram("p_seconds")
        empty = hist.state_snapshot().since(None)
        assert empty.percentile(0.99) == 0.0
        assert empty.fraction_le(1.0) == 1.0
        hist.record(100.0)  # beyond the last bound -> explicit +Inf bucket
        window = hist.state_snapshot().since(None)
        assert window.percentile(0.99) == float("inf")
        with pytest.raises(ValueError):
            window.percentile(1.5)

    def test_over_top_mass_is_an_explicit_inf_bucket(self):
        # Regression: values above the last finite bound were in
        # ``count`` but in no bucket, so percentile() returned
        # ``bounds[-1]`` for any high fraction (a burning p99 read as
        # exactly the top bound forever) and fraction_le under-reported
        # even for an infinite threshold.
        registry = MetricsRegistry()
        hist = registry.histogram("sat_seconds")
        for _ in range(90):
            hist.record(0.015)
        for _ in range(10):
            hist.record(100.0)  # way beyond the 10s top bound
        window = hist.state_snapshot().since(None)
        assert window.overflow == 10
        assert window.saturated
        # p50 is still finite (rank lands in the 0.015 bucket) ...
        assert window.percentile(0.5) < 1.0
        # ... but p99 lands in the +Inf bucket: unbounded, not 10s.
        assert window.percentile(0.99) == float("inf")
        # Conservative for finite thresholds, total for an infinite one.
        assert window.fraction_le(window.bounds[-1]) == pytest.approx(0.9)
        assert window.fraction_le(float("inf")) == 1.0

    def test_unsaturated_window_keeps_finite_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("fin_seconds")
        for _ in range(100):
            hist.record(0.015)
        window = hist.state_snapshot().since(None)
        assert not window.saturated
        assert window.overflow == 0
        assert window.percentile(1.0) <= window.bounds[-1]

    def test_negative_sum_delta_passes_through(self):
        # Regression: ``since`` clamped the sum delta at zero, so a
        # window of legitimately negative-valued samples reported a
        # corrupted (zero) sum and mean instead of the true ones.
        registry = MetricsRegistry()
        hist = registry.histogram("signed_values")
        hist.record(5.0)
        earlier = hist.state_snapshot()
        hist.record(-2.0)
        hist.record(-3.0)
        window = hist.state_snapshot().since(earlier)
        assert window.count == 2
        assert window.sum == pytest.approx(-5.0)
        assert window.mean == pytest.approx(-2.5)
        # The reset heuristic still keys off counts: an earlier state
        # with a *larger count* means a restart, full-cumulative fallback.
        fresh = MetricsRegistry().histogram("signed_values")
        fresh.record(1.0)
        assert fresh.state_snapshot().since(hist.state_snapshot()).count == 1


class TestObjectives:
    def test_kind_and_target_validation(self):
        with pytest.raises(ValueError, match="kind"):
            SLObjective("x", "throughput", 0.99, 0.1)
        with pytest.raises(ValueError, match="target"):
            SLObjective("x", "latency", 1.0, 0.1)
        with pytest.raises(ValueError, match="threshold"):
            SLObjective("x", "latency", 0.99, 0.0)
        SLObjective("ok", "availability", 0.999)  # no threshold needed

    def test_default_objectives_cover_all_three_kinds(self):
        kinds = {objective.kind for objective in default_objectives()}
        assert kinds == {"latency", "staleness", "availability"}

    def test_sli_from_window_idle_means_compliant(self):
        objective = SLObjective("a", "availability", 0.999)
        assert sli_from_window(objective, total=0, bad=0) == 1.0
        assert sli_from_window(objective, total=10, bad=1) == pytest.approx(0.9)


class TestSLOEngine:
    def make_engine(self, registry, **overrides):
        kwargs = dict(
            windows=(10.0, 60.0),
            clock=lambda: self.now,
        )
        kwargs.update(overrides)
        self.now = 0.0
        return SLOEngine(registry, **kwargs)

    def test_windowed_sli_recovers_after_a_bad_burst(self):
        registry = MetricsRegistry()
        engine = self.make_engine(registry)
        hist = registry.histogram("ingest.e2e_seconds")
        requests = registry.counter("ingest.requests")
        self.now = 0.0
        engine.evaluate()  # clean pre-burst snapshot anchors the ring
        # t=1: a burst of SLO-violating latencies.
        self.now = 1.0
        for _ in range(50):
            hist.record(2.0)
            requests.inc()
        status = engine.evaluate()
        latency = next(
            o for o in status["objectives"] if o["name"] == "ingest_latency"
        )
        assert latency["windows"]["10s"]["sli"] < 0.5
        assert latency["burning"] is True
        # t=30: the burst has aged out of the 10s window, good traffic since.
        self.now = 30.0
        for _ in range(50):
            hist.record(0.005)
            requests.inc()
        status = engine.evaluate()
        latency = next(
            o for o in status["objectives"] if o["name"] == "ingest_latency"
        )
        assert latency["windows"]["10s"]["sli"] == pytest.approx(1.0)
        # The long window still remembers the burst: multi-window alert
        # keeps burning until the budget stops draining overall...
        assert latency["windows"]["60s"]["sli"] < 1.0
        # ...but the *short* burn being zero means no page fires.
        assert latency["burning"] is False

    def test_availability_burn_from_rejections(self):
        registry = MetricsRegistry()
        engine = self.make_engine(registry)
        registry.counter("ingest.requests").inc(1000)
        registry.counter("ingest.rejected_batches").inc(100)
        status = engine.evaluate()
        availability = next(
            o for o in status["objectives"] if o["name"] == "availability"
        )
        assert availability["windows"]["10s"]["sli"] == pytest.approx(0.9)
        # 10% bad against a 0.1% budget: burn rate 100x, alert fires.
        assert availability["windows"]["10s"]["burn_rate"] == pytest.approx(
            100.0, rel=1e-6
        )
        assert availability["burning"] is True
        assert status["burning"] is True

    def test_slo_gauges_published_into_registry(self):
        registry = MetricsRegistry()
        engine = self.make_engine(registry)
        engine.evaluate()
        gauges = registry.snapshot()["gauges"]
        assert gauges["slo.availability.sli"]["value"] == 1.0
        assert gauges["slo.availability.burning"]["value"] == 0.0
        assert "slo.ingest_latency.budget_remaining" in gauges
        text = registry.to_prometheus_text()
        assert "repro_slo_availability_sli" in text

    def test_idle_engine_reports_full_budget(self):
        registry = MetricsRegistry()
        engine = self.make_engine(registry)
        status = engine.evaluate()
        assert status["burning"] is False
        for objective in status["objectives"]:
            assert objective["budget_remaining"] == pytest.approx(1.0)

    def test_constructor_validation(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="ascending"):
            SLOEngine(registry, windows=(60.0, 10.0))
        duplicated = (
            SLObjective("same", "availability", 0.9),
            SLObjective("same", "availability", 0.99),
        )
        with pytest.raises(ValueError, match="duplicate"):
            SLOEngine(registry, objectives=duplicated)


class TestLatencyWaterfall:
    def fill(self, registry):
        e2e = registry.histogram("ingest.e2e_seconds")
        stages = {
            "ingest.trace_seconds": 0.004,
            "ingest.enqueue_seconds": 0.001,
            "shard.queue_wait_seconds": 0.010,
            "shard.apply_seconds": 0.005,
        }
        for _ in range(200):
            e2e.record(0.025)
            for name, duration in stages.items():
                registry.histogram(name).record(duration)

    def test_stage_budgets_sum_to_e2e_percentile(self):
        registry = MetricsRegistry()
        self.fill(registry)
        waterfall = latency_waterfall(registry)
        total = (
            sum(waterfall["stage_budgets_seconds"].values())
            + waterfall["residual_seconds"]
        )
        # The acceptance criterion: budgets reconcile with the measured
        # end-to-end percentile to within 5% (here: exactly).
        assert total == pytest.approx(waterfall["e2e_seconds"], rel=0.05)
        assert waterfall["e2e_count"] == 200
        # queue_wait dominates the instrumented stages (10ms of 20ms).
        shares = waterfall["stage_shares"]
        assert shares["queue_wait"] == max(shares.values())

    def test_empty_registry_yields_zero_waterfall(self):
        waterfall = latency_waterfall(MetricsRegistry())
        assert waterfall["e2e_seconds"] == 0.0
        assert waterfall["residual_seconds"] == 0.0
        assert all(
            budget == 0.0
            for budget in waterfall["stage_budgets_seconds"].values()
        )

    def test_live_service_waterfall_reconciles(self):
        """End to end: real spans from a real service, stages vs e2e."""
        from repro.service.server import OccupancyMapService, ServiceConfig

        config = ServiceConfig(
            resolution=0.1, depth=6, num_shards=2, coalesce=1
        )
        with OccupancyMapService(config) as service:
            import random

            rng = random.Random(7)
            for _ in range(8):
                batch = [
                    (
                        (
                            rng.randrange(64),
                            rng.randrange(64),
                            rng.randrange(64),
                        ),
                        True,
                    )
                    for _ in range(50)
                ]
                service.submit_observations(batch)
            service.flush()
            waterfall = latency_waterfall(service.metrics)
        assert waterfall["e2e_count"] > 0
        total = (
            sum(waterfall["stage_budgets_seconds"].values())
            + waterfall["residual_seconds"]
        )
        assert total == pytest.approx(waterfall["e2e_seconds"], rel=0.05)
