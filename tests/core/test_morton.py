"""Unit and property tests for 3-D Morton codes."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.morton import (
    MAX_COORD_BITS,
    common_prefix_depth,
    contract3,
    dilate3,
    morton_argsort,
    morton_decode3,
    morton_decode3_array,
    morton_encode3,
    morton_encode3_array,
    morton_sort,
)

coords = st.integers(min_value=0, max_value=(1 << MAX_COORD_BITS) - 1)


class TestDilate:
    def test_zero(self):
        assert dilate3(0) == 0

    def test_all_ones_byte(self):
        assert dilate3(0b111) == 0b001001001

    def test_single_high_bit(self):
        assert dilate3(1 << 20) == 1 << 60

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dilate3(-1)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            dilate3(1 << MAX_COORD_BITS)

    @given(coords)
    def test_contract_inverts_dilate(self, value):
        assert contract3(dilate3(value)) == value

    @given(coords)
    def test_dilated_bits_every_third_position(self, value):
        spread = dilate3(value)
        assert spread & 0o666666666666666666666 == 0  # only bits 0,3,6,... set


class TestEncodeDecode:
    def test_origin(self):
        assert morton_encode3(0, 0, 0) == 0

    def test_unit_axes_ordering(self):
        # Per-level group is (x, y, z) with x most significant.
        assert morton_encode3(1, 0, 0) == 0b100
        assert morton_encode3(0, 1, 0) == 0b010
        assert morton_encode3(0, 0, 1) == 0b001

    def test_documented_example(self):
        # x=001, y=101, z=011 -> groups (0,1,0)(0,0,1)(1,1,1) = 0b010001111.
        assert morton_encode3(1, 5, 3) == 0b010001111

    @given(coords, coords, coords)
    def test_roundtrip(self, x, y, z):
        assert morton_decode3(morton_encode3(x, y, z)) == (x, y, z)

    @given(coords, coords, coords)
    def test_monotone_in_shared_prefix(self, x, y, z):
        # Flipping a higher bit always increases the code more than any
        # change confined to lower bits can: codes respect octant nesting.
        code = morton_encode3(x, y, z)
        bumped = morton_encode3(x | 1, y, z)
        assert bumped >= code

    def test_decode_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_decode3(-5)


class TestVectorised:
    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=50))
    def test_matches_scalar(self, triples):
        arr = np.array(triples, dtype=np.int64)
        codes = morton_encode3_array(arr[:, 0], arr[:, 1], arr[:, 2])
        expected = [morton_encode3(x, y, z) for x, y, z in triples]
        assert [int(c) for c in codes] == expected

    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=50))
    def test_array_roundtrip(self, triples):
        arr = np.array(triples, dtype=np.int64)
        codes = morton_encode3_array(arr[:, 0], arr[:, 1], arr[:, 2])
        x, y, z = morton_decode3_array(codes)
        assert np.array_equal(x, arr[:, 0].astype(np.uint64))
        assert np.array_equal(y, arr[:, 1].astype(np.uint64))
        assert np.array_equal(z, arr[:, 2].astype(np.uint64))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            morton_encode3_array(np.array([-1]), np.array([0]), np.array([0]))

    def test_rejects_too_wide(self):
        big = np.array([1 << MAX_COORD_BITS])
        with pytest.raises(ValueError):
            morton_encode3_array(big, big, big)


class TestOrdering:
    def test_sort_small_cube(self):
        cube = [(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        ordered = morton_sort(cube)
        # Z-order within a 2x2x2 cube: z fastest, then y, then x.
        assert ordered == [
            (0, 0, 0), (0, 0, 1), (0, 1, 0), (0, 1, 1),
            (1, 0, 0), (1, 0, 1), (1, 1, 0), (1, 1, 1),
        ]

    @given(st.lists(st.tuples(coords, coords, coords), min_size=1, max_size=30))
    def test_argsort_consistent_with_sort(self, items):
        by_sort = morton_sort(items)
        by_argsort = [items[i] for i in morton_argsort(items)]
        assert by_sort == by_argsort

    @given(st.lists(st.tuples(coords, coords, coords), min_size=2, max_size=30))
    def test_sorted_codes_nondecreasing(self, items):
        codes = [morton_encode3(*c) for c in morton_sort(items)]
        assert all(a <= b for a, b in zip(codes, codes[1:]))


class TestCommonPrefix:
    def test_identical_codes_share_everything(self):
        code = morton_encode3(3, 5, 7)
        assert common_prefix_depth(code, code, 4) == 4

    def test_sibling_leaves(self):
        a = morton_encode3(0, 0, 0)
        b = morton_encode3(0, 0, 1)
        assert common_prefix_depth(a, b, 3) == 2

    def test_opposite_octants_share_nothing(self):
        levels = 3
        a = morton_encode3(0, 0, 0)
        b = morton_encode3(7, 7, 7)
        assert common_prefix_depth(a, b, levels) == 0

    def test_rejects_negative_levels(self):
        with pytest.raises(ValueError):
            common_prefix_depth(0, 0, -1)

    @given(coords, coords)
    def test_symmetry(self, a, b):
        assert common_prefix_depth(a, b, 21) == common_prefix_depth(b, a, 21)
