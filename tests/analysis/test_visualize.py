"""Tests for the ASCII map visualiser."""

import numpy as np
import pytest

from repro.analysis.visualize import occupancy_slice
from repro.baselines.octomap import OctoMapPipeline
from repro.sensor.pointcloud import PointCloud


def mapped_wall():
    mapping = OctoMapPipeline(resolution=0.2, depth=9)
    ys = np.linspace(-1.0, 1.0, 21)
    zs = np.linspace(0.5, 1.5, 11)
    points = np.array([[2.0, y, z] for y in ys for z in zs])
    mapping.insert_point_cloud(PointCloud(points, origin=(0.0, 0.0, 1.0)))
    return mapping


class TestOccupancySlice:
    def test_symbols(self):
        art = occupancy_slice(mapped_wall(), 1.0, (-0.5, 3.0), (-1.5, 1.5))
        assert "#" in art  # the wall
        assert "." in art  # traversed free space
        assert " " in art  # unknown

    def test_wall_column_position(self):
        mapping = mapped_wall()
        art = occupancy_slice(mapping, 1.0, (0.0, 3.0), (-0.2, 0.2))
        # Single row band around y=0: the wall at x=2 is ~2/3 across.
        row = art.splitlines()[0]
        first_hash = row.index("#")
        assert 0.5 < first_hash / len(row) < 0.85

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            occupancy_slice(mapped_wall(), 1.0, (3.0, 0.0), (-1.0, 1.0))

    def test_subsampling_caps_width(self):
        art = occupancy_slice(
            mapped_wall(), 1.0, (-20.0, 20.0), (-20.0, 20.0), max_cells=40
        )
        assert all(len(line) <= 41 for line in art.splitlines())
