"""Tests for the baseline pipelines and the shared MappingSystem interface."""

import numpy as np
import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.octomap_rt import OctoMapRTPipeline
from repro.core.octocache import OctoCacheMap, OctoCacheRTMap
from repro.core.parallel import ParallelOctoCacheMap
from repro.sensor.pointcloud import PointCloud

RES = 0.2
DEPTH = 9

ALL_PIPELINES = [
    OctoMapPipeline,
    OctoMapRTPipeline,
    OctoCacheMap,
    OctoCacheRTMap,
    ParallelOctoCacheMap,
]


def wall_cloud(seed=0, n=60):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [np.full(n, 3.0), rng.uniform(-2, 2, n), rng.uniform(0, 2, n)]
    )
    return PointCloud(points, origin=(0.0, 0.0, 1.0))


class TestInterface:
    @pytest.mark.parametrize("pipeline_cls", ALL_PIPELINES)
    def test_basic_workflow(self, pipeline_cls):
        mapping = pipeline_cls(resolution=RES, depth=DEPTH)
        record = mapping.insert_point_cloud(wall_cloud())
        assert record.observations > 0
        assert record.ray_tracing > 0.0
        mapping.finalize()
        # The first scanned point's voxel must be occupied...
        cloud = wall_cloud()
        first_point = tuple(cloud.points[0])
        assert mapping.is_occupied(first_point) is True
        # ...and the midpoint of its ray observed free.
        midpoint = tuple((np.asarray(cloud.origin) + cloud.points[0]) / 2.0)
        assert mapping.is_occupied(midpoint) is False

    @pytest.mark.parametrize("pipeline_cls", ALL_PIPELINES)
    def test_accepts_raw_arrays(self, pipeline_cls):
        mapping = pipeline_cls(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(
            [[2.0, 0.0, 1.0]], origin=(0.0, 0.0, 1.0)
        )
        mapping.finalize()
        assert mapping.is_occupied((2.0, 0.0, 1.0)) is True

    @pytest.mark.parametrize("pipeline_cls", ALL_PIPELINES)
    def test_timings_accumulate(self, pipeline_cls):
        mapping = pipeline_cls(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(wall_cloud())
        mapping.finalize()
        assert mapping.total_seconds() > 0.0
        assert mapping.critical_path_seconds() > 0.0
        assert mapping.critical_path_seconds() <= mapping.total_seconds() + 1e-9

    @pytest.mark.parametrize("pipeline_cls", ALL_PIPELINES)
    def test_batch_records_kept(self, pipeline_cls):
        mapping = pipeline_cls(resolution=RES, depth=DEPTH)
        for i in range(3):
            mapping.insert_point_cloud(wall_cloud(seed=i))
        mapping.finalize()
        assert len(mapping.batches) == 3
        for record in mapping.batches:
            assert mapping.record_response_seconds(record) >= 0.0
            assert mapping.record_busy_seconds(record) >= 0.0


class TestVanillaOctoMap:
    def test_every_observation_updates_octree(self):
        mapping = OctoMapPipeline(resolution=RES, depth=DEPTH)
        record = mapping.insert_point_cloud(wall_cloud())
        # Node visits reflect one root-to-leaf round trip per observation.
        assert mapping.octree.node_visits >= record.observations * 2

    def test_octree_update_dominates(self):
        """Figure 6's headline: octree update is the bottleneck."""
        mapping = OctoMapPipeline(resolution=0.1, depth=12)
        for i in range(3):
            mapping.insert_point_cloud(wall_cloud(seed=i, n=150))
        assert mapping.timings.fraction("octree_update") > 0.5


class TestRTVariants:
    def test_rt_traces_fewer_observations(self):
        vanilla = OctoMapPipeline(resolution=RES, depth=DEPTH)
        rt = OctoMapRTPipeline(resolution=RES, depth=DEPTH)
        cloud = wall_cloud()
        rec_vanilla = vanilla.insert_point_cloud(cloud)
        rec_rt = rt.insert_point_cloud(cloud)
        assert rec_rt.observations < rec_vanilla.observations

    def test_rt_flag_set(self):
        assert OctoMapRTPipeline(resolution=RES, depth=DEPTH).rt is True
        assert OctoCacheRTMap(resolution=RES, depth=DEPTH).rt is True


class TestOctoCachePipeline:
    def test_cache_absorbs_duplicates(self):
        mapping = OctoCacheMap(resolution=RES, depth=DEPTH)
        record = mapping.insert_point_cloud(wall_cloud())
        assert mapping.cache.stats.hits > 0
        # The octree receives fewer voxels than the raw observation count.
        mapping.finalize()
        total_written = sum(r.evicted for r in mapping.batches)
        assert total_written <= record.observations

    def test_critical_path_excludes_octree_update(self):
        mapping = OctoCacheMap(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(wall_cloud())
        critical = mapping.critical_path_seconds()
        total = mapping.total_seconds()
        assert critical < total

    def test_repeated_scans_increase_hit_ratio(self):
        mapping = OctoCacheMap(resolution=RES, depth=DEPTH)
        cloud = wall_cloud()
        mapping.insert_point_cloud(cloud)
        first_ratio = mapping.cache.stats.hit_ratio
        for _ in range(3):
            mapping.insert_point_cloud(cloud)  # identical scan: all hits
        assert mapping.cache.stats.hit_ratio > first_ratio


class TestParallelPipeline:
    def test_context_manager_finalizes(self):
        with ParallelOctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
            mapping.insert_point_cloud(wall_cloud())
        # After the with-block everything is in the octree.
        assert mapping.octree.num_nodes > 0
        assert mapping.cache.resident_voxels == 0

    def test_worker_restarts_after_finalize(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(wall_cloud(seed=0))
        mapping.finalize()
        mapping.insert_point_cloud(wall_cloud(seed=1))
        mapping.finalize()
        assert len(mapping.batches) == 2

    def test_enqueue_dequeue_recorded(self):
        mapping = ParallelOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
        )
        for i in range(3):
            mapping.insert_point_cloud(wall_cloud(seed=i))
        mapping.finalize()
        assert mapping.timings.seconds.get("enqueue", 0.0) >= 0.0
        assert mapping.timings.seconds.get("octree_update", 0.0) > 0.0
