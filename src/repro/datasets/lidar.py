"""Spinning multi-beam LiDAR model (the sensor behind the paper's datasets).

The FR-079 / Freiburg / New College scans come from rotating laser
scanners, whose geometry differs from a depth camera's frustum: full 360°
azimuth coverage in rings at fixed elevation angles.  Ring geometry
changes the duplication structure — all azimuths converge at the sensor,
so near-field voxels are traversed by *every* ring — making this the
heaviest-duplication sensor shape, useful for stressing the cache.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.datasets.scenes import Scene
from repro.sensor.pointcloud import PointCloud

__all__ = ["LidarModel"]


@dataclass(frozen=True)
class LidarModel:
    """A rotating multi-beam laser scanner.

    Attributes:
        elevations_deg: elevation angle of each beam ring (degrees);
            defaults to 8 rings spanning -15°..+10°, a VLP-style layout.
        azimuth_steps: firings per revolution.
        max_range: range limit (metres).
        noise_sigma: Gaussian range noise as a fraction of hit distance.
        emit_misses: emit a point just past ``max_range`` for rays that
            hit nothing (OctoMap maxrange free-space semantics).
    """

    elevations_deg: Sequence[float] = (-15.0, -11.0, -7.0, -4.0, -1.0, 2.0, 6.0, 10.0)
    azimuth_steps: int = 180
    max_range: float = 20.0
    noise_sigma: float = 0.0
    emit_misses: bool = False

    def __post_init__(self) -> None:
        if not self.elevations_deg:
            raise ValueError("need at least one beam ring")
        if self.azimuth_steps < 1:
            raise ValueError(f"azimuth_steps must be >= 1, got {self.azimuth_steps}")
        if self.max_range <= 0:
            raise ValueError(f"max_range must be positive, got {self.max_range}")
        if self.noise_sigma < 0:
            raise ValueError(f"noise_sigma must be non-negative, got {self.noise_sigma}")

    @property
    def rays_per_scan(self) -> int:
        """Total beams fired per revolution."""
        return len(self.elevations_deg) * self.azimuth_steps

    def ray_directions(self, yaw_offset: float = 0.0) -> np.ndarray:
        """Unit directions of one full revolution, ring-major.

        ``yaw_offset`` rotates the firing pattern (between consecutive
        scans of a moving platform the pattern phase shifts).
        """
        azimuths = yaw_offset + np.linspace(
            0.0, 2.0 * np.pi, self.azimuth_steps, endpoint=False
        )
        elevations = np.deg2rad(np.asarray(self.elevations_deg))
        az_grid, el_grid = np.meshgrid(azimuths, elevations, indexing="ij")
        cos_el = np.cos(el_grid)
        directions = np.stack(
            [
                cos_el * np.cos(az_grid),
                cos_el * np.sin(az_grid),
                np.sin(el_grid),
            ],
            axis=-1,
        )
        return directions.reshape(-1, 3)

    def scan(
        self,
        scene: Scene,
        position: Tuple[float, float, float],
        yaw_offset: float = 0.0,
        rng: Optional[np.random.Generator] = None,
    ) -> PointCloud:
        """One full revolution of ``scene`` from ``position``."""
        directions = self.ray_directions(yaw_offset)
        hit, points = scene.cast(position, directions, self.max_range)
        hits = points[hit]
        if self.emit_misses and not hit.all():
            miss_points = (
                np.asarray(position)[None, :]
                + directions[~hit] * (self.max_range * 1.05)
            )
            hits = np.vstack([hits, miss_points]) if len(hits) else miss_points
        if self.noise_sigma > 0.0:
            if rng is None:
                raise ValueError("noise_sigma > 0 requires an rng")
            offsets = hits - np.asarray(position)
            scale = 1.0 + rng.normal(0.0, self.noise_sigma, size=(len(hits), 1))
            hits = np.asarray(position) + offsets * scale
        return PointCloud(hits, origin=position)
