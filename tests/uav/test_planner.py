"""Tests for the greedy local planner."""

import numpy as np
import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.sensor.pointcloud import PointCloud
from repro.uav.planner import GreedyPlanner

RES = 0.2
DEPTH = 9


def empty_map():
    return OctoMapPipeline(resolution=RES, depth=DEPTH)


def map_with_wall(x=2.0, half_width=2.0):
    """A map whose sensor saw a wall at ``x`` in front of the origin."""
    mapping = empty_map()
    ys = np.linspace(-half_width, half_width, 41)
    zs = np.linspace(0.0, 2.0, 21)
    points = np.array([[x, y, z] for y in ys for z in zs])
    mapping.insert_point_cloud(PointCloud(points, origin=(0.0, 0.0, 1.0)))
    return mapping


class TestSegmentCheck:
    def test_unknown_is_optimistically_free(self):
        planner = GreedyPlanner()
        assert planner.segment_is_free(
            empty_map(), (0.0, 0.0, 1.0), (1.0, 0.0, 1.0)
        )

    def test_unknown_blocks_in_strict_mode(self):
        planner = GreedyPlanner()
        assert not planner.segment_is_free(
            empty_map(), (0.0, 0.0, 1.0), (1.0, 0.0, 1.0), strict=True
        )

    def test_occupied_blocks(self):
        mapping = map_with_wall()
        planner = GreedyPlanner()
        assert not planner.segment_is_free(
            mapping, (0.0, 0.0, 1.0), (3.0, 0.0, 1.0)
        )

    def test_observed_free_passes(self):
        mapping = map_with_wall()
        planner = GreedyPlanner()
        assert planner.segment_is_free(
            mapping, (0.0, 0.0, 1.0), (1.5, 0.0, 1.0)
        )

    def test_queries_counted(self):
        planner = GreedyPlanner()
        planner.segment_is_free(empty_map(), (0.0, 0.0, 1.0), (1.0, 0.0, 1.0))
        assert planner.queries_issued > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            GreedyPlanner(sample_spacing=0.0)
        with pytest.raises(ValueError):
            GreedyPlanner(inflation=-1.0)


class TestPlanStep:
    def test_clear_path_goes_toward_goal(self):
        mapping = map_with_wall(x=10.0)  # wall far away, space observed free
        planner = GreedyPlanner()
        plan = planner.plan_step(
            mapping, (0.0, 0.0, 1.0), (5.0, 0.0, 1.0), lookahead=3.0
        )
        assert plan is not None
        assert plan.direction[0] > 0.9  # roughly +x
        assert plan.reach > 0.0

    def test_blocked_path_detours(self):
        mapping = map_with_wall(x=2.0, half_width=1.0)
        planner = GreedyPlanner()
        plan = planner.plan_step(
            mapping, (0.0, 0.0, 1.0), (5.0, 0.0, 1.0), lookahead=3.0
        )
        # Either detours laterally or reports blocked; never straight on.
        if plan is not None:
            assert abs(plan.direction[1]) > 0.1 or plan.direction[2] > 0.5

    def test_reach_limited_to_known_free(self):
        mapping = map_with_wall(x=6.0)
        planner = GreedyPlanner()
        plan = planner.plan_step(
            mapping, (0.0, 0.0, 1.0), (20.0, 0.0, 1.0), lookahead=10.0
        )
        assert plan is not None
        # Travel must stop before the wall at 6 m.
        assert plan.reach < 6.0

    def test_zero_distance_returns_none(self):
        planner = GreedyPlanner()
        assert (
            planner.plan_step(empty_map(), (1.0, 1.0, 1.0), (1.0, 1.0, 1.0), 3.0)
            is None
        )

    def test_fully_unknown_map_blocks(self):
        """Never-scanned space has no known-free prefix: hover."""
        planner = GreedyPlanner()
        plan = planner.plan_step(
            empty_map(), (0.0, 0.0, 1.0), (5.0, 0.0, 1.0), lookahead=3.0
        )
        assert plan is None
