"""End-to-end structured tracing for the mapping pipelines.

One observability substrate every layer reports into:

- :mod:`repro.telemetry.tracer` — :class:`Tracer` / :class:`Span`:
  nested, categorised, attributed spans with context-manager and
  decorator APIs; negligible overhead when disabled.
- :mod:`repro.telemetry.sinks` — pluggable destinations: in-memory ring
  buffer, JSON-lines file, Chrome-trace/Perfetto exporter, and a bridge
  into the service's :class:`~repro.service.metrics.MetricsRegistry`.
- :mod:`repro.telemetry.profile` — :class:`PipelineProfile`: spans rolled
  up into the paper-style stage-decomposition table plus cache hit-rate
  summary.
- :mod:`repro.telemetry.bench` — the ``python -m repro trace-bench``
  workload driver.

The global tracer starts disabled; enable it around any workload::

    from repro.telemetry import RingBufferSink, tracing, PipelineProfile

    ring = RingBufferSink()
    with tracing(ring):
        mapper.insert_point_cloud(cloud)
    print(PipelineProfile.from_ring(ring).table())

See ``docs/observability.md`` for the full tour.
"""

from repro.telemetry.profile import PipelineProfile, StageProfile
from repro.telemetry.sinks import (
    ChromeTraceSink,
    ForwardSink,
    JsonLinesSink,
    MetricsSink,
    RingBufferSink,
    SpanSink,
)
from repro.telemetry.tracer import (
    NULL_SPAN,
    CountEvent,
    Span,
    Tracer,
    current_span_info,
    get_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "ChromeTraceSink",
    "CountEvent",
    "ForwardSink",
    "JsonLinesSink",
    "MetricsSink",
    "NULL_SPAN",
    "PipelineProfile",
    "RingBufferSink",
    "Span",
    "SpanSink",
    "StageProfile",
    "Tracer",
    "current_span_info",
    "get_tracer",
    "set_tracer",
    "tracing",
]
