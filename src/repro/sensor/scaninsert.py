"""Scan-to-voxel-batch conversion (the ray-tracing stage of Figure 4).

Two conversions are provided, matching the paper's evaluated systems:

- :func:`trace_scan` — vanilla OctoMap behaviour: every ray contributes all
  its free voxels and its occupied endpoint, *with duplicates preserved*.
  Rays form a cone, so voxels near the sensor are reported free many times,
  and dense clouds put many endpoints in one voxel (§3.1's 2.78–31.3×
  intra-batch duplication).
- :func:`trace_scan_rt` — OctoMap-RT behaviour: duplicates are eliminated
  during ray tracing and each voxel is observed at most once per batch,
  occupied winning over free (§5's description of OctoMap-RT).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, Tuple

from repro.octree.key import VoxelKey
from repro.sensor.pointcloud import PointCloud
from repro.sensor.raycast import compute_ray_keys, ray_endpoint_key

__all__ = ["ScanBatch", "trace_scan", "trace_scan_rt"]

#: One voxel observation: the voxel's key and whether it was seen occupied.
Observation = Tuple[VoxelKey, bool]


@dataclass
class ScanBatch:
    """The voxel observations produced by ray tracing one point cloud.

    Attributes:
        observations: ``(key, occupied)`` pairs in ray-tracing order — the
            paper's "original order in OctoMap".
        num_rays: number of rays traced.
    """

    observations: List[Observation]
    num_rays: int

    def __len__(self) -> int:
        return len(self.observations)

    @property
    def num_occupied(self) -> int:
        """Occupied observations (duplicates included)."""
        return sum(1 for _key, occupied in self.observations if occupied)

    @property
    def num_free(self) -> int:
        """Free observations (duplicates included)."""
        return len(self.observations) - self.num_occupied

    def unique_keys(self) -> Set[VoxelKey]:
        """Distinct voxels touched by this batch."""
        return {key for key, _occupied in self.observations}

    @property
    def duplication_ratio(self) -> float:
        """Total observations per distinct voxel (paper §3.1)."""
        unique = len(self.unique_keys())
        return len(self.observations) / unique if unique else 0.0


def trace_scan(
    cloud: PointCloud,
    resolution: float,
    depth: int,
    max_range: float = float("inf"),
) -> ScanBatch:
    """Vanilla ray tracing: duplicates preserved, per-ray order.

    Each ray emits its free voxels from the sensor outward followed by the
    occupied endpoint voxel.  Points beyond ``max_range`` are truncated to
    the range limit and contribute only free space (OctoMap's maxrange
    semantics).
    """
    observations: List[Observation] = []
    origin = cloud.origin
    for point in cloud.points:
        endpoint = (float(point[0]), float(point[1]), float(point[2]))
        truncated = False
        if max_range != float("inf"):
            dx = endpoint[0] - origin[0]
            dy = endpoint[1] - origin[1]
            dz = endpoint[2] - origin[2]
            distance = (dx * dx + dy * dy + dz * dz) ** 0.5
            if distance > max_range:
                scale = max_range / distance
                endpoint = (
                    origin[0] + dx * scale,
                    origin[1] + dy * scale,
                    origin[2] + dz * scale,
                )
                truncated = True
        for key in compute_ray_keys(origin, endpoint, resolution, depth):
            observations.append((key, False))
        end_key = ray_endpoint_key(endpoint, resolution, depth)
        observations.append((end_key, not truncated))
    return ScanBatch(observations=observations, num_rays=len(cloud))


def trace_scan_rt(
    cloud: PointCloud,
    resolution: float,
    depth: int,
    max_range: float = float("inf"),
) -> ScanBatch:
    """Duplicate-free ray tracing (OctoMap-RT's method).

    Each distinct voxel is observed at most once per batch; a voxel that is
    both an endpoint for one ray and pass-through for another counts as
    occupied (occupied wins, matching OctoMap's batch-insert discrete
    semantics).  Observation order is first-touch order.
    """
    raw = trace_scan(cloud, resolution, depth, max_range=max_range)
    occupied_keys: Set[VoxelKey] = {
        key for key, occupied in raw.observations if occupied
    }
    emitted: Set[VoxelKey] = set()
    observations: List[Observation] = []
    for key, _occupied in raw.observations:
        if key in emitted:
            continue
        emitted.add(key)
        observations.append((key, key in occupied_keys))
    return ScanBatch(observations=observations, num_rays=raw.num_rays)
