"""Crash recovery for sharded occupancy maps: snapshots + replay journal.

Each shard's durability story has two halves kept by one
:class:`CheckpointStore`:

- a **journal** of accepted observation batches, appended *before* the
  batch is applied — so a shard that dies mid-apply still knows exactly
  what it had accepted;
- periodic **snapshots**: the shard's authoritative tree (octree merged
  with the resident cache overlay) serialised with
  :func:`repro.octree.serialize.tree_to_bytes`, stamped with how many
  journal entries it covers.

Recovery is exact, not approximate.  :func:`restore_pipeline` loads the
latest snapshot into a fresh pipeline (empty cache, snapshot tree as the
authoritative octree) and replays every journal entry past the snapshot
point.  Because a replayed insert misses the empty cache and seeds from
the octree's accumulated value, the per-voxel update chain is identical
to the uninterrupted one — the rebuilt shard answers every query exactly
as it would have had the crash never happened, and a half-applied batch
is simply overwritten wholesale.
"""

from __future__ import annotations

import enum
import os
import threading
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.octree.key import VoxelKey
from repro.octree.serialize import tree_from_bytes, tree_to_bytes
from repro.octree.tree import OccupancyOctree
from repro.resilience.faults import FaultPlan
from repro.sensor.scaninsert import ScanBatch

__all__ = [
    "CheckpointStore",
    "ShardCheckpoint",
    "ShardHealth",
    "restore_pipeline",
]

Observations = Sequence[Tuple[VoxelKey, bool]]


class ShardHealth(str, enum.Enum):
    """Lifecycle of one shard as seen by the service.

    ``HEALTHY`` serves fresh answers; ``RECOVERING`` means a replacement
    worker is rebuilding the shard while the old map keeps serving
    (reads are flagged stale); ``DEAD`` means the shard exhausted its
    recovery budget and now discards its ingest traffic.
    """

    HEALTHY = "healthy"
    RECOVERING = "recovering"
    DEAD = "dead"


@dataclass(frozen=True)
class ShardCheckpoint:
    """One serialised shard snapshot.

    Attributes:
        blob: the shard's authoritative tree (octree + cache overlay) as
            produced by :func:`tree_to_bytes`.
        upto: journal entries the snapshot already contains — recovery
            replays entries ``upto:`` on top of it.
    """

    blob: bytes
    upto: int


class CheckpointStore:
    """Per-shard journals and snapshots (in memory, optionally on disk).

    Args:
        num_shards: shard count; shard ids index the store.
        directory: when set, each snapshot is also written to
            ``<directory>/shard-<id>.oct`` (the journal itself is kept in
            memory — it exists to survive *worker* crashes, the failure
            mode the service recovers from, not host crashes).
        fault_plan: evaluated at the ``snapshot.write`` site before a
            snapshot is stored, so chaos runs can exercise checkpoint
            failures (a failed snapshot is skipped; the journal keeps
            growing and recovery just replays more).
    """

    def __init__(
        self,
        num_shards: int,
        directory: Optional[str] = None,
        fault_plan: Optional[FaultPlan] = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        self.directory = directory
        self.fault_plan = fault_plan or FaultPlan()
        self._locks = [threading.Lock() for _ in range(num_shards)]
        self._journals: List[List[List[Tuple[VoxelKey, bool]]]] = [
            [] for _ in range(num_shards)
        ]
        self._checkpoints: List[Optional[ShardCheckpoint]] = [
            None for _ in range(num_shards)
        ]
        #: Absolute index of each journal's first *retained* entry:
        #: :meth:`compact` drops snapshot-covered entries but journal
        #: positions (``upto``, append indices) stay absolute forever.
        self._bases: List[int] = [0 for _ in range(num_shards)]
        #: Observations across retained entries, maintained on append/
        #: compact — the O(1) counter behind :meth:`memory_breakdown`.
        self._journal_obs: List[int] = [0 for _ in range(num_shards)]
        if directory is not None:
            os.makedirs(directory, exist_ok=True)

    # ------------------------------------------------------------------
    # Journal.
    # ------------------------------------------------------------------

    def append(self, shard_id: int, observations: Observations) -> int:
        """Journal one accepted batch; returns its 0-based entry index.

        Called by the shard worker *before* applying the batch, so the
        journal always covers at least everything the map contains.
        """
        entry = list(observations)
        with self._locks[shard_id]:
            journal = self._journals[shard_id]
            journal.append(entry)
            self._journal_obs[shard_id] += len(entry)
            return self._bases[shard_id] + len(journal) - 1

    def journal_length(self, shard_id: int) -> int:
        """Absolute journal length (compacted prefix included)."""
        with self._locks[shard_id]:
            return self._bases[shard_id] + len(self._journals[shard_id])

    def compact(self, shard_id: int) -> int:
        """Drop journal entries the latest snapshot already covers.

        Entries below ``checkpoint.upto`` can never be replayed again
        (recovery always starts from the newest snapshot), so dropping
        them returns their memory while keeping absolute journal
        positions intact via the shard's base offset.  Returns the
        number of entries dropped (0 when there is no snapshot or
        nothing to drop).
        """
        with self._locks[shard_id]:
            checkpoint = self._checkpoints[shard_id]
            if checkpoint is None:
                return 0
            drop = checkpoint.upto - self._bases[shard_id]
            if drop <= 0:
                return 0
            journal = self._journals[shard_id]
            dropped = journal[:drop]
            del journal[:drop]
            self._bases[shard_id] = checkpoint.upto
            self._journal_obs[shard_id] -= sum(
                len(entry) for entry in dropped
            )
            return len(dropped)

    # ------------------------------------------------------------------
    # Snapshots.
    # ------------------------------------------------------------------

    def write_snapshot(
        self, shard_id: int, tree: OccupancyOctree, upto: int
    ) -> ShardCheckpoint:
        """Store a snapshot covering the first ``upto`` journal entries.

        ``tree`` must be the shard's *authoritative* state at that
        journal position (octree merged with the cache overlay — see
        :meth:`ShardedMap.shard_snapshot_tree`).  Raises whatever the
        fault plan injects at ``snapshot.write``; the previous snapshot
        stays in place when that happens.
        """
        return self.write_snapshot_blob(shard_id, tree_to_bytes(tree), upto)

    def write_snapshot_blob(
        self, shard_id: int, blob: bytes, upto: int
    ) -> ShardCheckpoint:
        """Store an already-serialised snapshot (serialize-v2 bytes).

        The process-backed map exports shard snapshots in the worker
        process as bytes; storing them verbatim avoids a decode/encode
        round trip.  Same contract as :meth:`write_snapshot` otherwise
        (fault site, journal-position check, optional disk write).
        """
        self.fault_plan.check("snapshot.write", shard=shard_id)
        checkpoint = ShardCheckpoint(blob=blob, upto=upto)
        with self._locks[shard_id]:
            length = self._bases[shard_id] + len(self._journals[shard_id])
            if upto > length:
                raise ValueError(
                    f"snapshot claims {upto} journal entries but shard "
                    f"{shard_id} only journaled {length}"
                )
            self._checkpoints[shard_id] = checkpoint
        if self.directory is not None:
            path = os.path.join(self.directory, f"shard-{shard_id}.oct")
            with open(path, "wb") as handle:
                handle.write(checkpoint.blob)
        return checkpoint

    def checkpoint(self, shard_id: int) -> Optional[ShardCheckpoint]:
        with self._locks[shard_id]:
            return self._checkpoints[shard_id]

    # ------------------------------------------------------------------
    # Recovery.
    # ------------------------------------------------------------------

    def recovery_state(
        self, shard_id: int
    ) -> Tuple[Optional[ShardCheckpoint], List[List[Tuple[VoxelKey, bool]]]]:
        """The latest snapshot plus the journal entries it doesn't cover."""
        with self._locks[shard_id]:
            checkpoint = self._checkpoints[shard_id]
            start = checkpoint.upto if checkpoint is not None else 0
            # ``start`` is absolute; compaction never outruns the newest
            # snapshot, so ``start - base`` is non-negative in practice
            # (clamped defensively anyway).
            offset = max(0, start - self._bases[shard_id])
            tail = [
                list(entry) for entry in self._journals[shard_id][offset:]
            ]
        return checkpoint, tail

    def stats(self, shard_id: int) -> dict:
        """JSON-able durability state for one shard."""
        with self._locks[shard_id]:
            checkpoint = self._checkpoints[shard_id]
            live = len(self._journals[shard_id])
            return {
                "journal_entries": self._bases[shard_id] + live,
                "journal_live_entries": live,
                "journal_base": self._bases[shard_id],
                "snapshot_upto": (
                    checkpoint.upto if checkpoint is not None else 0
                ),
                "snapshot_bytes": (
                    len(checkpoint.blob) if checkpoint is not None else 0
                ),
            }

    # ------------------------------------------------------------------
    # Memory accounting (repro.memsight).
    # ------------------------------------------------------------------

    def memory_breakdown(self, exact: bool = False):
        """Durability footprint: retained journal entries + snapshots.

        Journal bytes use the modeled :data:`OBS_BYTES` per retained
        observation (``exact=True`` recounts by walking the entries;
        the default reads the O(1) counters).  Snapshot bytes are exact
        blob lengths either way.
        """
        from repro.memsight.costs import OBS_BYTES
        from repro.memsight.report import MemoryReport

        shards = []
        for shard_id in range(len(self._journals)):
            with self._locks[shard_id]:
                if exact:
                    obs = sum(
                        len(entry) for entry in self._journals[shard_id]
                    )
                else:
                    obs = self._journal_obs[shard_id]
                checkpoint = self._checkpoints[shard_id]
                blob_bytes = (
                    len(checkpoint.blob) if checkpoint is not None else 0
                )
            shards.append(
                MemoryReport(
                    f"shard{shard_id}",
                    children=[
                        MemoryReport("journal", obs * OBS_BYTES, obs),
                        MemoryReport(
                            "snapshot",
                            blob_bytes,
                            1 if blob_bytes else 0,
                        ),
                    ],
                )
            )
        return MemoryReport("durability", children=shards)


def restore_pipeline(
    factory: Callable[[], "object"],
    checkpoint: Optional[ShardCheckpoint],
    batches: Sequence[Observations],
):
    """Rebuild one shard pipeline from a snapshot plus journal replay.

    ``factory`` makes a fresh shard pipeline (an
    :class:`~repro.core.octocache.OctoCacheMap` configured like the
    crashed one).  The snapshot tree becomes the pipeline's backend
    octree — the cache starts empty, so the first replayed touch of any
    voxel misses and seeds from the snapshot's accumulated value, which
    is what makes the replayed update chain identical to the original.
    """
    pipeline = factory()
    if checkpoint is not None:
        tree = tree_from_bytes(checkpoint.blob)
        if (
            tree.depth != pipeline.depth
            or tree.resolution != pipeline.resolution
        ):
            raise ValueError(
                f"snapshot shape (res={tree.resolution}, depth={tree.depth}) "
                f"does not match the shard (res={pipeline.resolution}, "
                f"depth={pipeline.depth})"
            )
        pipeline._tree = tree
        pipeline.cache.backend = tree
    for observations in batches:
        pipeline.insert_batch(
            ScanBatch(observations=list(observations), num_rays=0)
        )
    return pipeline
