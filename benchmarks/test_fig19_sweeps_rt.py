"""Figure 19: sensitivity sweeps for the -RT systems (Room, AscTec).

(a)/(b): fixed sensing range 3 m, resolution swept over the RT-class fine
end.  (c)/(d): fixed RT resolution, sensing range swept 2–4 m.  Paper:
OctoCache-RT 25% / 17% faster in the two headline scenarios, advantage
growing toward fine resolutions.
"""

from repro.analysis.report import format_table
from repro.baselines.octomap_rt import OctoMapRTPipeline
from repro.core.octocache import OctoCacheRTMap
from repro.uav.environments import make_environment
from repro.uav.sweeps import resolution_sweep, sensing_range_sweep
from repro.uav.vehicle import ASCTEC_PELICAN

DEPTH = 12
RESOLUTIONS = (0.15, 0.1)
RANGES = (2.0, 3.0)
FIXED_RT_RESOLUTION = 0.1


def factories():
    def octomap_rt(res, srange):
        return OctoMapRTPipeline(resolution=res, depth=DEPTH, max_range=srange)

    def octocache_rt(res, srange):
        return OctoCacheRTMap(resolution=res, depth=DEPTH, max_range=srange)

    return octomap_rt, octocache_rt


def test_fig19_room_sweeps_rt(benchmark, emit):
    env = make_environment("room")
    octomap_rt, octocache_rt = factories()

    def run():
        return {
            "res_octomap": resolution_sweep(
                env, RESOLUTIONS, octomap_rt, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
            "res_octocache": resolution_sweep(
                env, RESOLUTIONS, octocache_rt, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
            "range_octomap": sensing_range_sweep(
                env,
                RANGES,
                octomap_rt,
                resolution=FIXED_RT_RESOLUTION,
                uav=ASCTEC_PELICAN,
                model_octree_offload=True,
            ),
            "range_octocache": sensing_range_sweep(
                env,
                RANGES,
                octocache_rt,
                resolution=FIXED_RT_RESOLUTION,
                uav=ASCTEC_PELICAN,
                model_octree_offload=True,
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for axis, label in (("res", "resolution"), ("range", "sensing range")):
        for b, c in zip(sweeps[f"{axis}_octomap"], sweeps[f"{axis}_octocache"]):
            knob = b.resolution if axis == "res" else b.sensing_range
            rows.append(
                [
                    label,
                    knob,
                    f"{b.result.mean_response_latency * 1000:.0f}ms",
                    f"{c.result.mean_response_latency * 1000:.0f}ms",
                    f"{b.result.mean_response_latency / c.result.mean_response_latency:.2f}x",
                    f"{b.result.completion_time:.1f}s",
                    f"{c.result.completion_time:.1f}s",
                ]
            )
    emit(
        "fig19_room_sweeps_rt",
        format_table(
            [
                "sweep",
                "value",
                "OctoMap-RT resp",
                "OctoCache-RT resp",
                "speedup",
                "T OctoMap-RT",
                "T OctoCache-RT",
            ],
            rows,
        ),
    )

    for axis in ("res", "range"):
        speedups = []
        for b, c in zip(sweeps[f"{axis}_octomap"], sweeps[f"{axis}_octocache"]):
            assert b.result.success and c.result.success, axis
            assert not b.result.crashed and not c.result.crashed, axis
            speedups.append(
                b.result.mean_response_latency
                / c.result.mean_response_latency
            )
        # OctoCache-RT never loses meaningfully (single-mission jitter
        # allows a hair below parity), and wins clearly on each sweep.
        assert min(speedups) > 0.85, (axis, speedups)
        assert max(speedups) > 1.1, (axis, speedups)
