"""The paper's locality functional ``F(S)`` and Morton-optimality machinery.

Section 4.3 of the paper scores a voxel insertion order ``S = a_1..a_N`` by

    F(S) = D(a_1, a_2) + D(a_2, a_3) + ... + D(a_{N-1}, a_N)

where ``D(a, b)`` is the tree distance between leaves — twice the number of
levels from a leaf up to the closest common ancestor ``A(a, b)``.  Smaller
``F`` means adjacent voxels in the sequence share more ancestors, hence
more (CPU-)cache hits during consecutive root-to-leaf insertions.  The main
theorem states that sorting leaves by Morton code minimises ``F``.

This module computes ``F`` for arbitrary sequences, provides the
brute-force optimum for small instances (used by the property tests that
check the theorem), and exposes checkers for the supporting lemmas A2–A6.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence, Tuple

from repro.core.morton import common_prefix_depth, morton_encode3

__all__ = [
    "ancestor_depth",
    "tree_distance",
    "locality_cost",
    "locality_cost_keys",
    "brute_force_min_cost",
    "morton_order_cost",
    "lemma_a2_distinct_ancestors",
    "lemma_a3_distinct_distances",
    "lemma_a4_cross_subtree_distance",
    "lemma_a5_single_boundary_pair",
    "subtree_contiguous_orderings_cost",
]


def ancestor_depth(code_a: int, code_b: int, levels: int) -> int:
    """Depth (from the root) of the closest common ancestor of two leaves.

    Leaves are identified by their Morton codes in a ``levels``-deep octree;
    the root is at depth 0, leaves at depth ``levels``.
    """
    return common_prefix_depth(code_a, code_b, levels)


def tree_distance(code_a: int, code_b: int, levels: int) -> int:
    """Paper's ``D(a, b)``: path length between two leaves through their LCA.

    In a perfect octree this is ``2 * (levels - depth(A(a, b)))`` — twice
    the climb from either leaf to the closest common ancestor.  Identical
    leaves have distance 0.
    """
    return 2 * (levels - ancestor_depth(code_a, code_b, levels))


def locality_cost(codes: Sequence[int], levels: int) -> int:
    """``F(S)`` for a sequence of leaf Morton codes (paper §4.3)."""
    return sum(
        tree_distance(codes[i], codes[i + 1], levels)
        for i in range(len(codes) - 1)
    )


def locality_cost_keys(
    keys: Iterable[Tuple[int, int, int]], levels: int
) -> int:
    """``F(S)`` for a sequence of voxel keys (encoded to Morton first)."""
    codes = [morton_encode3(*key) for key in keys]
    return locality_cost(codes, levels)


def morton_order_cost(codes: Iterable[int], levels: int) -> int:
    """``F`` of the Morton-sorted permutation of ``codes``."""
    return locality_cost(sorted(codes), levels)


def brute_force_min_cost(codes: Sequence[int], levels: int) -> int:
    """Exact minimum of ``F`` over all permutations (small inputs only).

    Exponential; intended for property tests that verify the main theorem
    on instances of up to ~8 leaves.
    """
    if len(codes) > 9:
        raise ValueError(
            f"brute force over {len(codes)}! permutations is not tractable"
        )
    if len(codes) <= 1:
        return 0
    best = None
    # F is invariant under reversal: skip each permutation's mirror twin.
    for perm in itertools.permutations(codes):
        if perm[0] > perm[-1]:
            continue  # the reversed permutation has the same cost
        cost = locality_cost(perm, levels)
        if best is None or cost < best:
            best = cost
    return best


def lemma_a2_distinct_ancestors(
    code_a: int, code_b: int, code_c: int, levels: int
) -> bool:
    """Lemma A2: the 3 pairwise LCAs of any 3 leaves span ≤2 distinct depths.

    (Stated in the paper over nodes; over a fixed triple the LCA node is
    determined by its depth on the merged path, so distinct-depth counting
    is equivalent for the perfect-tree argument.)
    """
    depths = {
        ancestor_depth(code_a, code_b, levels),
        ancestor_depth(code_a, code_c, levels),
        ancestor_depth(code_b, code_c, levels),
    }
    return len(depths) <= 2


def lemma_a3_distinct_distances(
    code_a: int, code_b: int, code_c: int, levels: int
) -> bool:
    """Lemma A3: the 3 pairwise distances of any 3 leaves take ≤2 values."""
    distances = {
        tree_distance(code_a, code_b, levels),
        tree_distance(code_a, code_c, levels),
        tree_distance(code_b, code_c, levels),
    }
    return len(distances) <= 2


def lemma_a4_cross_subtree_distance(
    subtree_a_prefix: int,
    subtree_b_prefix: int,
    prefix_levels: int,
    levels: int,
    samples_a: Sequence[int],
    samples_b: Sequence[int],
) -> bool:
    """Lemma A4: cross-subtree leaf distances are constant and dominate.

    For two distinct non-leaf nodes ``a`` and ``b`` at the same level
    (identified by their ``prefix_levels``-group Morton prefixes), the
    distance between any leaf under ``a`` and any leaf under ``b`` is one
    fixed value, strictly larger than any within-``a`` distance.

    ``samples_a``/``samples_b`` are leaf codes *within* each subtree
    (i.e., suffixes of ``levels - prefix_levels`` groups).
    """
    if subtree_a_prefix == subtree_b_prefix:
        raise ValueError("subtrees must be distinct")
    suffix_bits = 3 * (levels - prefix_levels)
    leaves_a = [(subtree_a_prefix << suffix_bits) | s for s in samples_a]
    leaves_b = [(subtree_b_prefix << suffix_bits) | s for s in samples_b]
    cross = {
        tree_distance(la, lb, levels) for la in leaves_a for lb in leaves_b
    }
    if len(cross) != 1:
        return False
    cross_distance = cross.pop()
    within = [
        tree_distance(x, y, levels)
        for i, x in enumerate(leaves_a)
        for y in leaves_a[i + 1 :]
    ]
    return all(d < cross_distance for d in within)


def lemma_a5_single_boundary_pair(
    sequence: Sequence[int], prefix_levels: int, levels: int
) -> bool:
    """Lemma A5's consequence, checkable on a sequence: in an optimal
    ordering, leaves of any two same-level subtrees are adjacent at most
    once (each subtree forms one contiguous block, so each unordered pair
    of subtrees shares at most one boundary).
    """
    shift = 3 * (levels - prefix_levels)
    boundary_pairs = set()
    for first, second in zip(sequence, sequence[1:]):
        pa, pb = first >> shift, second >> shift
        if pa == pb:
            continue
        pair = (min(pa, pb), max(pa, pb))
        if pair in boundary_pairs:
            return False
        boundary_pairs.add(pair)
    return True


def subtree_contiguous_orderings_cost(codes: Sequence[int], levels: int) -> int:
    """``F`` of *any* ordering that keeps each subtree's leaves contiguous.

    Lemma A6 says optimal orderings arrange all descendants of every node
    contiguously, and all such orderings share one ``F`` value.  That value
    depends only on the *multiset* of leaves: each internal node on the
    boundary between consecutive subtree blocks is crossed exactly once.
    Computed here from the Morton-sorted order (one witness of the family).
    """
    return morton_order_cost(list(codes), levels)
