"""Tests for octree change tracking (incremental consumers)."""

import pytest

from repro.octree.tree import OccupancyOctree

DEPTH = 6


def make_tree():
    tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
    tree.enable_change_tracking()
    return tree


class TestChangeTracking:
    def test_disabled_by_default(self):
        tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
        tree.update_node((1, 1, 1), True)
        with pytest.raises(RuntimeError):
            tree.pop_changed_keys()

    def test_updates_recorded(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.update_node((2, 2, 2), False)
        assert tree.pop_changed_keys() == {(1, 1, 1), (2, 2, 2)}

    def test_pop_clears(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.pop_changed_keys()
        assert tree.pop_changed_keys() == set()

    def test_saturated_update_not_a_change(self):
        tree = make_tree()
        for _ in range(30):
            tree.update_node((1, 1, 1), True)
        tree.pop_changed_keys()
        tree.update_node((1, 1, 1), True)  # clamped: value unchanged
        assert tree.pop_changed_keys() == set()

    def test_set_leaf_recorded_only_on_change(self):
        tree = make_tree()
        tree.set_leaf((3, 3, 3), 0.5)
        assert tree.pop_changed_keys() == {(3, 3, 3)}
        tree.set_leaf((3, 3, 3), 0.5)  # same value: no change
        assert tree.pop_changed_keys() == set()

    def test_disable_drops_state(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.disable_change_tracking()
        with pytest.raises(RuntimeError):
            tree.pop_changed_keys()

    def test_reenable_is_idempotent(self):
        tree = make_tree()
        tree.update_node((1, 1, 1), True)
        tree.enable_change_tracking()  # must not clear pending changes
        assert tree.pop_changed_keys() == {(1, 1, 1)}
