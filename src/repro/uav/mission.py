"""Closed-loop UAV mission simulation (paper §5.1, Figures 16–19).

Each cycle runs the full pipeline of Figure 3 — sense, update the mapping
system, plan, move — with the mapping system swappable.  Compute latency
is *measured* (wall-clock of this Python implementation) and scaled by a
fixed calibration factor standing in for the TX2 (DESIGN.md §1): relative
comparisons between mapping systems are the meaningful output, matching
how the paper reports speedups rather than absolute times.

The measured response latency feeds the Krishnan safe-velocity bound, so
a faster mapping system lets the simulated UAV fly faster and finish the
mission sooner — the causal chain of §6.1.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

import numpy as np

from repro.baselines.interface import MappingSystem
from repro.core.octocache import OctoCacheMap
from repro.datasets.sensor_model import SensorModel
from repro.uav.environments import Environment
from repro.uav.planner import GreedyPlanner
from repro.uav.vehicle import UAVModel, ASCTEC_PELICAN
from repro.uav.velocity import max_safe_velocity

__all__ = ["MissionConfig", "MissionResult", "run_mission", "make_mission_sensor"]


def make_mission_sensor(sensing_range: float, resolution: float) -> SensorModel:
    """Depth sensor matched to the mapping scale.

    Ray density is chosen so neighbouring rays are ≈1 voxel apart at full
    range — hit voxels form a gap-free surface the planner can trust —
    bounded so pure-Python ray tracing keeps mission runs tractable.
    """
    h_fov = np.deg2rad(90.0)
    v_fov = np.deg2rad(55.0)
    h_rays = int(h_fov * sensing_range / resolution)
    v_rays = int(v_fov * sensing_range / resolution)
    return SensorModel(
        horizontal_fov=h_fov,
        vertical_fov=v_fov,
        horizontal_rays=min(96, max(16, h_rays)),
        vertical_rays=min(44, max(10, v_rays)),
        max_range=sensing_range,
        noise_sigma=0.0,
        emit_misses=True,
    )


@dataclass
class MissionConfig:
    """Parameters of one closed-loop mission run.

    Attributes:
        environment: the navigation task.
        uav: vehicle model.
        sensing_range: sensor range; defaults to the environment baseline.
        resolution: mapping resolution; defaults to the environment
            baseline.
        latency_scale: measured-Python-seconds → simulated-embedded-seconds
            calibration (DESIGN.md §1's TX2 substitution).  The default of
            10 compensates for the simulated sensor being ~500 rays per
            frame where a real depth camera delivers ~300k points: C++ on
            a TX2 processing the real frame sits roughly an order of
            magnitude *above* CPython processing the light frame.  The
            value places compute latency in the regime where it limits
            flight velocity, as on the paper's testbed; only *relative*
            comparisons between mapping systems are reported.
        goal_tolerance: distance at which the goal counts as reached.
        max_cycles: hard cycle budget before the run is declared timed out.
        max_sim_time: simulated-seconds budget.
        model_octree_offload: project the paper's two-thread design (§4.4)
            for OctoCache pipelines: per cycle, the octree update of the
            *previous* batch runs on a second core, overlapping this
            cycle's ray tracing and eviction, so thread-1 busy time is
            ``max(T_rt + T_insert + T_evict, T_octree_prev)``.  CPython's
            GIL prevents measuring this with real threads (DESIGN.md §1);
            the projection composes *measured* serial stage times with the
            paper's own schedule.  Ignored for cache-less pipelines.
    """

    environment: Environment
    uav: UAVModel = ASCTEC_PELICAN
    sensing_range: Optional[float] = None
    resolution: Optional[float] = None
    latency_scale: float = 10.0
    goal_tolerance: float = 1.5
    max_cycles: int = 600
    max_sim_time: float = 600.0
    model_octree_offload: bool = False

    def __post_init__(self) -> None:
        if self.latency_scale <= 0:
            raise ValueError(f"latency_scale must be positive, got {self.latency_scale}")
        if self.sensing_range is None:
            self.sensing_range = self.environment.sensing_range
        if self.resolution is None:
            self.resolution = self.environment.resolution


@dataclass
class MissionResult:
    """Outcome and metrics of one mission run.

    Attributes:
        success: goal reached within the budgets without a collision.
        crashed: ground-truth collision occurred.
        completion_time: simulated mission time (the paper's headline
            UAV metric).
        distance_travelled: path length flown.
        mean_velocity: average commanded velocity over moving cycles.
        mean_response_latency: scaled per-cycle perception+planning
            response latency (feeds the velocity bound).
        mean_cycle_compute: scaled per-cycle total critical-thread compute
            (the paper's "end-to-end runtime").
        cycles: control cycles executed.
        map_queries: occupancy queries the planner issued.
        energy_joules: rotor energy spent over the mission.  The paper
            notes 95% of UAV energy goes to the rotors for the whole
            flight duration, so energy ≈ hover power × mission time —
            mission *time* savings translate directly into battery
            savings (§5.1, metric 3).
    """

    success: bool = False
    crashed: bool = False
    completion_time: float = 0.0
    distance_travelled: float = 0.0
    mean_velocity: float = 0.0
    mean_response_latency: float = 0.0
    mean_cycle_compute: float = 0.0
    cycles: int = 0
    map_queries: int = 0
    velocities: List[float] = field(default_factory=list)
    crash_position: Optional[Tuple[float, float, float]] = None
    energy_joules: float = 0.0


def _collides(environment: Environment, start: np.ndarray, end: np.ndarray) -> bool:
    """Ground-truth sweep test along the motion segment."""
    length = float(np.linalg.norm(end - start))
    samples = max(2, int(length / 0.1) + 1)
    for alpha in np.linspace(0.0, 1.0, samples):
        point = start + alpha * (end - start)
        if environment.scene.is_inside_obstacle(tuple(point)):
            return True
    return False


def run_mission(
    config: MissionConfig,
    mapping_factory: Callable[[float], MappingSystem],
    planner: Optional[GreedyPlanner] = None,
) -> MissionResult:
    """Fly one mission with the mapping system built by ``mapping_factory``.

    Args:
        config: mission parameters.
        mapping_factory: called with the mapping resolution; must return a
            fresh :class:`MappingSystem` (this is how benchmarks swap
            OctoMap / OctoCache / -RT variants).
        planner: optional pre-configured planner (a fresh
            :class:`GreedyPlanner` by default).

    Returns:
        the :class:`MissionResult`; ``completion_time`` is meaningful only
        when ``success`` is true.
    """
    env = config.environment
    mapping = mapping_factory(config.resolution)
    if mapping.max_range == float("inf"):
        # The mission sensor emits miss rays just past the sensing range;
        # the pipeline must truncate them into free-space observations.
        mapping.max_range = config.sensing_range
    planner = planner or GreedyPlanner()
    sensor = make_mission_sensor(config.sensing_range, config.resolution)

    position = np.asarray(env.start, dtype=np.float64)
    goal = np.asarray(env.goal, dtype=np.float64)
    result = MissionResult()
    response_latencies: List[float] = []
    cycle_computes: List[float] = []
    sim_time = 0.0
    pending_octree_seconds = 0.0  # modeled thread-2 backlog (§4.4)
    to_goal = goal - position
    scan_yaw = math.atan2(to_goal[1], to_goal[0])
    half_fov = sensor.horizontal_fov / 2.0

    while result.cycles < config.max_cycles and sim_time < config.max_sim_time:
        result.cycles += 1
        to_goal = goal - position
        distance = float(np.linalg.norm(to_goal))
        if distance <= config.goal_tolerance:
            result.success = True
            break

        # Perception: scan along the current heading and update the map
        # (measured).  The sensor looks where the vehicle flies; planning
        # stays inside the scanned cone.
        cloud = sensor.scan(env.scene, tuple(position), scan_yaw)
        record = mapping.insert_point_cloud(cloud)

        # Planning: query the map along candidate headings (measured),
        # fanning around the goal bearing clamped into the scanned FOV.
        goal_yaw = math.atan2(to_goal[1], to_goal[0])
        delta = (goal_yaw - scan_yaw + math.pi) % (2.0 * math.pi) - math.pi
        margin = 0.15
        base_yaw = scan_yaw + max(
            -half_fov + margin, min(half_fov - margin, delta)
        )
        plan_start = time.perf_counter()
        plan = planner.plan_step(
            mapping,
            tuple(position),
            tuple(goal),
            lookahead=config.sensing_range,
            base_yaw=base_yaw,
        )
        plan_seconds = time.perf_counter() - plan_start

        response = (
            mapping.record_response_seconds(record) + plan_seconds
        ) * config.latency_scale
        busy_stages = mapping.record_busy_seconds(record)
        if config.model_octree_offload and isinstance(mapping, OctoCacheMap):
            thread1 = (
                record.ray_tracing
                + record.cache_insertion
                + record.cache_eviction
                + record.enqueue
            )
            busy_stages = max(thread1, pending_octree_seconds)
            pending_octree_seconds = record.octree_update + record.dequeue
        busy = (busy_stages + plan_seconds) * config.latency_scale
        response_latencies.append(response)
        cycle_computes.append(busy)

        # Control: fly the chosen heading at the safe velocity.
        cycle_period = max(config.uav.frame_period, busy)
        sim_time += cycle_period
        if plan is None:
            # Hover and rotate the sensor to look for a way out.
            scan_yaw += math.radians(60.0)
            result.velocities.append(0.0)
            continue
        direction = plan.direction
        if abs(direction[0]) > 1e-9 or abs(direction[1]) > 1e-9:
            scan_yaw = math.atan2(direction[1], direction[0])
        # The velocity bound uses the *verified* free distance: the UAV
        # must be able to stop inside space the map actually observed
        # free, which near obstacles is shorter than the sensing range.
        visible = min(config.sensing_range, max(plan.reach, 1e-6))
        velocity = max_safe_velocity(config.uav, visible, response)
        # Travel is additionally bounded by the collision-checked segment:
        # a slow compute cycle must not carry the vehicle beyond what the
        # planner verified.
        step_length = min(velocity * cycle_period, 0.6 * plan.reach, distance)
        step = direction * step_length
        new_position = position + step
        if _collides(env, position, new_position):
            result.crashed = True
            result.crash_position = tuple(new_position)
            break
        result.distance_travelled += float(np.linalg.norm(step))
        result.velocities.append(velocity)
        position = new_position

    mapping.finalize()
    result.completion_time = sim_time
    result.energy_joules = config.uav.hover_power_w * sim_time
    result.map_queries = planner.queries_issued
    moving = [v for v in result.velocities if v > 0.0]
    result.mean_velocity = float(np.mean(moving)) if moving else 0.0
    result.mean_response_latency = (
        float(np.mean(response_latencies)) if response_latencies else 0.0
    )
    result.mean_cycle_compute = (
        float(np.mean(cycle_computes)) if cycle_computes else 0.0
    )
    return result
