"""Ablation: τ-threshold sequential eviction vs flush-everything.

OctoCache keeps up to τ cells per bucket across batches (§4.2.2), which is
what converts *inter-batch* overlap (Figure 8) into cache hits.  The
ablation replaces eviction with a full flush after every batch: intra-batch
duplication still hits, but every revisited voxel misses again next batch.

Expected: retention wins on hit ratio and on octree write traffic.
"""

from repro.analysis.report import format_table
from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig
from repro.octree.tree import OccupancyOctree
from repro.sensor.scaninsert import trace_scan

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES

RESOLUTION = 0.2
NUM_BUCKETS = 4096
TAU = 4


def drive(dataset, flush_every_batch):
    config = CacheConfig(num_buckets=NUM_BUCKETS, bucket_threshold=TAU)
    backend = OccupancyOctree(resolution=RESOLUTION, depth=BENCH_DEPTH)
    cache = VoxelCache(config, backend=backend)
    octree_writes = 0
    for index, cloud in enumerate(dataset.scans()):
        if index >= BENCH_MAX_BATCHES:
            break
        batch = trace_scan(
            cloud, RESOLUTION, BENCH_DEPTH, max_range=dataset.sensor.max_range
        )
        cache.insert_batch(batch.observations)
        evicted = cache.flush() if flush_every_batch else cache.evict()
        for key, value in evicted:
            backend.set_leaf(key, value)
        octree_writes += len(evicted)
    # End-of-run flush so both policies account for the full map.
    final = cache.flush()
    for key, value in final:
        backend.set_leaf(key, value)
    octree_writes += len(final)
    return cache.stats.hit_ratio, octree_writes


def test_ablation_eviction_policy(benchmark, corridor, college, emit):
    def run():
        results = {}
        for dataset in (corridor, college):
            retain = drive(dataset, flush_every_batch=False)
            flush = drive(dataset, flush_every_batch=True)
            results[dataset.name] = {"retain": retain, "flush": flush}
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, data in results.items():
        for policy in ("retain", "flush"):
            hit_ratio, writes = data[policy]
            rows.append([name, policy, f"{hit_ratio:.3f}", writes])
    emit(
        "ablation_eviction_policy",
        format_table(["dataset", "policy", "hit ratio", "octree writes"], rows),
    )

    for name, data in results.items():
        retain_hits, retain_writes = data["retain"]
        flush_hits, flush_writes = data["flush"]
        # Retention converts inter-batch overlap into hits...
        assert retain_hits > flush_hits, name
        # ...and spares the octree the re-written voxels.
        assert retain_writes < flush_writes, name
