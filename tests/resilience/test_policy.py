"""Tests for deadlines and retry backoff."""

import time

import pytest

from repro.resilience.policy import Deadline, DeadlineExceeded, RetryPolicy


class TestDeadline:
    def test_unbounded(self):
        deadline = Deadline(None)
        assert deadline.unbounded
        assert deadline.remaining() is None
        assert not deadline.expired()
        deadline.raise_if_expired("noop")  # must not raise

    def test_zero_timeout_expires_immediately(self):
        deadline = Deadline(0.0)
        assert not deadline.unbounded
        assert deadline.expired()
        assert deadline.remaining() == 0.0
        with pytest.raises(DeadlineExceeded, match="ingest"):
            deadline.raise_if_expired("ingest")

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            Deadline(-0.5)

    def test_remaining_counts_down(self):
        deadline = Deadline(10.0)
        first = deadline.remaining()
        time.sleep(0.01)
        second = deadline.remaining()
        assert first is not None and second is not None
        assert second < first
        assert not deadline.expired()

    def test_deadline_exceeded_is_timeout_error(self):
        assert issubclass(DeadlineExceeded, TimeoutError)


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(base_delay=-1.0)
        with pytest.raises(ValueError, match="delays"):
            RetryPolicy(max_delay=-1.0)

    def test_backoff_is_seeded_and_deterministic(self):
        a = RetryPolicy(max_attempts=5, seed=7)
        b = RetryPolicy(max_attempts=5, seed=7)
        assert [a.backoff(i) for i in range(5)] == [
            b.backoff(i) for i in range(5)
        ]

    def test_backoff_bounded_by_exponential_cap(self):
        policy = RetryPolicy(
            max_attempts=6, base_delay=0.01, max_delay=0.05, seed=3
        )
        for attempt in range(6):
            delay = policy.backoff(attempt)
            assert 0.0 <= delay <= min(0.05, 0.01 * 2**attempt)

    def test_sleep_truncated_by_deadline(self):
        policy = RetryPolicy(base_delay=5.0, max_delay=5.0, seed=0)
        start = time.perf_counter()
        policy.sleep(0, deadline=Deadline(0.0))
        assert time.perf_counter() - start < 1.0

    def test_sleep_without_deadline(self):
        policy = RetryPolicy(base_delay=0.001, max_delay=0.001, seed=0)
        policy.sleep(0)  # just must not raise
