"""Tests for the analytic two-thread pipeline model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.pipeline_model import PipelineModel, StageTimes

durations = st.floats(min_value=0.0, max_value=10.0, allow_nan=False)


def batch(rt=1.0, ci=0.5, ce=0.1, ou=2.0, enq=0.0, deq=0.0):
    return StageTimes(
        ray_tracing=rt,
        cache_insertion=ci,
        cache_eviction=ce,
        octree_update=ou,
        enqueue=enq,
        dequeue=deq,
    )


class TestStageTimes:
    def test_serial_seconds(self):
        assert batch().serial_seconds == pytest.approx(3.6)

    def test_from_record(self):
        from repro.baselines.interface import BatchRecord

        record = BatchRecord()
        record.ray_tracing = 1.0
        record.octree_update = 2.0
        times = StageTimes.from_record(record)
        assert times.ray_tracing == 1.0
        assert times.octree_update == 2.0


class TestTimeline:
    def test_empty_model(self):
        timeline = PipelineModel([]).simulate()
        assert timeline.serial_seconds == 0.0
        assert timeline.parallel_seconds == 0.0
        assert timeline.speedup == 1.0

    def test_single_batch_overlaps_own_eviction_only(self):
        # One batch: the streamed octree update overlaps only this batch's
        # eviction (0.1), since there is no following ray tracing to hide
        # behind: 3.6 serial -> 3.5 parallel.
        timeline = PipelineModel([batch()]).simulate()
        assert timeline.serial_seconds == pytest.approx(3.6)
        assert timeline.parallel_seconds == pytest.approx(3.5)

    def test_two_batches_overlap(self):
        # Batch 2's ray tracing overlaps batch 1's octree update.
        timeline = PipelineModel([batch(), batch()]).simulate()
        assert timeline.parallel_seconds < timeline.serial_seconds

    def test_perfect_overlap_when_stages_balanced(self):
        # rt+ce == ou: each octree update hides behind its own batch's
        # eviction plus the next batch's ray tracing; only the last one
        # sticks out past thread 1 (pipeline drain).
        batches = [batch(rt=1.0, ci=0.0, ce=1.0, ou=2.0)] * 10
        timeline = PipelineModel(batches).simulate()
        # Serial: 10 * 4.0 = 40.  Thread 1: 10 * 2.0 = 20.  Final octree
        # update starts with the last eviction at t=19 and ends at 21.
        assert timeline.serial_seconds == pytest.approx(40.0)
        assert timeline.parallel_seconds == pytest.approx(21.0)

    def test_waiting_gap_when_octree_dominates(self):
        # Octree updates longer than the rest: thread 1 waits (Fig. 13b).
        batches = [batch(rt=0.1, ci=0.1, ce=0.1, ou=5.0)] * 5
        timeline = PipelineModel(batches).simulate()
        assert timeline.thread1_wait_seconds > 0.0

    def test_no_wait_when_thread1_dominates(self):
        batches = [batch(rt=5.0, ci=1.0, ce=1.0, ou=0.1)] * 5
        timeline = PipelineModel(batches).simulate()
        assert timeline.thread1_wait_seconds == 0.0

    @given(st.lists(
        st.builds(batch, rt=durations, ci=durations, ce=durations, ou=durations),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=50, deadline=None)
    def test_parallel_never_slower_than_serial(self, batches):
        timeline = PipelineModel(batches).simulate()
        assert timeline.parallel_seconds <= timeline.serial_seconds + 1e-9

    @given(st.lists(
        st.builds(batch, rt=durations, ci=durations, ce=durations, ou=durations),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=50, deadline=None)
    def test_parallel_bounded_by_paper_formula(self, batches):
        """Savings never exceed sum of min(T_rt + T_evict, T_octree)."""
        model = PipelineModel(batches)
        timeline = model.simulate()
        saved = timeline.serial_seconds - timeline.parallel_seconds
        assert saved <= model.max_theoretical_gain() + 1e-9

    @given(st.lists(
        st.builds(batch, rt=durations, ci=durations, ce=durations, ou=durations),
        min_size=1, max_size=20,
    ))
    @settings(max_examples=50, deadline=None)
    def test_parallel_at_least_each_thread_total(self, batches):
        timeline = PipelineModel(batches).simulate()
        thread1 = sum(b.ray_tracing + b.cache_insertion + b.cache_eviction for b in batches)
        thread2 = sum(b.octree_update for b in batches)
        assert timeline.parallel_seconds >= max(thread1, thread2) - 1e-9
