"""Tests for the memory-hierarchy cost model and address spaces."""

import pytest

from repro.simcache.address_space import AddressSpace
from repro.simcache.cache_sim import CacheLevel
from repro.simcache.cost_model import (
    AccessCosts,
    MemoryHierarchy,
    jetson_tx2_hierarchy,
    scaled_tx2_hierarchy,
)


class TestAddressSpace:
    def test_sequential_layout(self):
        space = AddressSpace(node_bytes=48)
        assert space.address_of(0) == 0
        assert space.address_of(10) == 480

    def test_shuffled_is_deterministic(self):
        a = AddressSpace(placement="shuffled", seed=1)
        b = AddressSpace(placement="shuffled", seed=1)
        assert [a.address_of(i) for i in range(20)] == [
            b.address_of(i) for i in range(20)
        ]

    def test_shuffled_differs_by_seed(self):
        a = AddressSpace(placement="shuffled", seed=1)
        b = AddressSpace(placement="shuffled", seed=2)
        assert [a.address_of(i) for i in range(20)] != [
            b.address_of(i) for i in range(20)
        ]

    def test_shuffled_addresses_node_aligned(self):
        space = AddressSpace(node_bytes=48, placement="shuffled")
        for node_id in range(50):
            assert space.address_of(node_id) % 48 == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            AddressSpace(node_bytes=0)
        with pytest.raises(ValueError):
            AddressSpace(placement="mystery")
        with pytest.raises(ValueError):
            AddressSpace().address_of(-1)


class TestHierarchy:
    def test_cost_accounting(self):
        hierarchy = MemoryHierarchy(
            levels=[CacheLevel("L1", 256, 64, 2)],
            costs=AccessCosts(level_cycles=(1.0,), dram_cycles=10.0),
        )
        first = hierarchy.access(0)  # miss -> DRAM
        second = hierarchy.access(0)  # hit -> L1
        assert first == 10.0
        assert second == 1.0
        assert hierarchy.total_cycles == 11.0
        assert hierarchy.mean_cycles_per_access == pytest.approx(5.5)

    def test_mismatched_costs_rejected(self):
        with pytest.raises(ValueError):
            MemoryHierarchy(
                levels=[CacheLevel("L1", 256, 64, 2)],
                costs=AccessCosts(level_cycles=(1.0, 2.0)),
            )

    def test_l2_catches_l1_evictions(self):
        hierarchy = MemoryHierarchy(
            levels=[
                CacheLevel("L1", 128, 64, 2),  # 2 lines total
                CacheLevel("L2", 1024, 64, 16),  # plenty
            ],
            costs=AccessCosts(level_cycles=(1.0, 5.0), dram_cycles=50.0),
        )
        for address in (0, 64, 128):  # fills L1 beyond capacity
            hierarchy.access(address)
        cost = hierarchy.access(0)  # evicted from L1, resident in L2
        assert cost == 5.0

    def test_access_node_uses_address_space(self):
        hierarchy = jetson_tx2_hierarchy()
        hierarchy.access_node(0)
        hierarchy.access_node(1)  # adjacent nodes share a 64B line (48B each)
        assert hierarchy.simulators[0].hits >= 1

    def test_flush_and_reset(self):
        hierarchy = jetson_tx2_hierarchy()
        hierarchy.access(0)
        hierarchy.reset_counters()
        assert hierarchy.total_cycles == 0.0
        assert hierarchy.access(0) == 4.0  # still warm
        hierarchy.flush()
        assert hierarchy.access(0) == 180.0  # cold again


class TestScaledHierarchy:
    def test_scales_down_for_small_workloads(self):
        small = scaled_tx2_hierarchy(expected_nodes=10_000)
        full = jetson_tx2_hierarchy()
        assert (
            small.simulators[1].level.size_bytes
            < full.simulators[1].level.size_bytes
        )

    def test_preserves_geometry_validity(self):
        for nodes in (1, 100, 10_000, 10_000_000):
            hierarchy = scaled_tx2_hierarchy(expected_nodes=nodes)
            for sim in hierarchy.simulators:
                assert sim.level.num_sets >= 1

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            scaled_tx2_hierarchy(expected_nodes=0)

    def test_paper_scale_recovers_tx2(self):
        hierarchy = scaled_tx2_hierarchy(expected_nodes=5_700_000)
        # At the paper's own working set the scaled caches are within 2x
        # of the real TX2 geometry.
        assert hierarchy.simulators[1].level.size_bytes >= 1024 * 1024
