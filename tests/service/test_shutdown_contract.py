"""The shutdown contract both worker backends share.

``close()`` must be idempotent, safe to call concurrently, safe from the
atexit hook during interpreter teardown, and must leave nothing running:
worker threads joined, and (process mode) every child process dead.  A
service used as a context manager and then closed again must not raise.
"""

import os
import subprocess
import sys
import threading

import pytest

from repro.service.server import OccupancyMapService, ServiceConfig

BACKENDS = ["thread", "process"]


def make_config(workers):
    return ServiceConfig(
        resolution=0.1,
        depth=6,
        num_shards=2,
        queue_capacity=4,
        coalesce=1,
        snapshot_interval=0,
        workers=workers,
    )


def submit_some(service):
    service.submit_observations(
        [((1, 2, 3), True), ((40, 40, 40), False), ((7, 9, 11), True)]
    )
    service.flush()


class TestCloseContract:
    @pytest.mark.parametrize("workers", BACKENDS)
    def test_close_is_idempotent(self, workers):
        service = OccupancyMapService(make_config(workers))
        submit_some(service)
        service.close()
        service.close()
        service.close()

    @pytest.mark.parametrize("workers", BACKENDS)
    def test_context_manager_then_explicit_close(self, workers):
        with OccupancyMapService(make_config(workers)) as service:
            submit_some(service)
        service.close()

    @pytest.mark.parametrize("workers", BACKENDS)
    def test_concurrent_close_races_cleanly(self, workers):
        service = OccupancyMapService(make_config(workers))
        submit_some(service)
        errors = []

        def closer():
            try:
                service.close()
            except BaseException as error:  # noqa: BLE001 - recording all
                errors.append(error)

        threads = [threading.Thread(target=closer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        assert not errors
        assert not any(thread.is_alive() for thread in threads)

    @pytest.mark.parametrize("workers", BACKENDS)
    def test_atexit_hook_is_reentrant_and_silent(self, workers):
        """The atexit fallback swallows everything (interpreter teardown
        is no place to raise) and is a no-op after a normal close."""
        service = OccupancyMapService(make_config(workers))
        submit_some(service)
        service._close_at_exit()
        service._close_at_exit()
        service.close()

    def test_process_children_dead_after_close(self):
        service = OccupancyMapService(make_config("process"))
        submit_some(service)
        supervisor = service.map.supervisor
        assert all(
            supervisor.alive(shard)
            for shard in range(service.config.num_shards)
        )
        service.close()
        assert not any(
            supervisor.alive(shard)
            for shard in range(service.config.num_shards)
        )

    def test_worker_threads_joined_after_close(self):
        service = OccupancyMapService(make_config("thread"))
        submit_some(service)
        service.close()
        assert not any(worker.is_alive() for worker in service._workers)

    @pytest.mark.parametrize("workers", BACKENDS)
    def test_interpreter_teardown_without_close(self, workers):
        """A script that abandons a live service must still exit 0 with a
        quiet stderr: the atexit hook (registered after multiprocessing
        initialises, so it runs before mp's own teardown) drains and
        closes instead of racing dying daemon children."""
        script = (
            "from repro.service.server import OccupancyMapService, "
            "ServiceConfig\n"
            "service = OccupancyMapService(ServiceConfig(resolution=0.1, "
            f"depth=6, num_shards=2, coalesce=1, workers={workers!r}))\n"
            "service.submit_observations([((1, 2, 3), True)])\n"
            "service.flush()\n"
            "# No close(): interpreter teardown must handle it.\n"
        )
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
            "src",
        )
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert result.returncode == 0, result.stderr
        assert "Traceback" not in result.stderr, result.stderr

    def test_backend_close_is_idempotent_standalone(self):
        from repro.mp.backend import ProcessShardedMap

        pmap = ProcessShardedMap(resolution=0.1, depth=6, num_shards=2)
        pmap.apply_to_shard(0, [((1, 1, 1), True)])
        pmap.close()
        pmap.close()
        with ProcessShardedMap(resolution=0.1, depth=6, num_shards=2) as other:
            other.apply_to_shard(0, [((2, 2, 2), True)])
        other.close()
