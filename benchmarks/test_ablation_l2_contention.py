"""Ablation: shared-L2 contention cost of the two-thread design (§4.4).

The paper claims the parallel design costs "only one extra CPU core".
On the TX2 that core shares the L2, so thread 2's octree updates compete
with thread 1's cache insertions for L2 capacity.  This ablation replays
thread-1-style traffic (cache-table probes) interleaved with thread-2
octree-update traffic through the dual-core model and reports how much
the sharing inflates thread 1's memory cost — quantifying the claim.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.core.morton import morton_encode3
from repro.octree.tree import OccupancyOctree
from repro.simcache.cache_sim import CacheLevel
from repro.simcache.cost_model import AccessCosts
from repro.simcache.multicore import DualCoreHierarchy, interleave_traces
from repro.simcache.trace import TraceRecorder

from .conftest import BENCH_DEPTH

NUM_KEYS = 15_000


def octree_trace(keys):
    recorder = TraceRecorder()
    tree = OccupancyOctree(resolution=0.1, depth=BENCH_DEPTH, visit_hook=recorder.record)
    for key in keys:
        tree.update_node(key, True)
    return recorder.trace


def cache_table_trace(keys, num_buckets=512, bucket_bytes=64):
    """Thread-1-style accesses: one bucket probe per insertion.

    The flat cache's accesses are just bucket-array touches — model each
    insertion as an access to its bucket's address.  Buckets are spaced a
    cache line apart (τ=4 cells ≈ 28 bytes + vector header), and the
    table lives at a disjoint heap offset from the octree nodes.
    """
    base = 1 << 30
    return [
        base + (morton_encode3(*key) % num_buckets) * bucket_bytes
        for key in keys
    ]


def make_dual():
    return DualCoreHierarchy(
        l1=CacheLevel("L1", 4 * 1024, 64, 2),
        l2=CacheLevel("L2", 64 * 1024, 64, 16),
        costs=AccessCosts(level_cycles=(4.0, 21.0), dram_cycles=180.0),
    )


def test_ablation_shared_l2_contention(benchmark, emit):
    rng = np.random.default_rng(9)
    x = rng.integers(0, 512, NUM_KEYS)
    y = rng.integers(0, 512, NUM_KEYS)
    z = (128 + 10 * np.sin(x / 25.0) + rng.integers(0, 2, NUM_KEYS)).astype(int)
    keys = sorted(
        zip(x.tolist(), y.tolist(), z.tolist()), key=lambda k: morton_encode3(*k)
    )

    shuffled = list(keys)
    np.random.default_rng(1).shuffle(shuffled)

    def run():
        thread1 = cache_table_trace(keys)
        thread2_morton = octree_trace(keys)  # Morton-ordered evictions
        thread2_random = octree_trace(shuffled)  # hostile ordering

        # Solo: thread 1 runs alone on core 0.
        solo = make_dual()
        for address in thread1:
            solo.access(0, address)
        results = {"solo": solo.mean_cycles(0)}

        for label, thread2 in (
            ("morton", thread2_morton),
            ("random", thread2_random),
        ):
            shared = make_dual()
            # Thread 2 is memory-bound: one octree insertion issues ~2x
            # depth node visits, against thread 1's single bucket probe.
            for core, address in interleave_traces(
                thread1, thread2, chunk=8, chunk_b=8 * 24
            ):
                shared.access(core, address)
            results[label] = shared.mean_cycles(0)
            results[f"{label}_t2"] = shared.mean_cycles(1)
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    inflation_morton = results["morton"] / results["solo"]
    inflation_random = results["random"] / results["solo"]
    emit(
        "ablation_l2_contention",
        format_table(
            ["metric", "cycles/access"],
            [
                ["thread 1 solo", f"{results['solo']:.1f}"],
                [
                    "thread 1 beside Morton-ordered octree updates",
                    f"{results['morton']:.1f} ({inflation_morton:.2f}x)",
                ],
                [
                    "thread 1 beside random-ordered octree updates",
                    f"{results['random']:.1f} ({inflation_random:.2f}x)",
                ],
                ["thread 2 (morton)", f"{results['morton_t2']:.1f}"],
                ["thread 2 (random)", f"{results['random_t2']:.1f}"],
            ],
        ),
    )

    # Contention exists but stays moderate — the paper's "one extra core
    # is cheap" claim...
    assert 1.0 <= inflation_morton < 2.0
    # ...and Morton eviction ordering is *also* the polite neighbour: its
    # L1-local octree traffic pressures the shared L2 no more than the
    # hostile ordering does.
    assert inflation_morton <= inflation_random + 0.02
