"""SkiMap-like mapping pipeline (Table 1's software comparator).

SkiMap organises voxels in a three-level hierarchy of skip lists
(x-index → y-index → z-index), trading the octree's root-to-leaf
traversal for expected O(log n) ordered-index hops.  The OctoCache paper
(Table 1) credits this with addressing the octree bottleneck while
charging a much higher memory overhead — each voxel carries skip-list
tower pointers at three levels.  Both properties are measurable here.

Note SkiMap has no inner-node occupancy summaries: multi-resolution
queries and unknown-space reasoning degrade compared with the octree,
which is why the paper keeps the octree and caches in front of it.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.interface import BatchRecord, MappingSystem
from repro.baselines.skiplist import SkipList
from repro.octree.key import VoxelKey
from repro.sensor.scaninsert import ScanBatch

__all__ = ["SkiMapPipeline"]


class SkiMapPipeline(MappingSystem):
    """Occupancy mapping on nested skip lists (x → y → z)."""

    name = "SkiMap"

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self._index = SkipList(seed=1)

    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        params = self.params
        index = self._index
        with self.timings.stage("skimap_update") as watch:
            for key, occupied in batch.observations:
                x, y, z = key
                y_list = index.get(x)
                if y_list is None:
                    y_list = SkipList(seed=x + 2)
                    index.insert(x, y_list)
                z_list = y_list.get(y)
                if z_list is None:
                    z_list = SkipList(seed=y + 3)
                    y_list.insert(y, z_list)
                value = z_list.get(z)
                if value is None:
                    value = params.threshold
                z_list.insert(z, params.update(value, occupied))
        record.octree_update = watch.elapsed  # comparable slot

    # ------------------------------------------------------------------
    # Query path.
    # ------------------------------------------------------------------

    def query_key(self, key: VoxelKey) -> Optional[float]:
        """Log-odds at ``key`` from the skip-list hierarchy."""
        y_list = self._index.get(key[0])
        if y_list is None:
            return None
        z_list = y_list.get(key[1])
        if z_list is None:
            return None
        return z_list.get(key[2])

    def critical_path_seconds(self) -> float:
        """Queries wait for the full index update, like vanilla OctoMap."""
        return self.timings.total(("ray_tracing", "skimap_update"))

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def memory_bytes(self) -> int:
        """Footprint including every tower pointer at all three levels."""
        total = self._index.memory_bytes()
        for _x, y_list in self._index.items():
            total += y_list.memory_bytes()
            for _y, z_list in y_list.items():
                total += z_list.memory_bytes()
        return total

    def stored_voxels(self) -> int:
        """Number of voxels carrying occupancy values."""
        return sum(
            len(z_list)
            for _x, y_list in self._index.items()
            for _y, z_list in y_list.items()
        )
