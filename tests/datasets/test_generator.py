"""Tests for the named dataset generators and their statistics."""

import numpy as np
import pytest

from repro.datasets.generator import DATASET_NAMES, make_dataset
from repro.datasets.overlap import overlap_cdf, overlap_ratios
from repro.datasets.stats import batch_duplication_ratios, dataset_statistics

SCALE = 0.25  # tiny but structurally faithful datasets for tests
RES = 0.4
DEPTH = 10


class TestMakeDataset:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_constructs_and_scans(self, name):
        dataset = make_dataset(name, scale=SCALE)
        assert len(dataset) >= 3
        first = next(iter(dataset.scans()))
        assert len(first) > 0

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_dataset("atlantis")

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            make_dataset("fr079_corridor", scale=0.0)

    def test_deterministic_given_seed(self):
        a = make_dataset("fr079_corridor", scale=SCALE, seed=42)
        b = make_dataset("fr079_corridor", scale=SCALE, seed=42)
        pa = next(iter(a.scans())).points
        pb = next(iter(b.scans())).points
        assert np.array_equal(pa, pb)

    def test_seed_changes_noise(self):
        a = make_dataset("fr079_corridor", scale=SCALE, seed=1)
        b = make_dataset("fr079_corridor", scale=SCALE, seed=2)
        pa = next(iter(a.scans())).points
        pb = next(iter(b.scans())).points
        assert not np.array_equal(pa, pb)

    def test_scan_at_matches_length(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        cloud = dataset.scan_at(0)
        assert len(cloud) > 0

    def test_scale_grows_dataset(self):
        small = make_dataset("new_college", scale=SCALE)
        large = make_dataset("new_college", scale=2 * SCALE)
        assert len(large) > len(small)
        assert large.sensor.rays_per_scan > small.sensor.rays_per_scan


class TestStatistics:
    def test_duplication_present(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        stats = dataset_statistics(dataset, RES, DEPTH)
        assert stats.num_point_clouds == len(dataset)
        assert stats.total_observations > stats.distinct_voxels
        assert stats.duplication_ratio > 1.5

    def test_corridor_duplicates_most(self):
        """Paper §3.1 / Table 2 shape: the indoor corridor has the highest
        per-batch duplication of the three datasets."""
        ratios = {}
        for name in DATASET_NAMES:
            dataset = make_dataset(name, scale=SCALE)
            stats = dataset_statistics(dataset, RES, DEPTH)
            ratios[name] = stats.duplication_ratio
        assert ratios["fr079_corridor"] == max(ratios.values())

    def test_finer_resolution_more_voxels(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        coarse = dataset_statistics(dataset, 0.8, DEPTH)
        fine = dataset_statistics(dataset, 0.2, DEPTH)
        assert fine.distinct_voxels > coarse.distinct_voxels

    def test_batch_duplication_range(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        ranges = batch_duplication_ratios(dataset, [RES], DEPTH)
        low, high = ranges[RES]
        assert 1.0 <= low <= high


class TestOverlap:
    def test_overlap_in_unit_range(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        ratios = overlap_ratios(dataset, RES, DEPTH)
        assert len(ratios) == len(dataset) - 1
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_corridor_overlaps_more_than_campus(self):
        """Figure 8 shape: campus is the low-overlap outlier.

        Needs a denser trajectory than the other tests — at very small
        scales poses are so far apart that no dataset overlaps at all.
        """
        corridor = np.median(
            overlap_ratios(make_dataset("fr079_corridor", scale=0.6), RES, DEPTH)
        )
        campus = np.median(
            overlap_ratios(make_dataset("freiburg_campus", scale=0.6), RES, DEPTH)
        )
        assert corridor > campus

    def test_window_widens_overlap(self):
        dataset = make_dataset("new_college", scale=SCALE)
        w1 = np.mean(overlap_ratios(dataset, RES, DEPTH, window=1))
        w3 = np.mean(overlap_ratios(dataset, RES, DEPTH, window=3))
        assert w3 >= w1

    def test_invalid_window(self):
        dataset = make_dataset("fr079_corridor", scale=SCALE)
        with pytest.raises(ValueError):
            overlap_ratios(dataset, RES, DEPTH, window=0)

    def test_cdf_monotone(self):
        cdf = overlap_cdf([0.1, 0.5, 0.9, 0.5])
        fractions = [f for _t, f in cdf]
        assert fractions == sorted(fractions)
        assert fractions[-1] == 1.0
