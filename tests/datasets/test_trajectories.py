"""Tests for scan trajectories."""

import numpy as np
import pytest

from repro.datasets.trajectories import (
    Pose,
    line_trajectory,
    loop_trajectory,
    waypoint_trajectory,
)


class TestLine:
    def test_endpoints(self):
        poses = line_trajectory((0, 0, 1), (10, 0, 1), 5)
        assert poses[0].position == (0, 0, 1)
        assert poses[-1].position == (10, 0, 1)
        assert len(poses) == 5

    def test_heading_along_segment(self):
        poses = line_trajectory((0, 0, 1), (0, 5, 1), 3)
        assert poses[0].yaw == pytest.approx(np.pi / 2)

    def test_single_pose(self):
        poses = line_trajectory((1, 2, 3), (4, 5, 6), 1)
        assert len(poses) == 1
        assert poses[0].position == (1.0, 2.0, 3.0)

    def test_even_spacing(self):
        poses = line_trajectory((0, 0, 0), (9, 0, 0), 10)
        xs = [p.position[0] for p in poses]
        steps = np.diff(xs)
        assert np.allclose(steps, 1.0)

    def test_rejects_zero_poses(self):
        with pytest.raises(ValueError):
            line_trajectory((0, 0, 0), (1, 0, 0), 0)


class TestLoop:
    def test_on_circle(self):
        poses = loop_trajectory((0, 0), radius=5.0, height=2.0, num_poses=8)
        for pose in poses:
            r = np.hypot(pose.position[0], pose.position[1])
            assert r == pytest.approx(5.0)
            assert pose.position[2] == 2.0

    def test_outward_heading(self):
        poses = loop_trajectory((0, 0), 5.0, 1.0, 4, face_outward=True)
        first = poses[0]
        # At angle 0 the position is (5,0); outward heading is +x (yaw 0).
        assert first.yaw == pytest.approx(0.0)

    def test_tangential_heading(self):
        poses = loop_trajectory((0, 0), 5.0, 1.0, 4, face_outward=False)
        assert poses[0].yaw == pytest.approx(np.pi / 2)

    def test_validation(self):
        with pytest.raises(ValueError):
            loop_trajectory((0, 0), -1.0, 1.0, 4)
        with pytest.raises(ValueError):
            loop_trajectory((0, 0), 1.0, 1.0, 0)


class TestWaypoints:
    def test_concatenation_no_duplicates(self):
        poses = waypoint_trajectory(
            [(0, 0, 0), (10, 0, 0), (10, 10, 0)], poses_per_leg=3
        )
        positions = [p.position for p in poses]
        assert len(positions) == len(set(positions))  # shared corner deduped
        assert positions[0] == (0.0, 0.0, 0.0)
        assert positions[-1] == (10.0, 10.0, 0.0)

    def test_heading_changes_at_corner(self):
        poses = waypoint_trajectory(
            [(0, 0, 0), (10, 0, 0), (10, 10, 0)], poses_per_leg=3
        )
        yaws = {round(p.yaw, 3) for p in poses}
        assert len(yaws) == 2

    def test_needs_two_waypoints(self):
        with pytest.raises(ValueError):
            waypoint_trajectory([(0, 0, 0)], poses_per_leg=3)
