"""ASCII rendering of the serial / two-thread workflow timelines (Fig. 13).

The paper's Figure 13 explains OctoCache with stacked per-stage bars;
``render_serial_timeline`` and ``render_parallel_timeline`` reproduce that
visual from *measured* per-batch stage times, one character per time
quantum, so any run can print its own Figure 13.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.pipeline_model import StageTimes

__all__ = ["render_serial_timeline", "render_parallel_timeline"]

#: Stage glyphs: ray tracing, cache insertion, cache eviction, octree
#: update, idle/waiting.
_GLYPHS = {"ray": "R", "insert": "I", "evict": "E", "octree": "O", "wait": "."}


def _bar(segments: Sequence[tuple], scale: float) -> str:
    chars: List[str] = []
    carry = 0.0
    for glyph, seconds in segments:
        carry += seconds * scale
        count = int(round(carry)) - len(chars)
        chars.extend(glyph * max(count, 0))
    return "".join(chars)


def render_serial_timeline(
    batches: Sequence[StageTimes], width: int = 72
) -> str:
    """One-line serial timeline: stages of every batch back to back."""
    total = sum(batch.serial_seconds for batch in batches)
    if total <= 0:
        return "(empty timeline)"
    scale = width / total
    segments = []
    for batch in batches:
        segments.extend(
            [
                (_GLYPHS["ray"], batch.ray_tracing),
                (_GLYPHS["insert"], batch.cache_insertion),
                (_GLYPHS["evict"], batch.cache_eviction),
                (_GLYPHS["octree"], batch.octree_update),
            ]
        )
    legend = "R ray tracing | I cache insert | E evict | O octree update | . wait"
    return f"serial : {_bar(segments, scale)}\n         ({legend})"


def render_parallel_timeline(
    batches: Sequence[StageTimes], width: int = 72
) -> str:
    """Two-line timeline: thread 1 (critical path) and thread 2 (octree).

    Follows the schedule of
    :meth:`repro.core.pipeline_model.PipelineModel.simulate`: cache
    insertion of batch *i* waits for octree update *i−1*; octree update
    *i* streams from the start of eviction *i*.
    """
    if not batches:
        return "(empty timeline)"
    # Simulate to learn the makespan (for scaling) and the wait gaps.
    thread1_segments = []
    thread2_segments = []
    t1 = 0.0
    octree_done = 0.0
    for batch in batches:
        thread1_segments.append((_GLYPHS["ray"], batch.ray_tracing))
        t1 += batch.ray_tracing
        if octree_done > t1:
            thread1_segments.append((_GLYPHS["wait"], octree_done - t1))
            t1 = octree_done
        thread1_segments.append((_GLYPHS["insert"], batch.cache_insertion))
        t1 += batch.cache_insertion
        eviction_start = t1
        thread1_segments.append((_GLYPHS["evict"], batch.cache_eviction))
        t1 += batch.cache_eviction
        start = max(eviction_start, octree_done)
        thread2_segments.append((_GLYPHS["wait"], start - octree_done))
        thread2_segments.append((_GLYPHS["octree"], batch.octree_update))
        octree_done = start + batch.octree_update
    makespan = max(t1, octree_done)
    if makespan <= 0:
        return "(empty timeline)"
    scale = width / makespan
    legend = "R ray tracing | I cache insert | E evict | O octree update | . wait"
    return (
        f"thread1: {_bar(thread1_segments, scale)}\n"
        f"thread2: {_bar(thread2_segments, scale)}\n"
        f"         ({legend})"
    )
