"""Set-associative LRU cache simulator.

Functional (hit/miss) simulation of one cache level; levels compose into a
hierarchy via :class:`repro.simcache.cost_model.MemoryHierarchy`.  LRU
state per set is kept in an ordered list — associativities are small (4–16
ways), so list operations stay cheap.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["CacheLevel", "CacheSimulator"]


class CacheLevel:
    """Geometry of one cache level.

    Args:
        name: label used in reports ("L1", "L2", ...).
        size_bytes: total capacity.
        line_bytes: cache-line size (power of two).
        associativity: ways per set; must divide ``size_bytes / line_bytes``.
    """

    def __init__(
        self, name: str, size_bytes: int, line_bytes: int = 64, associativity: int = 8
    ) -> None:
        if size_bytes <= 0 or line_bytes <= 0 or associativity <= 0:
            raise ValueError("cache geometry values must be positive")
        if line_bytes & (line_bytes - 1):
            raise ValueError(f"line_bytes must be a power of two, got {line_bytes}")
        num_lines = size_bytes // line_bytes
        if num_lines == 0 or num_lines % associativity:
            raise ValueError(
                f"{size_bytes} bytes / {line_bytes}B lines does not divide "
                f"into {associativity}-way sets"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.line_bytes = line_bytes
        self.associativity = associativity
        self.num_sets = num_lines // associativity

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CacheLevel({self.name}, {self.size_bytes}B, "
            f"{self.associativity}-way, {self.num_sets} sets)"
        )


class CacheSimulator:
    """LRU set-associative simulator for one :class:`CacheLevel`.

    Args:
        level: cache geometry.
        next_line_prefetch: on every demand miss, also install the
            following cache line (a classic next-line prefetcher).
            Prefetch installs are free in the cost model — they model
            hardware fill bandwidth hiding — and counted separately in
            :attr:`prefetches`.
    """

    def __init__(self, level: CacheLevel, next_line_prefetch: bool = False) -> None:
        self.level = level
        self.hits = 0
        self.misses = 0
        self.prefetches = 0
        self.next_line_prefetch = next_line_prefetch
        # set index -> list of resident line tags, most recently used last.
        self._sets: Dict[int, List[int]] = {}
        self._set_mask = level.num_sets - 1
        self._sets_are_pow2 = (level.num_sets & (level.num_sets - 1)) == 0

    def _set_of(self, line: int) -> int:
        if self._sets_are_pow2:
            return line & self._set_mask
        return line % self.level.num_sets

    def _install(self, line: int) -> None:
        resident = self._sets.setdefault(self._set_of(line), [])
        if line in resident:
            return
        if len(resident) >= self.level.associativity:
            resident.pop(0)
        resident.append(line)

    def access(self, address: int) -> bool:
        """Touch ``address``; returns ``True`` on hit, ``False`` on miss.

        A miss installs the line, evicting the set's LRU line if full.
        """
        line = address // self.level.line_bytes
        resident = self._sets.get(self._set_of(line))
        if resident is None:
            resident = []
            self._sets[self._set_of(line)] = resident
        try:
            resident.remove(line)
        except ValueError:
            self.misses += 1
            if len(resident) >= self.level.associativity:
                resident.pop(0)
            resident.append(line)
            if self.next_line_prefetch:
                self.prefetches += 1
                self._install(line + 1)
            return False
        resident.append(line)
        self.hits += 1
        return True

    @property
    def accesses(self) -> int:
        """Total accesses simulated so far."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Hit ratio over all accesses (0.0 when none)."""
        total = self.accesses
        return self.hits / total if total else 0.0

    def reset_counters(self) -> None:
        """Zero the hit/miss counters, keeping cache contents warm."""
        self.hits = 0
        self.misses = 0

    def flush(self) -> None:
        """Empty the cache and zero the counters."""
        self._sets.clear()
        self.reset_counters()
