"""Array-pass duplication elimination (paper §4 as one sort/unique pass).

A traced batch touches each voxel many times (§3.1 reports 2.78–31.3×
intra-batch duplication).  These helpers collapse an observation stream
``(keys, occupied)`` to its unique voxels in a single Morton-encode →
stable-sort → segment-reduce pass:

- :func:`dedup_observations` reproduces
  :func:`repro.sensor.scaninsert.trace_scan_rt` semantics *by
  construction*: each voxel appears once, occupied wins over free
  (``np.logical_or.reduceat`` per segment), and output order is
  first-touch order (the stable sort keeps the earliest observation
  first in each segment).
- :func:`group_observations` keeps the full per-voxel observation
  subsequences (for the bulk log-odds fold) instead of reducing them.

Grouping sorts by a *packed* key code — ``x << 42 | y << 21 | z``, or a
30-bit packing sorted as a two-pass uint16 radix when coordinates fit
10 bits (see :func:`_grouping_order`) — injective for in-bounds keys
and costing four array ops where the Morton interleave costs ~18.  The
sort order differs from Morton order, but group identity (and therefore
every output, which is emitted in first-touch order) is identical; the
Morton codes consumers need for cache indexing are computed afterwards
on the unique keys only.
"""

from __future__ import annotations

from typing import NamedTuple, Tuple

import numpy as np

from repro.octree.key import keys_to_morton

__all__ = ["GroupedObservations", "dedup_observations", "group_observations"]


def _packed_codes(keys: np.ndarray) -> np.ndarray:
    """Injective per-voxel sort code: ``x << 42 | y << 21 | z``."""
    return (keys[:, 0] << 42) | (keys[:, 1] << 21) | keys[:, 2]


def _grouping_order(keys: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """``(codes, order)``: injective codes + stable sort of the stream.

    Any injective code yields the same groups, and every output is
    emitted in first-touch order — so the code layout is free to chase
    sort speed.  When all coordinates fit 10 bits (maps of depth <= 10,
    the bench configuration) the code packs into 30 bits and the sort
    runs as a two-pass LSD radix over uint16 digits, where numpy's
    stable argsort uses a counting sort ~9x faster than the int64
    comparison sort; otherwise it falls back to one stable argsort of
    the wide packed code.
    """
    if keys.shape[0] and int(keys.min()) >= 0 and int(keys.max()) < 1024:
        packed = (keys[:, 0] << 20) | (keys[:, 1] << 10) | keys[:, 2]
        p32 = packed.astype(np.uint32)
        low = (p32 & np.uint32(0xFFFF)).astype(np.uint16)
        high = (p32 >> np.uint32(16)).astype(np.uint16)
        order = np.argsort(low, kind="stable")
        order = order[np.argsort(high[order], kind="stable")]
        return packed, order
    packed = _packed_codes(keys)
    return packed, np.argsort(packed, kind="stable")


class GroupedObservations(NamedTuple):
    """An observation stream grouped by unique voxel.

    Attributes:
        codes: ``(U,)`` uint64 Morton code per unique voxel, in
            first-touch order.
        keys: ``(U, 3)`` int64 voxel keys, first-touch order.
        counts: ``(U,)`` observations per voxel, first-touch order.
        seg_starts: ``(U,)`` offset of each voxel's observation run in
            ``occ_sorted``, first-touch order.
        occ_sorted: ``(M,)`` bool occupied flags, grouped by voxel
            (segment layout), original observation order within each
            segment — the exact per-voxel update sequences.
    """

    codes: np.ndarray
    keys: np.ndarray
    counts: np.ndarray
    seg_starts: np.ndarray
    occ_sorted: np.ndarray


def group_observations(
    keys: np.ndarray, occupied: np.ndarray
) -> GroupedObservations:
    """Group a ``(keys, occupied)`` stream by unique voxel.

    One stable sort by packed key code; each segment of equal codes
    holds that voxel's observations in original stream order, so folding
    a segment left-to-right replays the scalar per-voxel update sequence
    exactly.  Group order is first-touch order.
    """
    total = keys.shape[0]
    if total == 0:
        empty = np.empty(0, dtype=np.int64)
        return GroupedObservations(
            codes=np.empty(0, dtype=np.uint64),
            keys=np.empty((0, 3), dtype=np.int64),
            counts=empty,
            seg_starts=empty,
            occ_sorted=np.empty(0, dtype=bool),
        )
    packed, order = _grouping_order(keys)
    sorted_packed = packed[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_packed[1:], sorted_packed[:-1], out=boundary[1:])
    seg_starts = np.flatnonzero(boundary)
    counts = np.empty(seg_starts.shape[0], dtype=np.int64)
    np.subtract(seg_starts[1:], seg_starts[:-1], out=counts[:-1])
    counts[-1] = total - seg_starts[-1]
    # Stable sort ⇒ the first element of each segment carries the lowest
    # original index: the voxel's first touch.
    first_touch = order[seg_starts]
    perm = np.argsort(first_touch, kind="stable")
    unique_keys = keys[first_touch[perm]]
    return GroupedObservations(
        codes=keys_to_morton(unique_keys),
        keys=unique_keys,
        counts=counts[perm],
        seg_starts=seg_starts[perm],
        occ_sorted=occupied[order],
    )


def dedup_observations(
    keys: np.ndarray, occupied: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Collapse a stream to unique voxels: occupied wins, first-touch order.

    Returns ``(keys, occupied)`` arrays of the deduplicated batch —
    exactly what :func:`repro.sensor.scaninsert.trace_scan_rt` emits for
    the same stream.
    """
    total = keys.shape[0]
    if total == 0:
        return keys[:0].reshape(0, 3), occupied[:0]
    packed, order = _grouping_order(keys)
    sorted_packed = packed[order]
    boundary = np.empty(total, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_packed[1:], sorted_packed[:-1], out=boundary[1:])
    seg_starts = np.flatnonzero(boundary)
    first_touch = order[seg_starts]
    seg_occupied = np.logical_or.reduceat(occupied[order], seg_starts)
    perm = np.argsort(first_touch, kind="stable")
    return keys[first_touch[perm]], seg_occupied[perm]
