"""Deterministic fault injection for chaos-testing the map service.

A :class:`FaultPlan` is a list of :class:`FaultSpec` rules evaluated at
named *sites* inside the service — points where production deployments
actually fail.  Each component calls ``plan.check(site, shard=...)`` at
its site; the plan either does nothing (the overwhelmingly common case),
sleeps (``delay``), asks the caller to drop the work (``drop``), or
raises (``error`` for a transient/retryable failure, ``crash`` for a
fatal shard-worker failure that triggers recovery).

Matching is deterministic — by site, optional shard, and a per-spec
match counter (``after`` skips, ``times`` fires) — so every failure path
can be driven exactly, repeatably, from a test or ``chaos-bench`` run.

Sites used by the service (see ``docs/resilience.md``):

- ``shard.apply`` — a shard worker about to apply a dequeued batch.
- ``queue.enqueue`` — a producer about to enqueue one shard slice.
- ``octree.update`` — inside :meth:`ShardedMap.apply_to_shard`, just
  before the cache-insert → evict → octree-update cycle.
- ``snapshot.write`` — the checkpoint store serialising a shard snapshot.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

__all__ = [
    "FAULT_SITES",
    "FaultPlan",
    "FaultSpec",
    "InjectedCrash",
    "InjectedFault",
]

#: The named injection sites the service exposes.
FAULT_SITES = (
    "shard.apply",
    "queue.enqueue",
    "octree.update",
    "snapshot.write",
)

_MODES = ("error", "crash", "delay", "drop")


class InjectedFault(RuntimeError):
    """A deliberately injected *transient* failure (retryable)."""


class InjectedCrash(InjectedFault):
    """A deliberately injected *fatal* failure: kills the shard worker."""


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule.

    Attributes:
        site: injection site name (one of :data:`FAULT_SITES`).
        mode: ``"error"`` raises :class:`InjectedFault`, ``"crash"``
            raises :class:`InjectedCrash`, ``"delay"`` sleeps
            ``delay`` seconds, ``"drop"`` tells the caller to discard
            the work item.
        shard: only match calls for this shard (``None`` = any shard).
        after: skip this many matching calls before firing.
        times: fire on this many matching calls after the skip.
        delay: sleep duration for ``"delay"`` mode.
        message: carried into the raised exception (``error``/``crash``).
    """

    site: str
    mode: str = "error"
    shard: Optional[int] = None
    after: int = 0
    times: int = 1
    delay: float = 0.0
    message: str = ""

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise ValueError(
                f"unknown fault site {self.site!r}; expected one of {FAULT_SITES}"
            )
        if self.mode not in _MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of {_MODES}"
            )
        if self.after < 0:
            raise ValueError(f"after must be >= 0, got {self.after}")
        if self.times < 1:
            raise ValueError(f"times must be >= 1, got {self.times}")
        if self.delay < 0:
            raise ValueError(f"delay must be >= 0, got {self.delay}")


class FaultPlan:
    """A thread-safe set of fault rules plus a log of what fired.

    The empty plan (``FaultPlan()``) is the production configuration: a
    ``check`` against it is a handful of instructions and can stay wired
    in permanently.
    """

    def __init__(self, specs: Sequence[FaultSpec] = ()) -> None:
        self._specs: List[FaultSpec] = list(specs)
        self._lock = threading.Lock()
        self._matches: List[int] = [0] * len(self._specs)
        #: Chronological log of fired injections (dicts with site/mode/
        #: shard/match-ordinal), for assertions and the chaos report.
        self.fired: List[Dict[str, object]] = []

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultPlan(specs={len(self._specs)}, fired={len(self.fired)})"

    @property
    def specs(self) -> List[FaultSpec]:
        return list(self._specs)

    def fired_at(self, site: str) -> int:
        """How many injections have fired at ``site``."""
        with self._lock:
            return sum(1 for entry in self.fired if entry["site"] == site)

    def check(self, site: str, shard: Optional[int] = None) -> Optional[str]:
        """Evaluate the plan at one site.

        Returns ``"drop"`` when the caller should discard the work item,
        ``None`` otherwise.  Raises :class:`InjectedFault` /
        :class:`InjectedCrash` for ``error``/``crash`` rules and sleeps
        for ``delay`` rules.
        """
        if not self._specs:
            return None
        action: Optional[FaultSpec] = None
        with self._lock:
            for index, spec in enumerate(self._specs):
                if spec.site != site:
                    continue
                if spec.shard is not None and spec.shard != shard:
                    continue
                self._matches[index] += 1
                ordinal = self._matches[index]
                if spec.after < ordinal <= spec.after + spec.times:
                    self.fired.append(
                        {
                            "site": site,
                            "mode": spec.mode,
                            "shard": shard,
                            "ordinal": ordinal,
                        }
                    )
                    action = spec
                    break
        if action is None:
            return None
        if action.mode == "delay":
            time.sleep(action.delay)
            return None
        if action.mode == "drop":
            return "drop"
        message = action.message or (
            f"injected {action.mode} at {site}"
            + (f" (shard {shard})" if shard is not None else "")
        )
        if action.mode == "crash":
            raise InjectedCrash(message)
        raise InjectedFault(message)
