"""Maximum safe flight velocity (Krishnan et al. bound, paper §5.1).

A UAV flying at velocity *v* detects an obstacle at its sensing range *d*,
spends the end-to-end response time *t* (compute latency + one sensor
frame) still travelling at *v*, then brakes at acceleration *a*.  Safety
requires the stopping distance to fit inside the sensing range:

    v * t + v² / (2a) ≤ d

Solving for the largest safe *v*:

    v_max = a * (−t + sqrt(t² + 2d / a))

capped by the rotor-limited top speed.  A faster mapping system shrinks
*t* and therefore raises *v_max* — the mechanism behind Figures 16–19.
"""

from __future__ import annotations

import math

from repro.uav.vehicle import UAVModel

__all__ = ["max_safe_velocity", "response_time"]


def response_time(uav: UAVModel, compute_latency: float) -> float:
    """End-to-end reaction time: compute latency plus one sensor frame."""
    if compute_latency < 0:
        raise ValueError(f"compute_latency must be non-negative, got {compute_latency}")
    return compute_latency + uav.frame_period


def max_safe_velocity(
    uav: UAVModel, sensing_range: float, compute_latency: float
) -> float:
    """Largest velocity at which the UAV can stop within its sensing range.

    Args:
        uav: vehicle physics envelope.
        sensing_range: obstacle detection distance (metres).
        compute_latency: per-cycle perception+planning latency (seconds).

    Returns:
        the safe velocity in m/s, capped at ``uav.max_velocity``.
    """
    if sensing_range <= 0:
        raise ValueError(f"sensing_range must be positive, got {sensing_range}")
    t = response_time(uav, compute_latency)
    a = uav.braking_acceleration
    v = a * (-t + math.sqrt(t * t + 2.0 * sensing_range / a))
    return min(v, uav.max_velocity)
