"""Process-level memory from the OS: current RSS and peak RSS.

Stdlib only.  Current RSS comes from ``/proc/self/statm`` (Linux); the
peak from ``resource.getrusage`` (POSIX).  Both return ``None`` where
the source is unavailable rather than guessing — callers render the
field as absent, not zero.
"""

from __future__ import annotations

import os
import sys
from typing import Optional

__all__ = ["peak_rss_bytes", "process_rss_bytes"]

_PAGE_SIZE: Optional[int] = None


def _page_size() -> int:
    global _PAGE_SIZE
    if _PAGE_SIZE is None:
        try:
            _PAGE_SIZE = os.sysconf("SC_PAGE_SIZE")
        except (ValueError, OSError, AttributeError):
            _PAGE_SIZE = 4096
    return _PAGE_SIZE


def process_rss_bytes() -> Optional[int]:
    """This process's current resident set size, or ``None``."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _page_size()
    except (OSError, IndexError, ValueError):
        return None


def peak_rss_bytes() -> Optional[int]:
    """This process's lifetime peak RSS, or ``None``.

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS — normalised
    to bytes here.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    if usage <= 0:
        return None
    if sys.platform == "darwin":  # pragma: no cover - macOS units
        return int(usage)
    return int(usage) * 1024
