"""MAVBench-like closed-loop UAV autonomous navigation simulator.

Reproduces the paper's §5.1/§6.1 evaluation loop: sense → update map →
plan → move, with the mapping system swappable between OctoMap, OctoCache,
and their -RT variants.  The UAV's maximum safe velocity follows the
Krishnan et al. bound the paper uses (velocity limited by how far the UAV
can see and how fast it can compute), so mapping-system speedups translate
into flight velocity and mission completion time exactly as in Figure 16.
"""

from repro.uav.environments import Environment, make_environment, ENVIRONMENT_NAMES
from repro.uav.vehicle import UAVModel, ASCTEC_PELICAN, DJI_SPARK
from repro.uav.velocity import max_safe_velocity
from repro.uav.planner import GreedyPlanner
from repro.uav.mission import MissionConfig, MissionResult, run_mission

__all__ = [
    "ASCTEC_PELICAN",
    "DJI_SPARK",
    "ENVIRONMENT_NAMES",
    "Environment",
    "GreedyPlanner",
    "MissionConfig",
    "MissionResult",
    "UAVModel",
    "make_environment",
    "max_safe_velocity",
    "run_mission",
]
