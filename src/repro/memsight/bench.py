"""``mem-bench``: grow maps and prove the byte accounting stays honest.

The accounting contract has three legs, and this bench exercises all of
them against a real ingest workload (same datasets / tracing as the perf
suite):

1. **Incremental == exact.**  Every structure keeps O(1) byte counters
   on its hot path *and* can recount by walking its storage.  After each
   growth step (and after the tenant-fleet churn) the bench folds the
   two trees with :meth:`MemoryReport.drift_bytes`; the series metric
   ``mem_accounting_drift`` is the worst observed drift and is baselined
   at **zero** — a single leaked or double-counted byte fails CI.
2. **Modeled vs. measured.**  The accounted bytes are modeled constants
   (:mod:`repro.memsight.costs`), deliberately *not* Python object
   sizes — they answer "what would this map cost in the paper's packed
   C++ layout", the number ``bytes_per_voxel`` tracks in the series.
   The bench still cross-checks the model against reality: accounted
   growth must move *with* ``tracemalloc`` growth (thread backend only —
   the tracer cannot see worker processes), and the ratio is recorded so
   a drifting model shows up in review even though only its direction is
   asserted.
3. **Eviction returns to baseline.**  A tenant fleet is created, grown,
   and one tenant evicted: its map slots, journal entries, and changelog
   ring must account to exactly zero afterwards (snapshots remain — they
   are the durable copy eviction exists to keep).

Run it as ``python -m repro mem-bench``; the entry appends to the same
``BENCH_<host>.json`` series the perf suite uses and is gated by
``perf-check --metrics bytes_per_voxel,mem_accounting_drift``.
"""

from __future__ import annotations

import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.memsight.rss import process_rss_bytes

__all__ = ["MemBenchReport", "MemBenchStep", "run_mem_bench"]


@dataclass(frozen=True)
class MemBenchStep:
    """One growth-step measurement."""

    scans: int
    distinct_voxels: int
    accounted_bytes: int
    map_bytes: int
    drift_bytes: int
    rss_bytes: Optional[int]
    traced_bytes: Optional[int]

    def to_dict(self) -> Dict[str, object]:
        return {
            "scans": self.scans,
            "distinct_voxels": self.distinct_voxels,
            "accounted_bytes": self.accounted_bytes,
            "map_bytes": self.map_bytes,
            "drift_bytes": self.drift_bytes,
            "rss_bytes": self.rss_bytes,
            "traced_bytes": self.traced_bytes,
        }


@dataclass
class MemBenchReport:
    """Everything one ``mem-bench`` run measured."""

    dataset: str
    workers: str
    quick: bool
    steps: List[MemBenchStep] = field(default_factory=list)
    tenants: int = 0
    tenant_bytes: Dict[str, int] = field(default_factory=dict)
    evict_released_bytes: int = 0
    evict_residual_bytes: int = 0
    restore_drift_bytes: int = 0
    bytes_per_voxel: float = 0.0
    mem_accounting_drift: float = 0.0
    traced_ratio: Optional[float] = None
    pressure_level: str = "ok"
    elapsed_seconds: float = 0.0
    timestamp: float = 0.0
    env: Dict[str, object] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """The pass verdict CI asserts: zero drift, eviction clean."""
        return self.mem_accounting_drift == 0 and self.evict_residual_bytes == 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "workers": self.workers,
            "quick": self.quick,
            "ok": self.ok,
            "steps": [step.to_dict() for step in self.steps],
            "tenants": self.tenants,
            "tenant_bytes": dict(self.tenant_bytes),
            "evict_released_bytes": self.evict_released_bytes,
            "evict_residual_bytes": self.evict_residual_bytes,
            "restore_drift_bytes": self.restore_drift_bytes,
            "bytes_per_voxel": self.bytes_per_voxel,
            "mem_accounting_drift": self.mem_accounting_drift,
            "traced_ratio": self.traced_ratio,
            "pressure_level": self.pressure_level,
            "elapsed_seconds": self.elapsed_seconds,
            "timestamp": self.timestamp,
            "env": dict(self.env),
        }

    def to_bench_entry(self) -> Dict[str, object]:
        """A ``BENCH_<host>.json`` series entry carrying the mem metrics.

        Deliberately a *subset* entry (like ``load-bench``'s): gate it
        with ``perf-check --metrics bytes_per_voxel,mem_accounting_drift``
        so the perf suite's metrics are not flagged as dropped.
        """
        metrics = {
            "bytes_per_voxel": {
                "value": self.bytes_per_voxel,
                "unit": "B/voxel",
                "direction": "lower",
                "samples": [self.bytes_per_voxel],
            },
            "mem_accounting_drift": {
                "value": float(self.mem_accounting_drift),
                "unit": "bytes",
                "direction": "lower",
                "samples": [float(self.mem_accounting_drift)],
            },
        }
        return {
            "timestamp": self.timestamp,
            "quick": self.quick,
            "repeats": 1,
            "elapsed_seconds": self.elapsed_seconds,
            "kind": "mem-bench",
            "env": dict(self.env),
            "metrics": metrics,
        }

    def table(self) -> str:
        from repro.analysis.report import format_table

        rows = [
            [
                step.scans,
                step.distinct_voxels,
                step.accounted_bytes,
                step.drift_bytes,
                "-" if step.rss_bytes is None else step.rss_bytes,
            ]
            for step in self.steps
        ]
        return format_table(
            ["scans", "voxels", "accounted B", "drift B", "rss B"], rows
        )


def run_mem_bench(
    dataset_name: str = "fr079_corridor",
    quick: bool = False,
    resolution: float = 0.3,
    depth: int = 10,
    shards: int = 2,
    workers: str = "thread",
    num_procs: Optional[int] = None,
    tenants: int = 3,
    growth_steps: int = 3,
) -> MemBenchReport:
    """Grow a map (then a tenant fleet) and validate the accounting.

    The drift gate holds on *quiescent* states: every measurement runs
    after ``flush()``, when queues are drained and (on the process
    backend) every worker has relayed its current per-slot rollup.
    """
    from repro.datasets.workload import load_bench_workload
    from repro.obs.perf import environment_fingerprint
    from repro.sensor.scaninsert import trace_scan
    from repro.service.server import OccupancyMapService, ServiceConfig
    from repro.tenancy.registry import TenantRegistry

    report = MemBenchReport(
        dataset=dataset_name, workers=workers, quick=quick, tenants=tenants
    )
    report.timestamp = time.time()
    report.env = environment_fingerprint(workers=workers, num_procs=num_procs)
    start = time.perf_counter()

    workload = load_bench_workload(
        dataset_name,
        ray_scale=0.3 if quick else 0.5,
        max_batches=4 if quick else 10,
    )
    batches = [
        trace_scan(
            cloud, resolution, depth, max_range=workload.max_range
        ).observations
        for cloud in workload
    ]

    # tracemalloc sees only this process's allocations; worker processes
    # hold the map on the process backend, so the cross-check is
    # thread-only.
    trace_python = workers == "thread" and not tracemalloc.is_tracing()
    if trace_python:
        tracemalloc.start()

    config = ServiceConfig(
        resolution=resolution,
        depth=depth,
        num_shards=shards,
        max_range=workload.max_range,
        snapshot_interval=0,
        workers=workers,
        num_procs=num_procs,
    )
    drifts: List[int] = []
    try:
        with OccupancyMapService(config) as service:
            base_accounted = service.memory_report().total_bytes
            if trace_python:
                base_traced, _peak = tracemalloc.get_traced_memory()
            distinct: set = set()
            per_step = max(1, len(batches) // max(1, growth_steps))
            scans = 0
            for offset in range(0, len(batches), per_step):
                for observations in batches[offset : offset + per_step]:
                    service.submit_observations(observations, must_accept=True)
                    distinct.update(key for key, _occupied in observations)
                    scans += 1
                service.flush()
                incremental, decision = service.refresh_memory_metrics()
                exact = service.memory_report(exact=True)
                drift = incremental.drift_bytes(exact)
                drifts.append(drift)
                traced = None
                if trace_python:
                    now_traced, _peak = tracemalloc.get_traced_memory()
                    traced = now_traced - base_traced
                map_child = incremental.child("map")
                report.steps.append(
                    MemBenchStep(
                        scans=scans,
                        distinct_voxels=len(distinct),
                        accounted_bytes=incremental.total_bytes,
                        map_bytes=(
                            map_child.total_bytes if map_child else 0
                        ),
                        drift_bytes=drift,
                        rss_bytes=process_rss_bytes(),
                        traced_bytes=traced,
                    )
                )
                report.pressure_level = decision.level
            last = report.steps[-1]
            if last.distinct_voxels:
                report.bytes_per_voxel = last.map_bytes / last.distinct_voxels
            if trace_python and last.traced_bytes:
                report.traced_ratio = (
                    (last.accounted_bytes - base_accounted) / last.traced_bytes
                )

            # ---- tenant fleet: attribution, evict-to-zero, restore ----
            if tenants > 0:
                registry = TenantRegistry(service)
                try:
                    names = [f"tenant-{index:02d}" for index in range(tenants)]
                    for name in names:
                        registry.create(name)
                    for index, name in enumerate(names):
                        for observations in batches[index :: tenants]:
                            registry.submit_observations(
                                name, observations, must_accept=True
                            )
                    registry.flush()
                    incremental, decision = service.refresh_memory_metrics()
                    drifts.append(
                        incremental.drift_bytes(
                            service.memory_report(exact=True)
                        )
                    )
                    report.tenant_bytes = service.tenant_memory_bytes()
                    report.pressure_level = decision.level

                    victim = registry.get(names[0])
                    before = report.tenant_bytes.get(names[0], 0)
                    registry.evict(names[0])
                    after = service.tenant_memory_bytes().get(names[0], 0)
                    report.evict_released_bytes = before - after
                    residual = victim.memory_breakdown(exact=True)
                    # Snapshot blobs are the durable copy eviction exists
                    # to keep; everything else must account to zero.
                    report.evict_residual_bytes = sum(
                        nbytes
                        for path, nbytes in residual.leaf_totals().items()
                        if "snapshot" not in path
                    ) + service.map.tenant_memory_bytes().get(victim.slot, 0)
                    drifts.append(
                        service.memory_report().drift_bytes(
                            service.memory_report(exact=True)
                        )
                    )

                    registry.restore(names[0])
                    report.restore_drift_bytes = service.memory_report(
                    ).drift_bytes(service.memory_report(exact=True))
                    drifts.append(report.restore_drift_bytes)
                finally:
                    registry.close()
    finally:
        if trace_python:
            tracemalloc.stop()
    report.mem_accounting_drift = float(max(drifts)) if drifts else 0.0
    report.elapsed_seconds = time.perf_counter() - start
    return report
