"""Closed-loop mission tests (the paper's §6.1 causal chain)."""

import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.core.octocache import OctoCacheMap
from repro.uav.environments import make_environment
from repro.uav.mission import MissionConfig, make_mission_sensor, run_mission
from repro.uav.vehicle import ASCTEC_PELICAN, DJI_SPARK


def octomap_factory(config):
    return lambda res: OctoMapPipeline(
        resolution=res, depth=11, max_range=config.sensing_range
    )


def octocache_factory(config):
    return lambda res: OctoCacheMap(
        resolution=res, depth=11, max_range=config.sensing_range
    )


class TestMissionConfig:
    def test_defaults_from_environment(self):
        env = make_environment("room")
        config = MissionConfig(environment=env)
        assert config.sensing_range == env.sensing_range
        assert config.resolution == env.resolution

    def test_validation(self):
        env = make_environment("room")
        with pytest.raises(ValueError):
            MissionConfig(environment=env, latency_scale=0.0)

    def test_mission_sensor_density(self):
        sensor = make_mission_sensor(3.0, 0.15)
        assert sensor.emit_misses
        assert sensor.max_range == 3.0
        assert sensor.horizontal_rays >= 16


class TestMissionRuns:
    def test_room_mission_succeeds(self):
        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=400)
        result = run_mission(config, octocache_factory(config))
        assert result.success
        assert not result.crashed
        assert result.completion_time > 0
        assert result.distance_travelled >= env.goal_distance * 0.8
        assert result.map_queries > 0

    def test_octocache_beats_octomap_in_room(self):
        """Figure 16 shape: OctoCache cuts response latency and mission
        time in the hardest (high-resolution) environment."""
        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=400)
        slow = run_mission(config, octomap_factory(config))
        fast = run_mission(config, octocache_factory(config))
        assert slow.success and fast.success
        assert fast.mean_response_latency < slow.mean_response_latency
        assert fast.completion_time < slow.completion_time

    def test_velocity_bounded_by_vehicle(self):
        # Trajectories are wall-clock driven (nondeterministic), so this
        # asserts the safety invariants, not mission completion.
        env = make_environment("openland")
        config = MissionConfig(environment=env, uav=DJI_SPARK, max_cycles=200)
        result = run_mission(config, octocache_factory(config))
        assert not result.crashed
        assert result.velocities
        assert max(result.velocities) <= DJI_SPARK.max_velocity + 1e-9

    def test_cycle_budget_respected(self):
        env = make_environment("factory")
        config = MissionConfig(environment=env, max_cycles=3)
        result = run_mission(config, octomap_factory(config))
        assert not result.success
        assert result.cycles <= 3

    def test_coarse_resolution_safe(self):
        """Even at the coarsest baseline (openland, 1 m voxels) the UAV
        must navigate without ground-truth collisions."""
        env = make_environment("openland")
        config = MissionConfig(environment=env, uav=ASCTEC_PELICAN, max_cycles=500)
        result = run_mission(config, octocache_factory(config))
        assert not result.crashed
        assert result.success
