"""Table 2 + §3.1: dataset statistics and intra-batch duplication.

Regenerates the paper's dataset table — point-cloud counts, non-duplicate
and duplicate voxel counts per resolution — plus the per-batch duplication
range the paper quotes (2.78–31.32×).  Absolute counts are laptop-scale;
the asserted shape is: duplicates ≫ non-duplicates, counts grow as
resolution refines, and the indoor corridor duplicates hardest.
"""

from repro.analysis.report import format_table
from repro.datasets.stats import dataset_statistics

from .conftest import BENCH_DEPTH

RESOLUTIONS = (0.2, 0.4, 0.8)


def test_table2_dataset_statistics(benchmark, all_datasets, emit):
    def run():
        stats = []
        for dataset in all_datasets:
            for resolution in RESOLUTIONS:
                stats.append(dataset_statistics(dataset, resolution, BENCH_DEPTH))
        return stats

    all_stats = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            s.name,
            s.num_point_clouds,
            s.resolution,
            s.distinct_voxels,
            s.total_observations,
            f"{s.duplication_ratio:.2f}",
            f"{s.min_batch_duplication:.2f}-{s.max_batch_duplication:.2f}",
        ]
        for s in all_stats
    ]
    emit(
        "table2_dataset_statistics",
        format_table(
            [
                "dataset",
                "clouds",
                "res(m)",
                "nondup voxels",
                "dup voxels",
                "dup ratio",
                "batch dup range",
            ],
            rows,
        ),
    )

    by_dataset = {}
    for s in all_stats:
        by_dataset.setdefault(s.name, []).append(s)

    for name, series in by_dataset.items():
        # Duplicates exceed non-duplicates everywhere (Table 2's shape).
        for s in series:
            assert s.total_observations > s.distinct_voxels, (name, s.resolution)
        # Finer resolution -> more distinct voxels (Table 2's columns).
        ordered = sorted(series, key=lambda s: s.resolution)
        assert ordered[0].distinct_voxels > ordered[-1].distinct_voxels

    # §3.1: per-batch duplication lands in (or above) the paper's band and
    # the corridor is the heaviest duplicator.
    ratios = {name: max(s.duplication_ratio for s in series) for name, series in by_dataset.items()}
    assert ratios["fr079_corridor"] == max(ratios.values())
    assert all(ratio >= 1.3 for ratio in ratios.values())
