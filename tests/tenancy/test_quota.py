"""Admission control: token buckets and quota shapes."""

import pytest

from repro.tenancy import TenantQuota, TokenBucket


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestTokenBucket:
    def test_burst_then_rate(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
        # The full burst is available immediately...
        assert all(bucket.try_acquire() for _ in range(3))
        # ...then the bucket is dry until the clock refills it.
        assert not bucket.try_acquire()
        clock.advance(0.5)  # 2/s * 0.5s = 1 token
        assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
        clock.advance(100.0)
        assert bucket.available == pytest.approx(2.0)

    def test_zero_rate_is_unlimited(self):
        bucket = TokenBucket(rate=0.0)
        assert all(bucket.try_acquire() for _ in range(10_000))
        assert bucket.available == float("inf")

    def test_rejects_without_blocking(self):
        clock = FakeClock()
        bucket = TokenBucket(rate=1.0, burst=1.0, clock=clock)
        assert bucket.try_acquire()
        # No clock advance: the second acquire must fail instantly, not
        # wait for a refill.
        assert not bucket.try_acquire()


class TestTenantQuota:
    def test_validation(self):
        with pytest.raises(ValueError):
            TenantQuota(queue_slots=0)
        with pytest.raises(ValueError):
            TenantQuota(scans_per_sec=-1)
        with pytest.raises(ValueError):
            TenantQuota(burst=-0.5)

    def test_default_burst_tracks_rate(self):
        assert TenantQuota(scans_per_sec=25.0).to_dict()["burst"] == 25.0
        # Unlimited-rate tenants still get a sane bucket shape.
        assert TenantQuota().to_dict()["burst"] == 1.0

    def test_make_bucket_uses_quota_shape(self):
        clock = FakeClock()
        bucket = TenantQuota(scans_per_sec=4.0, burst=2.0).make_bucket(
            clock=clock
        )
        assert bucket.rate == 4.0
        assert bucket.burst == 2.0
