"""Prometheus text exposition for :class:`~repro.service.metrics.MetricsRegistry`.

Renders the registry in the `text exposition format
<https://prometheus.io/docs/instrumenting/exposition_formats/>`_
(``text/plain; version=0.0.4``), the wire format every Prometheus-
compatible scraper understands:

- :class:`~repro.service.metrics.Counter` ``ingest.scans`` →
  ``repro_ingest_scans_total`` (a ``counter``).
- :class:`~repro.service.metrics.Gauge` ``queue_depth.shard0`` → the
  current value plus the high-water mark as ``..._max`` (two ``gauge``
  series).
- :class:`~repro.service.metrics.Histogram` ``shard.apply_seconds`` →
  cumulative ``repro_shard_apply_seconds_bucket{le="..."}`` series ending
  in ``le="+Inf"``, plus ``_sum`` and ``_count``.  Bucket counts are
  exact (recorded outside the percentile reservoir) and read atomically,
  so one exposition is always internally consistent.
- :class:`~repro.service.metrics.StateGauge` ``shard_health.shard0`` → a
  one-hot labeled family (``{state="healthy"} 1``, every other state this
  gauge has held ``0``) plus a ``..._transitions_total`` counter — the
  idiomatic Prometheus encoding of an enum, alertable with
  ``repro_shard_health_shard0{state="dead"} == 1``.

Metric names are sanitised onto the Prometheus grammar at registration
time (dots → underscores; the registry rejects two names that would
collide after sanitisation), label *values* are escaped here
(backslash, double-quote, newline — the three characters the format
reserves).
"""

from __future__ import annotations

from typing import List

from repro.service.metrics import MetricsRegistry, sanitize_metric_name

__all__ = ["escape_label_value", "format_bound", "render_prometheus"]

#: Content type an HTTP endpoint should serve this text under.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


def escape_label_value(value: str) -> str:
    """Escape a label value per the exposition format rules."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def format_bound(bound: float) -> str:
    """Render one bucket bound the way Prometheus clients conventionally do."""
    if bound == int(bound) and abs(bound) < 1e15:
        return f"{bound:.1f}"
    return repr(bound)


def _format_value(value: float) -> str:
    """Render a sample value; integers stay integral for readability."""
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        return "1" if value else "0"
    if isinstance(value, int) or (
        isinstance(value, float) and value == int(value) and abs(value) < 1e15
    ):
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """Render every metric in ``registry`` as Prometheus exposition text.

    Families come out name-sorted within each kind (counters, gauges,
    states, histograms) so successive scrapes of an unchanged registry
    are byte-identical — diffable, cacheable, testable.
    """
    prefix = sanitize_metric_name(namespace) + "_" if namespace else ""
    counters, gauges, histograms, states = registry.collect()
    lines: List[str] = []

    for name, counter in sorted(counters.items()):
        base = prefix + sanitize_metric_name(name) + "_total"
        lines.append(f"# TYPE {base} counter")
        lines.append(f"{base} {_format_value(counter.value)}")

    for name, gauge in sorted(gauges.items()):
        base = prefix + sanitize_metric_name(name)
        lines.append(f"# TYPE {base} gauge")
        lines.append(f"{base} {_format_value(gauge.value)}")
        lines.append(f"# TYPE {base}_max gauge")
        lines.append(f"{base}_max {_format_value(gauge.max)}")

    for name, state in sorted(states.items()):
        base = prefix + sanitize_metric_name(name)
        current, transitions, seen = state.snapshot()
        lines.append(f"# TYPE {base} gauge")
        for label in seen:
            active = 1 if label == current else 0
            lines.append(
                f'{base}{{state="{escape_label_value(label)}"}} {active}'
            )
        lines.append(f"# TYPE {base}_transitions_total counter")
        lines.append(f"{base}_transitions_total {transitions}")

    for name, histogram in sorted(histograms.items()):
        base = prefix + sanitize_metric_name(name)
        bounds, cumulative, count, total = histogram.exposition_state()
        lines.append(f"# TYPE {base} histogram")
        for bound, bucket_count in zip(bounds, cumulative):
            lines.append(
                f'{base}_bucket{{le="{format_bound(bound)}"}} {bucket_count}'
            )
        lines.append(f'{base}_bucket{{le="+Inf"}} {count}')
        lines.append(f"{base}_sum {repr(float(total))}")
        lines.append(f"{base}_count {count}")

    return "\n".join(lines) + "\n" if lines else ""
