"""Tests for the service metrics primitives."""

import threading

import pytest

from repro.service.metrics import Counter, Gauge, Histogram, MetricsRegistry


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter()
        assert counter.value == 0
        counter.inc()
        counter.inc(5)
        assert counter.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter().inc(-1)

    def test_concurrent_increments_all_land(self):
        counter = Counter()

        def bump():
            for _ in range(1000):
                counter.inc()

        threads = [threading.Thread(target=bump) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counter.value == 4000


class TestGauge:
    def test_set_and_high_water(self):
        gauge = Gauge()
        gauge.set(3)
        gauge.set(7)
        gauge.set(2)
        assert gauge.value == 2
        assert gauge.max == 7

    def test_add_tracks_max(self):
        gauge = Gauge()
        gauge.add(4)
        gauge.add(-1)
        assert gauge.value == 3
        assert gauge.max == 4


class TestHistogram:
    def test_exact_count_sum_extrema(self):
        hist = Histogram()
        for value in (0.5, 0.1, 0.9):
            hist.record(value)
        assert hist.count == 3
        assert hist.sum == pytest.approx(1.5)
        assert hist.min == pytest.approx(0.1)
        assert hist.max == pytest.approx(0.9)
        assert hist.mean == pytest.approx(0.5)

    def test_percentiles_of_known_distribution(self):
        # Interpolated (numpy-default) quantiles of 0..99.
        hist = Histogram()
        for i in range(100):
            hist.record(float(i))
        assert hist.percentile(0.0) == 0.0
        assert hist.percentile(0.5) == pytest.approx(49.5)
        assert hist.percentile(0.99) == pytest.approx(98.01)
        assert hist.percentile(1.0) == pytest.approx(99.0)

    def test_small_reservoir_interpolates(self):
        # The median of [1, 2, 3, 4] is 2.5, not a sample value —
        # nearest-rank would be off by half a sample.
        hist = Histogram()
        for value in (4.0, 1.0, 3.0, 2.0):
            hist.record(value)
        assert hist.p50 == pytest.approx(2.5)
        assert hist.percentile(0.25) == pytest.approx(1.75)
        assert hist.p95 == pytest.approx(3.85)
        assert hist.p99 == pytest.approx(3.97)

    def test_single_sample_every_percentile(self):
        hist = Histogram()
        hist.record(7.0)
        for fraction in (0.0, 0.5, 0.95, 1.0):
            assert hist.percentile(fraction) == pytest.approx(7.0)

    def test_percentile_properties_match_method(self):
        hist = Histogram()
        for i in range(50):
            hist.record(float(i))
        assert hist.p50 == hist.percentile(0.50)
        assert hist.p95 == hist.percentile(0.95)
        assert hist.p99 == hist.percentile(0.99)

    def test_summary_includes_p95(self):
        hist = Histogram()
        hist.record(1.0)
        summary = hist.summary()
        assert set(summary) >= {"count", "mean", "p50", "p90", "p95", "p99", "max"}

    def test_empty_percentile_is_zero(self):
        assert Histogram().percentile(0.5) == 0.0

    def test_concurrent_observe_is_consistent(self):
        # 8 threads x 2000 samples through a small reservoir: exact
        # aggregates must survive, the reservoir must stay within its
        # cap, and percentiles must come out of the recorded range.
        hist = Histogram(max_samples=256)
        threads_n, per_thread = 8, 2000
        errors = []

        def observe(base):
            try:
                for i in range(per_thread):
                    hist.record(float(base * per_thread + i))
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [
            threading.Thread(target=observe, args=(t,)) for t in range(threads_n)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        total = threads_n * per_thread
        assert hist.count == total
        assert hist.sum == pytest.approx(total * (total - 1) / 2)
        assert hist.min == 0.0
        assert hist.max == float(total - 1)
        assert len(hist._samples) <= 256
        assert 0.0 <= hist.p50 <= float(total - 1)
        assert hist.p50 <= hist.p95 <= hist.p99 <= hist.max

    def test_reservoir_thins_but_counts_stay_exact(self):
        hist = Histogram(max_samples=64)
        for i in range(10_000):
            hist.record(float(i))
        assert hist.count == 10_000
        assert hist.max == 9999.0
        assert len(hist._samples) < 64
        # Thinned percentiles still land in the right region.
        assert 3000.0 < hist.percentile(0.5) < 7000.0

    def test_rejects_bad_fraction(self):
        with pytest.raises(ValueError):
            Histogram().percentile(1.5)

    def test_thinning_tracks_the_observed_tail(self):
        # Regression: thinning with [::2] pinned sample index 0 forever
        # and could drop the just-appended sample, so percentile(1.0)
        # lagged the observed maximum right after a thin.  On a monotone
        # ramp of 3x max_samples values, every append instant must leave
        # the newest value as the reservoir tail.
        hist = Histogram(max_samples=8)
        for i in range(1, 25):
            hist.record(float(i))
            if hist._since_kept == 0:  # an append (maybe thin) instant
                assert hist.percentile(1.0) == float(i), (
                    f"tail lost after recording {i}: {sorted(hist._samples)}"
                )

    def test_thinning_is_uniform(self):
        # After two thins of an 8-cap reservoir fed 1..24, the retained
        # samples must be evenly spaced at the final stride (no region
        # of the run over- or under-represented).
        hist = Histogram(max_samples=8)
        for i in range(1, 25):
            hist.record(float(i))
        samples = sorted(hist._samples)
        diffs = {
            round(late - early)
            for early, late in zip(samples, samples[1:])
        }
        assert diffs == {hist._stride}, (samples, hist._stride)


class TestRegistry:
    def test_create_on_first_use_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")

    def test_to_dict_shape(self):
        registry = MetricsRegistry()
        registry.counter("events").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("latency").record(0.25)
        snapshot = registry.to_dict()
        assert snapshot["counters"]["events"] == 3
        assert snapshot["gauges"]["depth"]["value"] == 2
        assert snapshot["histograms"]["latency"]["count"] == 1
        assert snapshot["histograms"]["latency"]["p50"] == pytest.approx(0.25)

    def test_render_mentions_every_metric(self):
        registry = MetricsRegistry()
        registry.counter("ingest.scans").inc()
        registry.gauge("queue_depth").set(1)
        registry.histogram("query_seconds").record(0.001)
        text = registry.render()
        assert "ingest.scans" in text
        assert "queue_depth" in text
        assert "query_seconds" in text
        assert "p99" in text

    def test_render_empty(self):
        assert "no metrics" in MetricsRegistry().render()
