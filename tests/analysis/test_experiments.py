"""Tests for the quick-report experiment tour."""

import pytest

from repro.analysis.experiments import quick_report, render_markdown


@pytest.fixture(scope="module")
def sections():
    # Smallest meaningful configuration to keep the test fast.
    return quick_report(
        dataset_name="fr079_corridor",
        resolution=0.4,
        depth=10,
        max_batches=4,
        ray_scale=0.3,
    )


class TestQuickReport:
    def test_all_sections_present(self, sections):
        titles = [section.title for section in sections]
        assert any("duplication" in t.lower() for t in titles)
        assert any("bottleneck" in t.lower() for t in titles)
        assert any("octocache vs octomap" in t.lower() for t in titles)
        assert any("morton" in t.lower() for t in titles)

    def test_sections_timed(self, sections):
        for section in sections:
            assert section.seconds > 0.0
            assert section.body.strip()

    def test_markdown_rendering(self, sections):
        document = render_markdown(sections)
        assert document.startswith("# OctoCache quick report")
        for section in sections:
            assert f"## {section.title}" in document
        assert "```" in document

    def test_cli_report_writes_file(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "report.md"
        code = main(
            ["report", "--resolution", "0.4", "--output", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "OctoCache quick report" in out.read_text()
