"""A from-scratch skip list (the substrate for the SkiMap-like baseline).

SkiMap (De Gregorio & Di Stefano, ICRA'17) replaces the octree with a
hierarchy of skip lists.  Table 1 of the OctoCache paper credits it with
addressing the octree bottleneck at the price of memory overhead; to
compare against it we need an honest skip list with the classic
probabilistic-tower structure, not a dict in disguise.

Deterministic by seed, O(log n) expected search/insert, and the node
tower overhead is accounted for in :meth:`SkipList.memory_bytes`.
"""

from __future__ import annotations

import random
from typing import Iterator, List, Optional, Tuple

__all__ = ["SkipList"]

_MAX_LEVEL = 16
_P = 0.5

#: Accounting: per node, key + value + one pointer per tower level (8B
#: each) — the memory-overhead story Table 1 tells about SkiMap.
_NODE_BASE_BYTES = 16
_POINTER_BYTES = 8


class _Node:
    __slots__ = ("key", "value", "forward")

    def __init__(self, key, value, level: int) -> None:
        self.key = key
        self.value = value
        self.forward: List[Optional["_Node"]] = [None] * level


class SkipList:
    """An ordered map with probabilistic balancing.

    Args:
        seed: PRNG seed for tower heights (deterministic structures make
            tests and benchmarks reproducible).
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._head = _Node(None, None, _MAX_LEVEL)
        self._level = 1
        self._size = 0
        self._tower_slots = _MAX_LEVEL  # head's tower

    def _random_level(self) -> int:
        level = 1
        while level < _MAX_LEVEL and self._rng.random() < _P:
            level += 1
        return level

    def _find_path(self, key) -> List[_Node]:
        """Predecessor at every level (the classic update vector)."""
        path = [self._head] * _MAX_LEVEL
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
            path[level] = node
        return path

    def get(self, key, default=None):
        """Value stored at ``key``, or ``default``."""
        node = self._head
        for level in range(self._level - 1, -1, -1):
            while node.forward[level] is not None and node.forward[level].key < key:
                node = node.forward[level]
        candidate = node.forward[0]
        if candidate is not None and candidate.key == key:
            return candidate.value
        return default

    def insert(self, key, value) -> None:
        """Insert or overwrite ``key``."""
        path = self._find_path(key)
        candidate = path[0].forward[0]
        if candidate is not None and candidate.key == key:
            candidate.value = value
            return
        level = self._random_level()
        if level > self._level:
            self._level = level
        node = _Node(key, value, level)
        self._tower_slots += level
        for index in range(level):
            node.forward[index] = path[index].forward[index]
            path[index].forward[index] = node
        self._size += 1

    def remove(self, key) -> bool:
        """Delete ``key``; returns whether it existed."""
        path = self._find_path(key)
        candidate = path[0].forward[0]
        if candidate is None or candidate.key != key:
            return False
        for index in range(len(candidate.forward)):
            if path[index].forward[index] is candidate:
                path[index].forward[index] = candidate.forward[index]
        self._tower_slots -= len(candidate.forward)
        self._size -= 1
        while self._level > 1 and self._head.forward[self._level - 1] is None:
            self._level -= 1
        return True

    def items(self) -> Iterator[Tuple[object, object]]:
        """All (key, value) pairs in ascending key order."""
        node = self._head.forward[0]
        while node is not None:
            yield node.key, node.value
            node = node.forward[0]

    def memory_bytes(self) -> int:
        """Accounted footprint: node bases plus every tower pointer."""
        return self._size * _NODE_BASE_BYTES + self._tower_slots * _POINTER_BYTES

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel
