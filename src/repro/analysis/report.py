"""Plain-text table formatting for benchmark and example output.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and consistent.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["format_table", "format_ratio", "series_block"]


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]]
) -> str:
    """Render rows as an aligned ASCII table with a header rule."""
    rendered_rows: List[List[str]] = [[_cell(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)),
        "  ".join("-" * w for w in widths),
    ]
    for row in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def _cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)


def format_ratio(baseline: float, improved: float) -> str:
    """'1.85x' style speedup string (baseline over improved)."""
    if improved <= 0:
        return "inf"
    return f"{baseline / improved:.2f}x"


def series_block(title: str, table: str) -> str:
    """A titled table block, as printed by the benchmark harness."""
    bar = "=" * max(len(title), 8)
    return f"\n{title}\n{bar}\n{table}\n"
