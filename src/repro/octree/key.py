"""Discrete voxel keys (OctoMap's ``OcTreeKey`` equivalent).

A voxel at the finest resolution is addressed by a triple of unsigned
integers.  Following OctoMap, a metric coordinate ``x`` maps to key
``floor(x / resolution) + offset`` where ``offset = 2**(depth-1)`` centres
the map on the origin: the mapping boundary is a cube of side
``resolution * 2**depth`` centred at ``(0, 0, 0)`` (paper §2.2).

At tree level *d* (root = level ``depth``), the child index along a
root-to-leaf traversal is assembled from bit ``d-1`` of each key component —
the same 3-bit group a Morton code stores for that level, which is why
Morton order equals root-to-leaf path order.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.core.morton import (
    MAX_COORD_BITS,
    morton_encode3,
    morton_encode3_array,
)

__all__ = [
    "VoxelKey",
    "coord_to_key",
    "key_to_coord",
    "coords_to_keys",
    "keys_to_coords",
    "key_to_morton",
    "keys_to_morton",
    "child_index",
    "validate_key",
]

#: A discrete voxel address: three unsigned ints, one per axis.
VoxelKey = Tuple[int, int, int]


def validate_key(key: VoxelKey, depth: int) -> None:
    """Reject keys outside a ``depth``-deep map with a clear error.

    Map entry points (insert/query) call this so a negative or too-large
    component fails with the offending key and the map bounds named,
    instead of a bare encoder error from deep inside
    :func:`repro.core.morton.morton_encode3`.
    """
    limit = 1 << depth
    if 0 <= key[0] < limit and 0 <= key[1] < limit and 0 <= key[2] < limit:
        return
    raise ValueError(
        f"voxel key {tuple(key)} is outside the map bounds: components "
        f"must be in [0, {limit}) for an octree of depth {depth}"
    )


def coord_to_key(
    coord: Tuple[float, float, float], resolution: float, depth: int
) -> VoxelKey:
    """Convert a metric coordinate to the voxel key at the finest level.

    Raises :class:`ValueError` when the coordinate falls outside the map
    boundary implied by ``resolution`` and ``depth``.
    """
    offset = 1 << (depth - 1)
    limit = 1 << depth
    key = []
    for axis_value in coord:
        component = int(np.floor(axis_value / resolution)) + offset
        if not 0 <= component < limit:
            raise ValueError(
                f"coordinate {coord} outside map boundary "
                f"(resolution={resolution}, depth={depth})"
            )
        key.append(component)
    return (key[0], key[1], key[2])


def key_to_coord(
    key: VoxelKey, resolution: float, depth: int
) -> Tuple[float, float, float]:
    """Convert a voxel key back to the metric centre of its voxel."""
    offset = 1 << (depth - 1)
    return tuple((component - offset + 0.5) * resolution for component in key)


def coords_to_keys(
    coords: np.ndarray, resolution: float, depth: int
) -> np.ndarray:
    """Vectorised :func:`coord_to_key` over an ``(N, 3)`` float array.

    Returns an ``(N, 3)`` int64 array.  Out-of-bounds coordinates raise.
    """
    coords = np.asarray(coords, dtype=np.float64)
    offset = 1 << (depth - 1)
    limit = 1 << depth
    keys = np.floor(coords / resolution).astype(np.int64) + offset
    if np.any(keys < 0) or np.any(keys >= limit):
        raise ValueError(
            f"coordinates outside map boundary (resolution={resolution}, depth={depth})"
        )
    return keys


def keys_to_coords(keys: np.ndarray, resolution: float, depth: int) -> np.ndarray:
    """Vectorised :func:`key_to_coord` over an ``(N, 3)`` int array."""
    offset = 1 << (depth - 1)
    return (np.asarray(keys, dtype=np.float64) - offset + 0.5) * resolution


def key_to_morton(key: VoxelKey) -> int:
    """Morton code of a voxel key (used for cache indexing and ordering)."""
    return morton_encode3(key[0], key[1], key[2])


def keys_to_morton(keys: np.ndarray) -> np.ndarray:
    """Vectorised :func:`key_to_morton` over an ``(N, 3)`` int array.

    Dilates all three coordinate columns in one ``(N, 3)`` pass — a third
    of the array-op count of three per-axis
    :func:`~repro.core.morton.morton_encode3_array` calls, which matters
    for the small per-batch unique-key arrays on the ingest hot path.
    """
    keys = np.asarray(keys)
    if (keys < 0).any():
        raise ValueError("coordinates must be non-negative")
    if (keys >> MAX_COORD_BITS).any():
        raise ValueError(f"coordinates exceed {MAX_COORD_BITS} bits")
    v = keys.astype(np.uint64)
    v = (v | (v << np.uint64(32))) & np.uint64(0x1F00000000FFFF)
    v = (v | (v << np.uint64(16))) & np.uint64(0x1F0000FF0000FF)
    v = (v | (v << np.uint64(8))) & np.uint64(0x100F00F00F00F00F)
    v = (v | (v << np.uint64(4))) & np.uint64(0x10C30C30C30C30C3)
    v = (v | (v << np.uint64(2))) & np.uint64(0x1249249249249249)
    return (
        (v[:, 0] << np.uint64(2)) | (v[:, 1] << np.uint64(1)) | v[:, 2]
    )


def child_index(key: VoxelKey, level: int) -> int:
    """Child slot (0–7) chosen at tree ``level`` on the path to ``key``.

    ``level`` counts down from ``depth - 1`` (just below the root) to 0
    (the leaf level); bit ``level`` of each key component selects the half
    of the corresponding axis.
    """
    return (
        (((key[0] >> level) & 1) << 2)
        | (((key[1] >> level) & 1) << 1)
        | ((key[2] >> level) & 1)
    )
