"""Tests for the next-line prefetcher option."""

import random

import pytest

from repro.simcache.cache_sim import CacheLevel, CacheSimulator
from repro.simcache.cost_model import (
    jetson_tx2_hierarchy,
    jetson_tx2_hierarchy_with_prefetch,
)


class TestPrefetchSimulator:
    def test_prefetch_installs_next_line(self):
        sim = CacheSimulator(
            CacheLevel("T", 1024, 64, 4), next_line_prefetch=True
        )
        assert sim.access(0) is False  # demand miss, prefetches line 1
        assert sim.access(64) is True  # next line already resident
        assert sim.prefetches == 1

    def test_no_prefetch_without_flag(self):
        sim = CacheSimulator(CacheLevel("T", 1024, 64, 4))
        sim.access(0)
        assert sim.access(64) is False
        assert sim.prefetches == 0

    def test_prefetch_respects_associativity(self):
        sim = CacheSimulator(
            CacheLevel("T", 128, 64, 2), next_line_prefetch=True
        )
        for address in range(0, 64 * 8, 64):
            sim.access(address)
        # The cache never holds more lines than its capacity.
        total_resident = sum(len(s) for s in sim._sets.values())
        assert total_resident <= 2 * sim.level.num_sets

    def test_hit_counters_unaffected_by_prefetch_installs(self):
        sim = CacheSimulator(
            CacheLevel("T", 1024, 64, 4), next_line_prefetch=True
        )
        sim.access(0)
        assert sim.hits == 0 and sim.misses == 1


class TestPrefetchHierarchy:
    def test_sequential_stream_benefits(self):
        trace = list(range(0, 48_000, 48))
        base = jetson_tx2_hierarchy()
        pre = jetson_tx2_hierarchy_with_prefetch()
        for address in trace:
            base.access(address)
            pre.access(address)
        assert pre.total_cycles < 0.7 * base.total_cycles

    def test_random_stream_benefits_less(self):
        sequential = list(range(0, 48_000, 48))
        scattered = list(sequential)
        random.Random(0).shuffle(scattered)

        def cost(trace, factory):
            hierarchy = factory()
            for address in trace:
                hierarchy.access(address)
            return hierarchy.total_cycles

        seq_gain = cost(sequential, jetson_tx2_hierarchy) - cost(
            sequential, jetson_tx2_hierarchy_with_prefetch
        )
        rnd_gain = cost(scattered, jetson_tx2_hierarchy) - cost(
            scattered, jetson_tx2_hierarchy_with_prefetch
        )
        assert seq_gain > rnd_gain
