"""MemoryReport tree algebra: totals, paths, drift, round trips."""

import pytest

from repro.memsight.report import MemoryMeter, MemoryReport


def sample_tree():
    return MemoryReport(
        "service",
        children=[
            MemoryReport(
                "map",
                children=[
                    MemoryReport(
                        "shard0",
                        children=[
                            MemoryReport("cells", 700, 100),
                            MemoryReport("index", 1600, 100),
                        ],
                    ),
                    MemoryReport("shard1", children=[MemoryReport("cells", 70, 10)]),
                ],
            ),
            MemoryReport("queues", 56, 8),
        ],
    )


class TestTotals:
    def test_total_bytes_sums_the_subtree(self):
        tree = sample_tree()
        assert tree.total_bytes == 700 + 1600 + 70 + 56
        assert tree.child("map").total_bytes == 700 + 1600 + 70

    def test_total_count_sums_the_subtree(self):
        assert sample_tree().total_count == 100 + 100 + 10 + 8

    def test_interior_own_bytes_still_count(self):
        tree = MemoryReport(
            "root", 10, 1, children=[MemoryReport("leaf", 5, 1)]
        )
        assert tree.total_bytes == 15


class TestPaths:
    def test_child_and_find(self):
        tree = sample_tree()
        assert tree.child("queues").nbytes == 56
        assert tree.child("missing") is None
        assert tree.find("map/shard0/index").nbytes == 1600
        assert tree.find("map/nope/index") is None

    def test_leaf_totals_flattens_every_leaf(self):
        totals = sample_tree().leaf_totals()
        assert totals["service/map/shard0/cells"] == 700
        assert totals["service/map/shard0/index"] == 1600
        assert totals["service/map/shard1/cells"] == 70
        assert totals["service/queues"] == 56

    def test_walk_visits_every_node(self):
        names = {node.name for node in sample_tree().walk()}
        assert {"service", "map", "shard0", "cells", "queues"} <= names


class TestDrift:
    def test_identical_trees_have_zero_drift(self):
        assert sample_tree().drift_bytes(sample_tree()) == 0

    def test_drift_sums_absolute_leaf_differences(self):
        a = sample_tree()
        b = sample_tree()
        b.find("map/shard0/cells").nbytes = 707  # +7
        b.child("queues").nbytes = 49  # -7
        assert a.drift_bytes(b) == 14

    def test_missing_leaf_counts_as_full_drift(self):
        a = sample_tree()
        b = sample_tree()
        b.child("map").children[1].children.clear()
        assert a.drift_bytes(b) == 70


class TestRoundTrips:
    def test_dict_round_trip_preserves_the_tree(self):
        tree = sample_tree()
        clone = MemoryReport.from_dict(tree.to_dict())
        assert clone.leaf_totals() == tree.leaf_totals()
        assert clone.total_count == tree.total_count
        assert tree.drift_bytes(clone) == 0

    def test_to_dict_embeds_subtree_totals(self):
        data = sample_tree().to_dict()
        assert data["total_bytes"] == sample_tree().total_bytes
        map_dict = next(
            child for child in data["children"] if child["name"] == "map"
        )
        assert map_dict["total_bytes"] == 700 + 1600 + 70

    def test_merged_sums_matching_components(self):
        merged = sample_tree().merged(sample_tree())
        assert merged.total_bytes == 2 * sample_tree().total_bytes
        assert merged.find("map/shard0/cells").nbytes == 1400

    def test_render_mentions_every_component(self):
        text = sample_tree().render()
        for name in ("service", "map", "shard0", "cells", "queues"):
            assert name in text


class TestProtocol:
    def test_meter_protocol_raises_unimplemented(self):
        class Bare(MemoryMeter):
            pass

        with pytest.raises(NotImplementedError):
            Bare().memory_breakdown()
