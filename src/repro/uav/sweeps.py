"""UAV parameter sweeps (Figures 18–19).

Missions re-run over grids of mapping resolution (fixed sensing range) and
sensing range (fixed resolution), comparing mapping pipelines — the
paper's sensitivity study showing OctoCache's advantage growing with
resolution and range.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.baselines.interface import MappingSystem
from repro.uav.environments import Environment
from repro.uav.mission import MissionConfig, MissionResult, run_mission
from repro.uav.vehicle import UAVModel, ASCTEC_PELICAN

__all__ = ["SweepPoint", "resolution_sweep", "sensing_range_sweep"]

#: Builds a fresh pipeline for (resolution, max_range).
PipelineFactory = Callable[[float, float], MappingSystem]


@dataclass(frozen=True)
class SweepPoint:
    """One mission outcome at one parameter setting."""

    resolution: float
    sensing_range: float
    result: MissionResult


def _run(
    environment: Environment,
    uav: UAVModel,
    resolution: float,
    sensing_range: float,
    factory: PipelineFactory,
    max_cycles: int,
    model_octree_offload: bool = False,
) -> SweepPoint:
    config = MissionConfig(
        environment=environment,
        uav=uav,
        resolution=resolution,
        sensing_range=sensing_range,
        max_cycles=max_cycles,
        model_octree_offload=model_octree_offload,
    )
    result = run_mission(
        config, lambda res: factory(res, sensing_range)
    )
    if not result.success and not result.crashed:
        # Trajectories are wall-clock driven; a rare hover-loop timeout is
        # stochastic — retry once rather than fail the whole sweep.
        result = run_mission(config, lambda res: factory(res, sensing_range))
    return SweepPoint(resolution=resolution, sensing_range=sensing_range, result=result)


def resolution_sweep(
    environment: Environment,
    resolutions: Sequence[float],
    factory: PipelineFactory,
    sensing_range: Optional[float] = None,
    uav: UAVModel = ASCTEC_PELICAN,
    max_cycles: int = 800,
    model_octree_offload: bool = False,
) -> List[SweepPoint]:
    """Figure 18(a)/(b): fixed sensing range, varying resolution."""
    sensing_range = sensing_range or environment.sensing_range
    return [
        _run(
            environment,
            uav,
            resolution,
            sensing_range,
            factory,
            max_cycles,
            model_octree_offload,
        )
        for resolution in resolutions
    ]


def sensing_range_sweep(
    environment: Environment,
    sensing_ranges: Sequence[float],
    factory: PipelineFactory,
    resolution: Optional[float] = None,
    uav: UAVModel = ASCTEC_PELICAN,
    max_cycles: int = 800,
    model_octree_offload: bool = False,
) -> List[SweepPoint]:
    """Figure 18(c)/(d): fixed resolution, varying sensing range."""
    resolution = resolution or environment.resolution
    return [
        _run(
            environment,
            uav,
            resolution,
            sensing_range,
            factory,
            max_cycles,
            model_octree_offload,
        )
        for sensing_range in sensing_ranges
    ]
