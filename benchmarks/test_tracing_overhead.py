"""Disabled-tracing overhead budget for the insert hot path.

The telemetry design promise (DESIGN.md / docs/observability.md): with
tracing disabled, instrumentation costs one attribute check plus a shared
no-op context manager per *stage* — never per voxel.  This benchmark
pins that promise to a number: the instrumented insert path over
pre-traced batches must stay within 1.1x of an uninstrumented twin whose
``insert_batch``/``_process_batch`` carry no tracer calls at all.
"""

import time

from repro.analysis.report import format_table
from repro.core.octocache import OctoCacheMap
from repro.sensor.scaninsert import trace_scan
from repro.telemetry import get_tracer

from .conftest import BENCH_DEPTH

RESOLUTION = 0.2
BATCHES = 6
REPEATS = 5
BUDGET = 1.1


class UninstrumentedOctoCacheMap(OctoCacheMap):
    """The serial pipeline with every telemetry touchpoint stripped.

    Mirrors ``OctoCacheMap._process_batch`` (and the ``insert_batch``
    wrapper) as they stood before tracing was added: same stage
    stopwatches, same record bookkeeping, zero tracer interaction.
    """

    name = "OctoCache (untraced)"

    def insert_batch(self, batch, record=None):
        from repro.baselines.interface import BatchRecord

        if record is None:
            record = BatchRecord()
        record.observations = len(batch)
        self._process_batch(batch, record)
        self.batches.append(record)
        return record

    def _process_batch(self, batch, record):
        cache = self.cache
        with self.timings.stage("cache_insertion") as watch:
            for key, occupied in batch.observations:
                cache.insert(key, occupied)
        record.cache_insertion = watch.elapsed

        with self.timings.stage("cache_eviction") as watch:
            evicted = cache.evict()
        record.cache_eviction = watch.elapsed
        record.evicted = len(evicted)

        with self.timings.stage("octree_update") as watch:
            self._apply_evicted(evicted)
        record.octree_update = watch.elapsed


def _insert_all(factory, batches):
    """Fresh map, insert every pre-traced batch; return elapsed seconds."""
    mapping = factory()
    start = time.perf_counter()
    for batch in batches:
        mapping.insert_batch(batch)
    return time.perf_counter() - start


def test_disabled_tracing_overhead(benchmark, corridor, emit):
    assert not get_tracer().enabled  # the benchmark measures the off path

    scans = []
    for cloud in corridor.scans():
        scans.append(cloud)
        if len(scans) == BATCHES:
            break
    batches = [
        trace_scan(
            cloud,
            RESOLUTION,
            BENCH_DEPTH,
            max_range=corridor.sensor.max_range,
        )
        for cloud in scans
    ]

    def instrumented():
        return OctoCacheMap(resolution=RESOLUTION, depth=BENCH_DEPTH)

    def untraced():
        return UninstrumentedOctoCacheMap(
            resolution=RESOLUTION, depth=BENCH_DEPTH
        )

    def run():
        # Interleave and keep the min of each: min-of-N cancels scheduler
        # noise, interleaving cancels thermal/cache drift between arms.
        traced_best, untraced_best = float("inf"), float("inf")
        for _ in range(REPEATS):
            untraced_best = min(untraced_best, _insert_all(untraced, batches))
            traced_best = min(traced_best, _insert_all(instrumented, batches))
        return traced_best, untraced_best

    traced_best, untraced_best = benchmark.pedantic(run, rounds=1, iterations=1)
    ratio = traced_best / untraced_best

    emit(
        "tracing_overhead",
        format_table(
            ["insert path", "best of %d (s)" % REPEATS, "ratio"],
            [
                ["uninstrumented", f"{untraced_best:.4f}", "1.000"],
                ["instrumented, tracing off", f"{traced_best:.4f}", f"{ratio:.3f}"],
            ],
        )
        + f"\nbudget: <= {BUDGET:.2f}x",
    )

    assert ratio <= BUDGET, (
        f"disabled tracing costs {ratio:.3f}x (> {BUDGET}x budget): "
        f"traced {traced_best:.4f}s vs untraced {untraced_best:.4f}s"
    )
