"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_construct_defaults(self):
        args = build_parser().parse_args(["construct"])
        assert args.dataset == "fr079_corridor"
        assert args.pipeline == "octocache"

    def test_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["construct", "--pipeline", "magic"])

    def test_mission_options(self):
        args = build_parser().parse_args(
            ["mission", "--environment", "farm", "--uav", "spark"]
        )
        assert args.environment == "farm"
        assert args.uav == "spark"


class TestCommands:
    def test_stats_runs(self, capsys):
        code = main(
            ["stats", "--dataset", "fr079_corridor", "--resolution", "0.4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "duplication ratio" in out

    def test_construct_runs(self, capsys):
        code = main(
            [
                "construct",
                "--dataset",
                "fr079_corridor",
                "--resolution",
                "0.4",
                "--batches",
                "3",
                "--ray-scale",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit ratio" in out

    def test_ordering_runs(self, capsys):
        code = main(["ordering", "--keys", "1500", "--resolution", "0.4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "morton" in out

    def test_mission_runs(self, capsys):
        code = main(
            [
                "mission",
                "--environment",
                "room",
                "--pipeline",
                "octocache",
                "--max-cycles",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reached goal" in out
