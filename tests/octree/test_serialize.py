"""Round-trip tests for octree binary serialisation."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.octree.occupancy import OccupancyParams
from repro.octree.serialize import (
    load_tree,
    save_tree,
    tree_from_bytes,
    tree_to_bytes,
)
from repro.octree.tree import OccupancyOctree

DEPTH = 5
SIDE = 1 << DEPTH

keys = st.tuples(
    st.integers(min_value=0, max_value=SIDE - 1),
    st.integers(min_value=0, max_value=SIDE - 1),
    st.integers(min_value=0, max_value=SIDE - 1),
)


def all_leaves(tree):
    return sorted(tree.iter_finest_leaves())


class TestRoundTrip:
    def test_empty_tree(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        clone = tree_from_bytes(tree_to_bytes(tree))
        assert clone.num_nodes == 0
        assert clone.resolution == tree.resolution
        assert clone.depth == tree.depth

    def test_single_voxel(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        tree.update_node((1, 2, 3), True)
        clone = tree_from_bytes(tree_to_bytes(tree))
        assert clone.search((1, 2, 3)) == pytest.approx(tree.search((1, 2, 3)))
        assert clone.num_nodes == tree.num_nodes

    def test_params_preserved(self):
        params = OccupancyParams(threshold=0.1, min_occ=-1.0, max_occ=2.0)
        tree = OccupancyOctree(resolution=0.5, depth=DEPTH, params=params)
        clone = tree_from_bytes(tree_to_bytes(tree))
        assert clone.params.threshold == pytest.approx(0.1)
        assert clone.params.min_occ == pytest.approx(-1.0)
        assert clone.params.max_occ == pytest.approx(2.0)

    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=80))
    @settings(max_examples=30, deadline=None)
    def test_arbitrary_trees(self, updates):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        for key, occupied in updates:
            tree.update_node(key, occupied)
        clone = tree_from_bytes(tree_to_bytes(tree))
        assert clone.num_nodes == tree.num_nodes
        assert all_leaves(clone) == all_leaves(tree)

    def test_pruned_tree_roundtrip(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        tree.update_node((x, y, z), True)
        clone = tree_from_bytes(tree_to_bytes(tree))
        assert clone.num_nodes == tree.num_nodes  # pruning state preserved
        assert clone.search((1, 1, 1)) == pytest.approx(tree.params.max_occ)

    def test_file_roundtrip(self, tmp_path):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        tree.update_node((4, 4, 4), True)
        path = str(tmp_path / "map.roct")
        save_tree(tree, path)
        clone = load_tree(path)
        assert all_leaves(clone) == all_leaves(tree)


class TestErrors:
    def test_truncated_blob(self):
        with pytest.raises(ValueError):
            tree_from_bytes(b"\x00\x01")

    def test_bad_magic(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        blob = bytearray(tree_to_bytes(tree))
        blob[:4] = b"XXXX"
        with pytest.raises(ValueError):
            tree_from_bytes(bytes(blob))

    def test_trailing_garbage(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        blob = tree_to_bytes(tree) + b"extra"
        with pytest.raises(ValueError):
            tree_from_bytes(blob)


class TestChecksum:
    """Version-2 blobs carry a CRC-32 footer over the payload."""

    def make_blob(self):
        tree = OccupancyOctree(resolution=0.2, depth=DEPTH)
        tree.update_node((1, 2, 3), True)
        tree.update_node((4, 5, 6), False)
        return tree, tree_to_bytes(tree)

    def test_corrupted_payload_byte_detected(self):
        _tree, blob = self.make_blob()
        corrupted = bytearray(blob)
        corrupted[len(blob) // 2] ^= 0xFF  # flip one payload byte
        with pytest.raises(ValueError, match="CRC-32 mismatch"):
            tree_from_bytes(bytes(corrupted))

    def test_corrupted_footer_detected(self):
        _tree, blob = self.make_blob()
        corrupted = bytearray(blob)
        corrupted[-1] ^= 0xFF  # flip a checksum byte
        with pytest.raises(ValueError, match="CRC-32 mismatch"):
            tree_from_bytes(bytes(corrupted))

    def test_v1_blob_without_checksum_still_loads(self):
        tree, blob = self.make_blob()
        legacy = bytearray(blob[:-4])  # strip the CRC footer
        legacy[4] = 1  # version byte follows the 4-byte magic
        clone = tree_from_bytes(bytes(legacy))
        assert all_leaves(clone) == all_leaves(tree)

    def test_unsupported_version_rejected(self):
        _tree, blob = self.make_blob()
        future = bytearray(blob)
        future[4] = 9
        with pytest.raises(ValueError, match="version"):
            tree_from_bytes(bytes(future))
