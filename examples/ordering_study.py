#!/usr/bin/env python3
"""Voxel-ordering study: why Morton order wins (paper §3.2, §4.3, Fig. 10).

Inserts one batch of corridor-scan voxels into an empty octree under six
orderings and reports, per ordering, the paper's locality functional
``F(S)`` and the modeled per-voxel memory cost from the simulated cache
hierarchy.  Also verifies the §4.3 theorem on a small instance by brute
force.

Run:  python examples/ordering_study.py
"""

import random

from repro.analysis.orderings import run_ordering_experiment
from repro.analysis.report import format_table
from repro.core.locality import brute_force_min_cost, morton_order_cost
from repro.datasets import make_dataset
from repro.sensor.scaninsert import trace_scan

RESOLUTION = 0.1
DEPTH = 12
TARGET_KEYS = 20_000


def main() -> None:
    # 1. The theorem, checked exactly on a small random instance.
    levels = 3
    codes = random.Random(7).sample(range(8**levels), 7)
    exact = brute_force_min_cost(codes, levels)
    morton = morton_order_cost(codes, levels)
    print(
        f"theorem check on {len(codes)} random leaves: "
        f"brute-force min F = {exact}, Morton-order F = {morton} "
        f"({'OPTIMAL' if exact == morton else 'MISMATCH!'})"
    )

    # 2. The experiment at scale, on real scan data.
    dataset = make_dataset("fr079_corridor", pose_scale=1.0, ray_scale=0.6)
    keys = []
    for cloud in dataset.scans():
        batch = trace_scan(
            cloud, RESOLUTION, DEPTH, max_range=dataset.sensor.max_range
        )
        keys.extend(key for key, _occ in batch.observations)
        if len(keys) >= TARGET_KEYS:
            break
    keys = keys[:TARGET_KEYS]
    print(f"\ninserting {len(keys)} voxel observations under 6 orderings...")

    results = run_ordering_experiment(keys, resolution=RESOLUTION, depth=DEPTH)
    morton_cost = next(
        r.modeled_cycles_per_voxel for r in results if r.name == "morton"
    )
    rows = [
        [
            r.name,
            r.locality,
            f"{r.modeled_cycles_per_voxel:.1f}",
            f"{r.modeled_cycles_per_voxel / morton_cost:.2f}x",
            f"{r.l1_hit_ratio:.3f}",
        ]
        for r in sorted(results, key=lambda r: r.locality)
    ]
    print()
    print(
        format_table(
            ["ordering", "F(S)", "modeled cycles/voxel", "vs morton", "L1 hits"],
            rows,
        )
    )
    print(
        "\nModeled cost tracks F: orderings that share more octree "
        "ancestors between consecutive insertions hit the (simulated) CPU "
        "caches more — the mechanism behind Figure 10."
    )


if __name__ == "__main__":
    main()
