"""mem-bench end to end: drift gate, series entry, perf-check wiring."""

import json

import pytest

from repro.memsight.bench import run_mem_bench
from repro.obs.perf import append_bench_entry, check_regressions


@pytest.fixture(scope="module")
def report():
    return run_mem_bench(quick=True, tenants=2, growth_steps=2)


class TestRun:
    def test_quick_run_passes_the_drift_gate(self, report):
        assert report.ok
        assert report.mem_accounting_drift == 0
        assert report.evict_residual_bytes == 0
        assert report.restore_drift_bytes == 0

    def test_growth_steps_are_monotone(self, report):
        accounted = [step.accounted_bytes for step in report.steps]
        assert accounted == sorted(accounted)
        voxels = [step.distinct_voxels for step in report.steps]
        assert voxels == sorted(voxels)

    def test_bytes_per_voxel_is_sane(self, report):
        # 7 B cell + 16 B index entry is the per-voxel floor; bucket
        # slots and octree nodes amortize on top.  Triple digits means
        # the model broke.
        assert 20.0 < report.bytes_per_voxel < 500.0

    def test_tracemalloc_ratio_recorded_on_thread_backend(self, report):
        assert report.traced_ratio is not None
        assert 0.005 <= report.traced_ratio <= 2.0

    def test_tenant_attribution_covers_the_fleet(self, report):
        assert len(report.tenant_bytes) == 2
        assert all(nbytes > 0 for nbytes in report.tenant_bytes.values())
        assert report.evict_released_bytes > 0


class TestSeriesEntry:
    def test_entry_shape_matches_the_series_contract(self, report):
        entry = report.to_bench_entry()
        assert entry["kind"] == "mem-bench"
        metrics = entry["metrics"]
        assert set(metrics) == {"bytes_per_voxel", "mem_accounting_drift"}
        for info in metrics.values():
            assert {"value", "unit", "direction", "samples"} <= set(info)
        json.dumps(entry)  # must be serialisable as-is

    def test_entry_appends_and_gates(self, report, tmp_path):
        path = tmp_path / "BENCH_test.json"
        assert append_bench_entry(report.to_bench_entry(), str(path)) == 1
        baseline = {
            "metrics": {
                "bytes_per_voxel": {
                    "value": 94.0,
                    "direction": "lower",
                    "tolerance": 0.2,
                },
                "mem_accounting_drift": {
                    "value": 0.0,
                    "direction": "lower",
                    "tolerance": 0.0,
                },
            }
        }
        entry = json.loads(path.read_text())[-1]
        result = check_regressions(
            entry,
            baseline,
            only=["bytes_per_voxel", "mem_accounting_drift"],
        )
        assert result.ok

    def test_nonzero_drift_would_fail_the_gate(self, report):
        entry = report.to_bench_entry()
        entry["metrics"]["mem_accounting_drift"]["value"] = 1.0
        baseline = {
            "metrics": {
                "mem_accounting_drift": {
                    "value": 0.0,
                    "direction": "lower",
                    "tolerance": 0.0,
                }
            }
        }
        result = check_regressions(
            entry, baseline, only=["mem_accounting_drift"]
        )
        assert not result.ok


class TestCli:
    def test_mem_bench_subcommand_runs(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "series.json"
        code = main(
            [
                "mem-bench",
                "--quick",
                "--tenants",
                "2",
                "--growth-steps",
                "2",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        printed = capsys.readouterr().out
        assert "bytes / voxel" in printed
        assert "accounting drift" in printed
        series = json.loads(out.read_text())
        assert series[-1]["kind"] == "mem-bench"
