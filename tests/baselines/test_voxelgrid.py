"""Tests for the dense voxel-grid baseline."""

import numpy as np
import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.voxelgrid import VoxelGridPipeline
from repro.sensor.pointcloud import PointCloud

GRID_DEPTH = 7
RES = 0.2


def wall_cloud(seed=0, n=60):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [np.full(n, 3.0), rng.uniform(-2, 2, n), rng.uniform(0, 2, n)]
    )
    return PointCloud(points, origin=(0.0, 0.0, 1.0))


class TestVoxelGrid:
    def test_basic_mapping(self):
        grid = VoxelGridPipeline(resolution=RES, grid_depth=GRID_DEPTH)
        grid.insert_point_cloud(wall_cloud())
        cloud = wall_cloud()
        assert grid.is_occupied(tuple(cloud.points[0])) is True
        midpoint = tuple((np.asarray(cloud.origin) + cloud.points[0]) / 2.0)
        assert grid.is_occupied(midpoint) is False
        assert grid.is_occupied((10.0, 10.0, 10.0)) is None

    def test_grid_depth_bounds(self):
        with pytest.raises(ValueError):
            VoxelGridPipeline(resolution=RES, grid_depth=0)
        with pytest.raises(ValueError):
            VoxelGridPipeline(resolution=RES, grid_depth=16)

    def test_agrees_with_octomap(self):
        """Same log-odds pipeline, different storage: values must match."""
        grid = VoxelGridPipeline(resolution=RES, grid_depth=GRID_DEPTH)
        octo = OctoMapPipeline(resolution=RES, depth=GRID_DEPTH)
        for seed in range(3):
            cloud = wall_cloud(seed)
            grid.insert_point_cloud(cloud)
            octo.insert_point_cloud(cloud)
        for key, value in octo.octree.iter_finest_leaves():
            assert grid.query_key(key) == pytest.approx(value, abs=1e-5)

    def test_dense_memory_dominates_octree(self):
        """The §2.1 trade-off: the dense grid pays for the whole volume."""
        grid = VoxelGridPipeline(resolution=RES, grid_depth=GRID_DEPTH)
        octo = OctoMapPipeline(resolution=RES, depth=GRID_DEPTH)
        cloud = wall_cloud()
        grid.insert_point_cloud(cloud)
        octo.insert_point_cloud(cloud)
        assert grid.memory_bytes() > 10 * octo.octree.memory_bytes()
        # ...although only a tiny fraction of cells were ever observed.
        assert grid.observed_voxels() < 0.05 * (1 << GRID_DEPTH) ** 3

    def test_critical_path_includes_grid_update(self):
        grid = VoxelGridPipeline(resolution=RES, grid_depth=GRID_DEPTH)
        grid.insert_point_cloud(wall_cloud())
        assert grid.critical_path_seconds() > 0.0
        assert grid.critical_path_seconds() <= grid.total_seconds() + 1e-9


class TestEnergyMetric:
    def test_energy_proportional_to_mission_time(self):
        from repro.core.octocache import OctoCacheMap
        from repro.uav.environments import make_environment
        from repro.uav.mission import MissionConfig, run_mission
        from repro.uav.vehicle import ASCTEC_PELICAN

        env = make_environment("room")
        config = MissionConfig(environment=env, max_cycles=400)
        result = run_mission(
            config,
            lambda res: OctoCacheMap(
                resolution=res, depth=11, max_range=config.sensing_range
            ),
        )
        assert result.energy_joules == pytest.approx(
            ASCTEC_PELICAN.hover_power_w * result.completion_time
        )
        assert result.energy_joules > 0
