"""Figure 24: cache shape — construction time and hit ratio versus τ.

With total cache bytes fixed (``M = 7·w·τ``), the paper sweeps
τ ∈ {1, 2, 4, 8, 16} and finds the optimum between 2 and 4: tiny τ forces
early collision evictions, huge τ inflates the per-insertion bucket scan.
Regenerated on the corridor dataset at fixed capacity.
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import tau_sweep

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES

RESOLUTION = 0.1
TAUS = (1, 2, 4, 8, 16)
#: Near the per-batch voxel count, so the shape trade-off actually binds
#: (an oversized cache makes every tau look alike).
TOTAL_CAPACITY = 2048


def test_fig24_tau_shape(benchmark, corridor, emit):
    def run():
        return tau_sweep(
            corridor,
            RESOLUTION,
            taus=TAUS,
            total_capacity=TOTAL_CAPACITY,
            depth=BENCH_DEPTH,
            max_batches=BENCH_MAX_BATCHES,
        )

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            tau,
            f"{result.cache_hit_ratio:.3f}",
            f"{result.total_seconds:.2f}",
            result.octree_voxels_written,
        ]
        for tau, result in zip(TAUS, results)
    ]
    emit(
        "fig24_tau_sweep",
        format_table(
            ["tau", "hit ratio", "construction(s)", "octree voxels"], rows
        ),
    )

    by_tau = dict(zip(TAUS, results))
    times = {tau: r.total_seconds for tau, r in by_tau.items()}
    hits = {tau: r.cache_hit_ratio for tau, r in by_tau.items()}

    # The paper's optimum lies in the middle of the sweep: some tau in
    # {2, 4, 8} is at (or within wall-clock jitter of) the best overall.
    best_mid = min(times[2], times[4], times[8])
    assert best_mid <= 1.15 * min(times.values())

    # tau=1 suffers collision evictions: lowest hit ratio of the sweep —
    # the structural (jitter-free) signature of the trade-off.
    assert hits[1] <= min(hits[2], hits[4], hits[8], hits[16]) + 0.005

    # The hit ratio saturates by mid-tau: growing tau past the knee buys
    # no hits (it only lengthens bucket scans).
    assert hits[16] <= max(hits[2], hits[4], hits[8]) + 0.005
