"""Bulk clamped log-odds application (the vector update kernel).

The clamped update ``min(v + δ_occ, max_occ)`` / ``max(v − δ_free,
min_occ)`` is **order-dependent and non-associative** in floating
point, so summing deltas per voxel (or composing updates as intervals)
would drift from the scalar path by rounding.  Bit-exactness instead
comes from replaying the per-voxel observation sequences with the very
same operations, vectorised *across voxels round by round*: round ``r``
applies the ``r``-th observation of every voxel that still has one,
with ``np.minimum``/``np.maximum`` — IEEE-identical to the scalar
``min``/``max``.  Total work is O(total observations); the number of
rounds is the maximum per-voxel multiplicity.

Voxels are processed in descending-count layout so each round touches a
contiguous prefix (a slice, not a mask), and the few highest-multiplicity
stragglers are finished with a tight scalar loop once the prefix gets
small — numpy per-call overhead would otherwise dominate the tail.
"""

from __future__ import annotations

import numpy as np

from repro.octree.occupancy import OccupancyParams

__all__ = ["fold_logodds"]

#: Below this many active voxels a round is cheaper in pure Python
#: (tuned on the perf-bench workload: per-call numpy overhead crosses
#: the scalar loop's per-element cost around this prefix size).
_SCALAR_TAIL = 64


def fold_logodds(
    base: np.ndarray,
    occ_sorted: np.ndarray,
    seg_starts: np.ndarray,
    counts: np.ndarray,
    params: OccupancyParams,
) -> np.ndarray:
    """Fold each voxel's observation run onto its base value; return finals.

    Args:
        base: ``(U,)`` float64 starting log-odds per voxel.
        occ_sorted: ``(M,)`` bool flags in segment layout (each voxel's
            observations contiguous, original order preserved).
        seg_starts: ``(U,)`` offset of each voxel's run in ``occ_sorted``.
        counts: ``(U,)`` run length per voxel.
        params: the clamp/delta parameters shared with the scalar path.

    The result is bit-identical to calling ``params.update`` once per
    observation, per voxel, in order.
    """
    num_groups = counts.shape[0]
    values = np.array(base, dtype=np.float64, copy=True)
    if num_groups == 0 or occ_sorted.shape[0] == 0:
        return values
    d_occ = params.delta_occupied
    d_free = params.delta_free
    lo = params.min_occ
    hi = params.max_occ

    # Descending-count layout: round r's active voxels are a prefix.
    layout = np.argsort(-counts, kind="stable")
    sorted_counts = counts[layout]
    sorted_starts = seg_starts[layout]
    sorted_values = values[layout]
    max_rounds = int(sorted_counts[0])
    # counts > r  ⇔  index < searchsorted(-counts, -r, "left")
    actives = np.searchsorted(
        -sorted_counts, -np.arange(max_rounds, dtype=np.int64), side="left"
    )

    round_index = 0
    while round_index < max_rounds:
        active = int(actives[round_index])
        if active <= _SCALAR_TAIL:
            break
        flags = occ_sorted[sorted_starts[:active] + round_index]
        head = sorted_values[:active]
        sorted_values[:active] = np.where(
            flags,
            np.minimum(head + d_occ, hi),
            np.maximum(head - d_free, lo),
        )
        round_index += 1

    if round_index < max_rounds:
        # Finish the high-multiplicity stragglers scalar-style.  Once a
        # value sits exactly on a clamp bound, further same-direction
        # updates are exact no-ops (min(hi + δ, hi) == hi), so the loop
        # skips straight to the next opposite flag — long uniform runs
        # (e.g. the origin voxel, freed by every ray) collapse to a
        # handful of real updates plus one C-speed ``list.index`` scan.
        occ_list = occ_sorted.tolist()
        index_of = occ_list.index
        for group in range(int(actives[round_index])):
            value = float(sorted_values[group])
            start = int(sorted_starts[group]) + round_index
            stop = int(sorted_starts[group]) + int(sorted_counts[group])
            pos = start
            while pos < stop:
                if occ_list[pos]:
                    value = value + d_occ
                    pos += 1
                    if value >= hi:
                        if value > hi:
                            value = hi
                        try:
                            pos = index_of(False, pos, stop)
                        except ValueError:
                            break
                else:
                    value = value - d_free
                    pos += 1
                    if value <= lo:
                        if value < lo:
                            value = lo
                        try:
                            pos = index_of(True, pos, stop)
                        except ValueError:
                            break
            sorted_values[group] = value

    values[layout] = sorted_values
    return values
