"""Edge cases for the overlap analysis."""

import numpy as np

from repro.datasets.generator import make_dataset
from repro.datasets.overlap import overlap_cdf, overlap_ratios


class TestOverlapEdges:
    def test_window_larger_than_dataset(self):
        dataset = make_dataset("fr079_corridor", scale=0.2)
        ratios = overlap_ratios(dataset, 0.4, 10, window=100)
        assert len(ratios) == len(dataset) - 1
        assert all(0.0 <= r <= 1.0 for r in ratios)

    def test_window_one_uses_only_previous_batch(self):
        dataset = make_dataset("fr079_corridor", scale=0.3)
        w1 = overlap_ratios(dataset, 0.4, 10, window=1)
        w5 = overlap_ratios(dataset, 0.4, 10, window=5)
        # A wider history can only increase each batch's overlap.
        for narrow, wide in zip(w1, w5):
            assert wide >= narrow - 1e-12

    def test_cdf_of_empty_series(self):
        cdf = overlap_cdf([])
        assert all(fraction == 0.0 for _t, fraction in cdf)

    def test_cdf_endpoints(self):
        cdf = overlap_cdf([0.5], grid=[0.0, 1.0])
        assert cdf[0][1] == 0.0
        assert cdf[-1][1] == 1.0
