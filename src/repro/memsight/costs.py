"""Modeled per-object byte costs for deterministic accounting.

These mirror the paper's own bookkeeping style (7 bytes per cache cell,
16 bytes per octree node — both imported from where they already live)
rather than CPython object sizes: the reports must be identical across
hosts, Python versions, and allocator states, and must agree with the
figures the benchmarks regenerate.  ``mem-bench`` separately bounds the
real-process cost (``tracemalloc``/RSS) as a multiple of the model.

Every constant is the cost of one *entry* of the named kind; component
bytes are always ``count * constant`` (snapshots are the exception —
their blob length is exact).
"""

from repro.core.config import CELL_BYTES
from repro.octree.tree import NODE_BYTES

__all__ = [
    "BUCKET_SLOT_BYTES",
    "CELL_BYTES",
    "COUNT_BYTES",
    "DELTA_BYTES",
    "INDEX_ENTRY_BYTES",
    "NODE_BYTES",
    "OBS_BYTES",
    "SPAN_BYTES",
]

#: One queued/journaled observation: a packed voxel key (3 × 2-byte
#: coords) plus the occupied flag — the same 7-byte shape as a cache
#: cell's key+flag half.
OBS_BYTES = 7

#: One change-log delta: 8-byte cursor + packed key (6) + float32 value.
DELTA_BYTES = 18

#: One Morton-index entry: 8-byte code + 8-byte cell reference.
INDEX_ENTRY_BYTES = 16

#: One bucket header slot in the cache's bucket array.
BUCKET_SLOT_BYTES = 8

#: One retained span in a tracer ring sink (ids, times, small attrs).
SPAN_BYTES = 64

#: One aggregated counter key in a tracer ring sink.
COUNT_BYTES = 32
