"""Tests for the spinning-LiDAR sensor model."""

import numpy as np
import pytest

from repro.datasets.lidar import LidarModel
from repro.datasets.scenes import Box, Scene
from repro.sensor.scaninsert import trace_scan


def box_room():
    """A closed 10x10x4 room around the origin."""
    wall = 0.3
    return Scene(
        [
            Box((-5 - wall, -5, 0), (-5, 5, 4)),
            Box((5, -5, 0), (5 + wall, 5, 4)),
            Box((-5, -5 - wall, 0), (5, -5, 4)),
            Box((-5, 5, 0), (5, 5 + wall, 4)),
        ],
        ground=True,
        name="box_room",
    )


class TestGeometry:
    def test_ray_count(self):
        lidar = LidarModel(elevations_deg=(-5.0, 0.0, 5.0), azimuth_steps=90)
        assert lidar.rays_per_scan == 270
        assert lidar.ray_directions().shape == (270, 3)

    def test_directions_unit_norm(self):
        lidar = LidarModel(azimuth_steps=45)
        norms = np.linalg.norm(lidar.ray_directions(), axis=1)
        assert np.allclose(norms, 1.0)

    def test_full_azimuth_coverage(self):
        lidar = LidarModel(elevations_deg=(0.0,), azimuth_steps=360)
        directions = lidar.ray_directions()
        azimuths = np.arctan2(directions[:, 1], directions[:, 0])
        # Every 30-degree sector contains beams.
        histogram, _edges = np.histogram(azimuths, bins=12, range=(-np.pi, np.pi))
        assert (histogram > 0).all()

    def test_yaw_offset_rotates_pattern(self):
        lidar = LidarModel(elevations_deg=(0.0,), azimuth_steps=8)
        base = lidar.ray_directions(0.0)
        rotated = lidar.ray_directions(np.pi / 8)
        assert not np.allclose(base, rotated)

    def test_validation(self):
        with pytest.raises(ValueError):
            LidarModel(elevations_deg=())
        with pytest.raises(ValueError):
            LidarModel(azimuth_steps=0)
        with pytest.raises(ValueError):
            LidarModel(max_range=0)
        with pytest.raises(ValueError):
            LidarModel(noise_sigma=-1)


class TestScanning:
    def test_scan_surrounded_by_walls(self):
        lidar = LidarModel(
            elevations_deg=(-2.0, 0.0), azimuth_steps=90, max_range=12.0
        )
        cloud = lidar.scan(box_room(), (0.0, 0.0, 1.5))
        # Horizontal-ish rings hit all four walls.
        assert len(cloud) > 150
        assert cloud.points[:, 0].min() < -4.5
        assert cloud.points[:, 0].max() > 4.5
        assert cloud.points[:, 1].min() < -4.5
        assert cloud.points[:, 1].max() > 4.5

    def test_emit_misses(self):
        lidar = LidarModel(
            elevations_deg=(45.0,), azimuth_steps=16, max_range=2.0,
            emit_misses=True,
        )
        # Steeply upward beams in a tall room: nothing within range.
        cloud = lidar.scan(box_room(), (0.0, 0.0, 1.0))
        assert len(cloud) == 16
        ranges = np.linalg.norm(cloud.points - np.array([0.0, 0.0, 1.0]), axis=1)
        assert (ranges > 2.0).all()

    def test_noise_requires_rng(self):
        lidar = LidarModel(noise_sigma=0.01)
        with pytest.raises(ValueError):
            lidar.scan(box_room(), (0.0, 0.0, 1.0))

    def test_ring_geometry_duplicates_hard(self):
        """All azimuths converge at the sensor: near-field voxels are
        traversed by every firing — the heaviest duplication regime."""
        lidar = LidarModel(
            elevations_deg=(-1.0, 0.0, 1.0), azimuth_steps=120, max_range=12.0
        )
        cloud = lidar.scan(box_room(), (0.0, 0.0, 1.5))
        batch = trace_scan(cloud, 0.2, 10, max_range=12.0)
        assert batch.duplication_ratio > 2.0
