"""Octree node type.

Nodes are deliberately minimal: a log-odds ``value``, an optional list of 8
children, and a ``node_id`` used by the memory-hierarchy simulator to give
every node a stable simulated heap address (see
:mod:`repro.simcache.address_space`).

A node with ``children is None`` is a *leaf* at its level.  A leaf above the
finest level represents a pruned subtree whose descendants all share the
node's value — OctoMap's memory optimisation (paper §2.2).
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["OctreeNode"]


class OctreeNode:
    """One octree node holding a log-odds occupancy value.

    Attributes:
        value: accumulated log-odds occupancy.  For an inner node this is
            the maximum over its children, maintained by the tree.
        children: ``None`` for a leaf, else a list of 8 slots each holding
            ``None`` or a child :class:`OctreeNode`.
        node_id: unique id assigned by the owning tree's allocation counter.
    """

    __slots__ = ("value", "children", "node_id")

    def __init__(self, value: float, node_id: int) -> None:
        self.value = value
        self.children: Optional[List[Optional["OctreeNode"]]] = None
        self.node_id = node_id

    def is_leaf(self) -> bool:
        """Whether this node has no children (possibly a pruned subtree)."""
        return self.children is None

    def has_all_children(self) -> bool:
        """Whether all 8 child slots are occupied."""
        return self.children is not None and all(
            child is not None for child in self.children
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "leaf" if self.is_leaf() else "inner"
        return f"OctreeNode(id={self.node_id}, value={self.value:.3f}, {kind})"
