"""``python -m repro chaos-bench``: crash a shard, prove exact recovery.

The driver feeds a dataset's scans through an
:class:`~repro.service.server.OccupancyMapService` wired to a
:class:`~repro.resilience.FaultPlan` that kills one shard worker
mid-workload (plus any extra injections the caller adds).  After the
workload drains it exports the service's global snapshot and compares it
— occupancy decision by occupancy decision — against a map built
serially, fault-free, from the same scans.  ``recovered_exactly`` means
the crashed-and-recovered service converged on the *identical* map: no
lost batches, no duplicated updates, no stale shard state.

Scans are submitted from a single producer so per-voxel observation
order matches the serial build — the precondition for exact agreement
(concurrent producers interleave scans, which changes intermediate
values without changing correctness).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.octocache import OctoCacheMap
from repro.datasets.workload import load_bench_workload
from repro.octree.merge import AgreementReport, map_agreement
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.service.server import OccupancyMapService, ServiceConfig

__all__ = ["ChaosReport", "parse_fault_spec", "run_chaos_bench"]


@dataclass
class ChaosReport:
    """Outcome of one chaos run.

    Attributes:
        dataset: dataset driven through the service.
        shards: service shard count.
        workers: worker backend (``"thread"`` or ``"process"`` — in
            process mode the injected crash SIGKILLs the real worker
            process, so recovery is exercised against actual process
            death, not a simulated one).
        scans / observations: workload volume submitted.
        rejected_observations: observations dropped (reject policy,
            dead shards, or injected enqueue drops).
        faults_fired: injections that fired, keyed by site.
        recoveries / worker_restarts / retries / snapshots: resilience
            machinery activity, from the service's counters.
        dead_shards: shards that exhausted their recovery budget.
        agreement: snapshot vs fault-free serial build.
        elapsed_seconds: wall-clock for the loaded phase.
        stats: the service's final ``stats_dict()``.
        report_text: the service's final ``stats_report()``.
    """

    dataset: str
    shards: int
    workers: str = "thread"
    scans: int = 0
    observations: int = 0
    rejected_observations: int = 0
    faults_fired: Dict[str, int] = field(default_factory=dict)
    recoveries: int = 0
    worker_restarts: int = 0
    retries: int = 0
    snapshots: int = 0
    dead_shards: int = 0
    agreement: Optional[AgreementReport] = None
    elapsed_seconds: float = 0.0
    stats: Dict[str, object] = field(default_factory=dict)
    report_text: str = ""

    @property
    def recovered_exactly(self) -> bool:
        """True when the post-chaos map equals the fault-free build."""
        return (
            self.agreement is not None
            and self.agreement.decision_agreement == 1.0
            and self.agreement.missing == 0
        )

    def to_dict(self) -> Dict[str, object]:
        """JSON-able summary (the CI artifact payload)."""
        agreement = None
        if self.agreement is not None:
            agreement = {
                "compared": self.agreement.compared,
                "matching": self.agreement.matching,
                "missing": self.agreement.missing,
                "decision_agreement": self.agreement.decision_agreement,
            }
        return {
            "dataset": self.dataset,
            "shards": self.shards,
            "workers": self.workers,
            "scans": self.scans,
            "observations": self.observations,
            "rejected_observations": self.rejected_observations,
            "faults_fired": dict(self.faults_fired),
            "recoveries": self.recoveries,
            "worker_restarts": self.worker_restarts,
            "retries": self.retries,
            "snapshots": self.snapshots,
            "dead_shards": self.dead_shards,
            "agreement": agreement,
            "recovered_exactly": self.recovered_exactly,
            "elapsed_seconds": self.elapsed_seconds,
            "stats": self.stats,
        }


def run_chaos_bench(
    dataset_name: str = "fr079_corridor",
    shards: int = 4,
    resolution: float = 0.3,
    depth: int = 10,
    max_batches: Optional[int] = 12,
    crash_shard: int = 0,
    crash_after: int = 2,
    snapshot_interval: int = 3,
    queue_capacity: int = 8,
    coalesce: int = 2,
    ray_scale: float = 0.5,
    extra_specs: Sequence[FaultSpec] = (),
    workers: str = "thread",
    num_procs: Optional[int] = None,
    kernel: str = "scalar",
) -> ChaosReport:
    """Run the chaos workload and verify recovery exactness.

    By default one :class:`FaultSpec` crashes shard ``crash_shard``'s
    worker on its ``crash_after``-th apply; ``extra_specs`` layers on
    additional injections (transient errors, enqueue drops, snapshot
    failures).  Returns a :class:`ChaosReport`; inspect
    ``recovered_exactly`` for the verdict.

    With ``workers="process"`` the same crash plan SIGKILLs the shard's
    actual worker process mid-workload (the service makes injected
    crashes real in process mode), so the verdict certifies exact
    recovery from genuine process death.
    """
    if not 0 <= crash_shard < shards:
        raise ValueError(
            f"crash_shard must be in [0, {shards}), got {crash_shard}"
        )
    workload = load_bench_workload(
        dataset_name, ray_scale=ray_scale, max_batches=max_batches
    )
    dataset, scans = workload.dataset, workload.scans
    plan = FaultPlan(
        [
            FaultSpec(
                site="shard.apply",
                mode="crash",
                shard=crash_shard,
                after=crash_after,
            ),
            *extra_specs,
        ]
    )
    config = ServiceConfig(
        resolution=resolution,
        depth=depth,
        num_shards=shards,
        queue_capacity=queue_capacity,
        coalesce=coalesce,
        max_range=dataset.sensor.max_range,
        snapshot_interval=snapshot_interval,
        workers=workers,
        num_procs=num_procs,
        kernel=kernel,
    )
    report = ChaosReport(dataset=dataset_name, shards=shards, workers=workers)
    start = time.perf_counter()
    with OccupancyMapService(config, fault_plan=plan) as service:
        for cloud in scans:
            receipt = service.submit(cloud)
            report.scans += 1
            report.observations += receipt.observations
            report.rejected_observations += receipt.rejected
        service.flush()
        snapshot = service.snapshot()
        report.elapsed_seconds = time.perf_counter() - start
        report.stats = service.stats_dict()
        report.report_text = service.stats_report()
        report.dead_shards = sum(
            1
            for entry in report.stats["shards"]
            if entry["health"] == "dead"
        )
    counters = report.stats["metrics"]["counters"]
    report.recoveries = counters.get("shard.recoveries", 0)
    report.worker_restarts = counters.get("shard.worker_restarts", 0)
    report.retries = counters.get("shard.retries", 0)
    report.snapshots = counters.get("shard.snapshots", 0)
    for entry in plan.fired:
        site = str(entry["site"])
        report.faults_fired[site] = report.faults_fired.get(site, 0) + 1
    serial = OctoCacheMap(
        resolution=resolution, depth=depth, max_range=dataset.sensor.max_range
    )
    for cloud in scans:
        serial.insert_point_cloud(cloud)
    serial.finalize()
    report.agreement = map_agreement(serial.octree, snapshot)
    return report


_SPEC_FIELDS = ("site", "mode", "shard", "after", "times", "delay")


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse ``site=...,mode=...,shard=...`` CLI shorthand into a spec.

    Example: ``site=shard.apply,mode=error,shard=1,after=2,times=3``.
    """
    kwargs: Dict[str, object] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ValueError(
                f"bad fault spec field {chunk!r}; expected key=value"
            )
        key, value = chunk.split("=", 1)
        key = key.strip()
        if key not in _SPEC_FIELDS:
            raise ValueError(
                f"unknown fault spec field {key!r}; expected one of "
                f"{_SPEC_FIELDS}"
            )
        if key in ("shard", "after", "times"):
            kwargs[key] = int(value)
        elif key == "delay":
            kwargs[key] = float(value)
        else:
            kwargs[key] = value.strip()
    if "site" not in kwargs:
        raise ValueError(f"fault spec {text!r} is missing site=...")
    return FaultSpec(**kwargs)  # type: ignore[arg-type]
