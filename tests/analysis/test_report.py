"""Tests for report formatting."""

import pytest

from repro.analysis.report import format_ratio, format_table, series_block


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 22]])
        lines = table.splitlines()
        assert len(lines) == 4
        # All lines equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_float_formatting(self):
        table = format_table(["v"], [[0.123456], [1234.5], [0.0]])
        assert "0.123" in table
        assert "0" in table

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_empty_rows(self):
        table = format_table(["a"], [])
        assert "a" in table


class TestRatio:
    def test_speedup(self):
        assert format_ratio(2.0, 1.0) == "2.00x"

    def test_zero_denominator(self):
        assert format_ratio(1.0, 0.0) == "inf"


class TestSeriesBlock:
    def test_contains_title_and_table(self):
        block = series_block("Figure 1", "data")
        assert "Figure 1" in block
        assert "data" in block
