"""End-to-end kernel parity: full map builds and the sharded service.

The unit parity tests pin each kernel against its scalar counterpart;
these tests pin the *composition* — trace → dedup/group → bulk log-odds
→ cache → octree — by building whole maps both ways and demanding
perfect decision agreement (and identical tree shape).  The service
tests confirm the vector kernels ride the shard pipelines unchanged
under both worker backends.
"""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap, OctoCacheRTMap
from repro.datasets.workload import load_bench_workload
from repro.octree.merge import map_agreement
from repro.service.workload import run_serve_bench


@pytest.fixture(scope="module")
def workload():
    return load_bench_workload(
        "fr079_corridor", ray_scale=0.25, max_batches=3
    )


def build(workload, kernel, rt=False, cache_config=None):
    cls = OctoCacheRTMap if rt else OctoCacheMap
    mapping = cls(
        resolution=0.3,
        depth=10,
        max_range=workload.max_range,
        cache_config=cache_config,
        kernel=kernel,
    )
    for cloud in workload:
        mapping.insert_point_cloud(cloud)
    mapping.finalize()
    return mapping


def assert_same_map(scalar, vector):
    report = map_agreement(scalar.octree, vector.octree)
    assert report.decision_agreement == 1.0
    assert report.missing == 0
    assert vector.octree.num_nodes == scalar.octree.num_nodes


def test_full_build_parity(workload):
    assert_same_map(
        build(workload, "scalar"), build(workload, "vector")
    )


def test_full_build_parity_rt_mode(workload):
    assert_same_map(
        build(workload, "scalar", rt=True), build(workload, "vector", rt=True)
    )


def test_full_build_parity_hash_indexing(workload):
    # use_morton_indexing=False exercises the hash bucket-placement arm
    # of the bulk cache write-back.
    config = CacheConfig(num_buckets=512, use_morton_indexing=False)
    assert_same_map(
        build(workload, "scalar", cache_config=config),
        build(workload, "vector", cache_config=config),
    )


def test_full_build_parity_tiny_cache_heavy_eviction(workload):
    # A cache far smaller than the working set forces eviction (and the
    # bulk octree apply) on nearly every batch.
    config = CacheConfig(num_buckets=64, bucket_threshold=2)
    assert_same_map(
        build(workload, "scalar", cache_config=config),
        build(workload, "vector", cache_config=config),
    )


def test_vector_map_matches_scalar_cache_statistics(workload):
    scalar = build(workload, "scalar")
    vector = build(workload, "vector")
    assert vector.cache.stats_dict() == scalar.cache.stats_dict()


@pytest.mark.parametrize("workers", ["thread", "process"])
def test_service_pipeline_vector_kernel(workers):
    report = run_serve_bench(
        shards=2,
        clients=2,
        max_batches=2,
        ray_scale=0.2,
        queries_per_scan=1,
        verify_snapshot=True,
        workers=workers,
        num_procs=2 if workers == "process" else None,
        kernel="vector",
    )
    # The serial verification rebuild runs the scalar kernel, so full
    # agreement here is a cross-kernel, cross-backend exactness check.
    assert report.agreement is not None
    assert report.agreement.decision_agreement == 1.0
    assert report.agreement.missing == 0
    assert report.scans > 0
