"""Stateful reference-model test: OctoCache vs a flat dictionary.

The strongest consistency statement in the paper — OctoCache answers every
query exactly as vanilla OctoMap would — reduces to: the cache+octree
composite behaves like a single flat map applying clamped log-odds
updates.  This hypothesis test drives random interleavings of inserts,
evictions, flushes, and queries against that reference dictionary.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig
from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree

DEPTH = 6
SIDE = 1 << DEPTH

keys = st.tuples(
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
    st.integers(min_value=0, max_value=7),
)

operations = st.lists(
    st.one_of(
        st.tuples(st.just("insert"), keys, st.booleans()),
        st.tuples(st.just("evict"), st.none(), st.none()),
        st.tuples(st.just("flush"), st.none(), st.none()),
        st.tuples(st.just("query"), keys, st.none()),
    ),
    min_size=1,
    max_size=120,
)


class TestReferenceModel:
    @settings(max_examples=80, deadline=None)
    @given(operations, st.integers(min_value=0, max_value=3))
    def test_composite_matches_flat_map(self, ops, config_index):
        configs = [
            CacheConfig(num_buckets=2, bucket_threshold=1),
            CacheConfig(num_buckets=4, bucket_threshold=2),
            CacheConfig(num_buckets=16, bucket_threshold=1, use_morton_indexing=False),
            CacheConfig(num_buckets=64, bucket_threshold=4),
        ]
        params = OccupancyParams()
        backend = OccupancyOctree(resolution=0.1, depth=DEPTH, params=params)
        cache = VoxelCache(configs[config_index], params=params, backend=backend)
        reference = {}

        for op, key, occupied in ops:
            if op == "insert":
                reference[key] = params.update(
                    reference.get(key, params.threshold), occupied
                )
                cache.insert(key, occupied)
            elif op == "evict":
                for evicted_key, value in cache.evict():
                    backend.set_leaf(evicted_key, value)
            elif op == "flush":
                for evicted_key, value in cache.flush():
                    backend.set_leaf(evicted_key, value)
            else:  # query
                expected = reference.get(key)
                actual = cache.query(key)
                if expected is None:
                    assert actual is None, key
                else:
                    assert actual == pytest.approx(expected), key

        # Whatever happened, the composite agrees on every touched voxel.
        for key, expected in reference.items():
            assert cache.query(key) == pytest.approx(expected), key
