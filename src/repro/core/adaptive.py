"""Adaptive cache sizing (an extension the paper leaves as tuning, §6.2.3).

Figure 23 shows the hit ratio rising with cache size until all inter- and
intra-batch duplication is captured, then flattening; the paper picks the
size offline (3–4× the average non-duplicate batch).  This module closes
the loop online: :class:`AdaptiveOctoCacheMap` monitors each batch's hit
ratio and grows the bucket array (power-of-two doubling, resident cells
rehashed) while hits keep improving, stopping automatically at the
saturation knee or a memory ceiling.

Useful when the workload is unknown up front — a UAV flying from open
ground into a cluttered interior needs a different cache size per regime.
"""

from __future__ import annotations

from typing import List, Optional

from repro.baselines.interface import BatchRecord
from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.octree.occupancy import OccupancyParams
from repro.sensor.scaninsert import ScanBatch

__all__ = ["AdaptiveOctoCacheMap"]


class AdaptiveOctoCacheMap(OctoCacheMap):
    """OctoCache whose bucket count grows until hits saturate.

    Growth policy: after each batch, compare the batch's insert-path hit
    ratio against the previous batch's.  While the cache keeps evicting
    (it is full) *and* the hit ratio sits below ``target_hit_ratio``, the
    bucket array doubles — until ``max_memory_bytes`` would be exceeded
    or the last doubling failed to improve hits by ``min_gain``.

    Args:
        target_hit_ratio: stop growing once this hit ratio is reached.
        min_gain: a doubling must add at least this much hit ratio,
            otherwise growth is considered saturated (Figure 23's knee).
        max_memory_bytes: hard cap on the post-eviction cache footprint.
    """

    name = "OctoCache (adaptive)"

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        cache_config: Optional[CacheConfig] = None,
        rt: bool = False,
        kernel: str = "scalar",
        target_hit_ratio: float = 0.9,
        min_gain: float = 0.01,
        max_memory_bytes: int = 14 * 1024 * 1024,  # the paper's 14MB budget
    ) -> None:
        cache_config = cache_config or CacheConfig(num_buckets=64)
        super().__init__(
            resolution=resolution,
            depth=depth,
            params=params,
            max_range=max_range,
            cache_config=cache_config,
            rt=rt,
            kernel=kernel,
        )
        if not 0.0 < target_hit_ratio <= 1.0:
            raise ValueError(
                f"target_hit_ratio must be in (0, 1], got {target_hit_ratio}"
            )
        if min_gain < 0.0:
            raise ValueError(f"min_gain must be non-negative, got {min_gain}")
        self.target_hit_ratio = target_hit_ratio
        self.min_gain = min_gain
        self.max_memory_bytes = max_memory_bytes
        self.resize_events: List[int] = []
        self._saturated = False
        self._ratio_before_resize: Optional[float] = None
        self._stalls = 0
        self._hits_before = 0
        self._inserts_before = 0

    # ------------------------------------------------------------------
    # Growth control.
    # ------------------------------------------------------------------

    def _batch_hit_ratio(self) -> float:
        stats = self.cache.stats
        hits = stats.hits - self._hits_before
        inserts = stats.insertions - self._inserts_before
        self._hits_before = stats.hits
        self._inserts_before = stats.insertions
        return hits / inserts if inserts else 0.0

    def _grow(self) -> None:
        """Double the bucket array, rehashing resident cells."""
        old_cache = self.cache
        new_config = CacheConfig(
            num_buckets=old_cache.config.num_buckets * 2,
            bucket_threshold=old_cache.config.bucket_threshold,
            use_morton_indexing=old_cache.config.use_morton_indexing,
        )
        new_cache = VoxelCache(new_config, params=self.params, backend=self._tree)
        threshold = new_config.bucket_threshold
        for code, cell in old_cache._cell_index.items():
            # Move the live cell object: bucket and index share it.
            index = new_cache.bucket_index(cell[0])
            bucket = new_cache._buckets[index]
            bucket.append(cell)
            if len(bucket) > threshold:
                new_cache._overfull.add(index)
            new_cache._cell_index[code] = cell
            new_cache._resident += 1
        # Carry the lifetime counters so hit-ratio reporting stays global.
        new_cache.stats = old_cache.stats
        self.cache = new_cache
        self.resize_events.append(new_config.num_buckets)

    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        super()._process_batch(batch, record)
        if self._saturated:
            return
        ratio = self._batch_hit_ratio()
        if ratio >= self.target_hit_ratio:
            self._saturated = True
            return
        # Knee detection: a doubling must eventually pay off.  Per-batch
        # ratios are noisy (scan content varies), so growth stops only
        # after two consecutive doublings each failing to beat the
        # pre-resize ratio by min_gain.
        if self.resize_events and self._ratio_before_resize is not None:
            if ratio - self._ratio_before_resize < self.min_gain:
                self._stalls += 1
                if self._stalls >= 2:
                    self._saturated = True  # the Figure-23 knee
                    return
            else:
                self._stalls = 0
        if record.evicted == 0:
            return  # cache not under pressure; growth cannot add hits
        # Growth is proportional to pressure: a batch that evicted more
        # than the whole capacity clearly needs more than one doubling —
        # this makes the controller converge within a few batches even
        # when it starts orders of magnitude undersized.
        capacity = self.cache.config.capacity
        doublings = 1
        if record.evicted > capacity:
            doublings = 2
        if record.evicted > 4 * capacity:
            doublings = 3
        self._ratio_before_resize = ratio
        for _ in range(doublings):
            doubled = CacheConfig(
                num_buckets=self.cache.config.num_buckets * 2,
                bucket_threshold=self.cache.config.bucket_threshold,
            )
            if doubled.memory_bytes > self.max_memory_bytes:
                self._saturated = True
                return
            self._grow()

    @property
    def saturated(self) -> bool:
        """Whether growth stopped (knee reached, target met, or capped)."""
        return self._saturated
