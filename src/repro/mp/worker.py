"""The shard worker process: a command loop over private OctoCache maps.

:func:`shard_worker_main` is the child-process entry point (a
module-level function, so it works under both ``fork`` and ``spawn``
start methods).  Each worker owns one private
:class:`~repro.core.octocache.OctoCacheMap` per assigned shard and
executes framed commands from the parent (:mod:`repro.mp.codec`):
apply a batch, answer point/box queries, export a snapshot blob,
rebuild a shard from checkpoint + journal tail
(:func:`~repro.resilience.recovery.restore_pipeline` — the same exact
recovery path a crashed worker *thread* takes), report stats, finalize,
shut down.

The worker never answers with pickles and never logs: it computes,
replies, and relays telemetry.  A fresh always-on tracer (installed with
``set_tracer`` *before* the pipelines are built, so they capture it)
buffers the child's spans and counter events in a relay sink, and every
reply envelope carries the drained buffer back to the parent, which
replays the events into the service's registry — cross-process metrics
without a second channel.

Any per-command failure is reported as an ``ERROR`` frame carrying the
traceback; only a broken pipe (the parent went away) or an explicit
``SHUTDOWN`` ends the loop.
"""

from __future__ import annotations

import contextlib
import os
import signal
import threading
import traceback
from typing import Any, Dict, List, Optional, Tuple

from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.mp import codec
from repro.octree.iterators import occupied_keys_in_box
from repro.octree.key import VoxelKey
from repro.octree.merge import merge_tree
from repro.octree.occupancy import OccupancyParams
from repro.octree.serialize import tree_to_bytes
from repro.octree.tree import OccupancyOctree
from repro.resilience.recovery import ShardCheckpoint, restore_pipeline
from repro.sensor.scaninsert import ScanBatch
from repro.telemetry.tracer import (
    CountEvent,
    Span,
    Tracer,
    seed_span_ids,
    set_tracer,
    span_context,
)

__all__ = ["shard_worker_main"]

_JSON_SCALARS = (str, int, float, bool, type(None))


class _RelaySink:
    """Buffers the child's spans/counts for piggybacking onto replies."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._events: List[Dict[str, Any]] = []

    def on_span(self, span: Span) -> None:
        attrs = {
            key: (value if isinstance(value, _JSON_SCALARS) else str(value))
            for key, value in span.attributes.items()
        }
        event = {
            "k": "span",
            "n": span.name,
            "c": span.category,
            "s": span.start,
            "d": span.duration,
            "t": span.thread_id,
            "i": span.span_id,
        }
        if span.parent_id is not None:
            event["p"] = span.parent_id
        if attrs:
            event["a"] = attrs
        with self._lock:
            self._events.append(event)

    def on_count(self, event: CountEvent) -> None:
        with self._lock:
            self._events.append(
                {
                    "k": "count",
                    "n": event.name,
                    "c": event.category,
                    "v": event.value,
                }
            )

    def push(self, event: Dict[str, Any]) -> None:
        """Buffer a non-telemetry relay event (memory rollups)."""
        with self._lock:
            self._events.append(event)

    def drain(self) -> List[Dict[str, Any]]:
        with self._lock:
            events, self._events = self._events, []
        return events


def _build_params(config: Dict[str, Any]) -> OccupancyParams:
    fields = config.get("params")
    if not fields:
        return OccupancyParams()
    return OccupancyParams(
        threshold=fields["threshold"],
        delta_occupied=fields["delta_occupied"],
        delta_free=fields["delta_free"],
        min_occ=fields["min_occ"],
        max_occ=fields["max_occ"],
    )


def _build_cache_config(config: Dict[str, Any]) -> Optional[CacheConfig]:
    fields = config.get("cache_config")
    if not fields:
        return None
    return CacheConfig(
        num_buckets=fields["num_buckets"],
        bucket_threshold=fields["bucket_threshold"],
        use_morton_indexing=fields["use_morton_indexing"],
    )


class _ShardWorker:
    """Per-process state: one pipeline per assigned ``(shard, tenant)``.

    Tenant slot 0 (the default single-tenant map) gets its pipelines
    eagerly, exactly as before wire v3; non-zero tenant slots are
    created lazily on first touch (apply/restore/query) and torn down
    with ``DROP_TENANT`` — eviction must release the worker-side memory,
    not just the parent's bookkeeping.
    """

    def __init__(
        self, config: Dict[str, Any], relay: Optional[_RelaySink] = None
    ) -> None:
        self.resolution = float(config["resolution"])
        self.depth = int(config["depth"])
        self.max_range = float(config["max_range"])
        self.kernel = str(config.get("kernel", "scalar"))
        self.params = _build_params(config)
        self.cache_config = _build_cache_config(config)
        self.shard_ids = [int(shard) for shard in config["shard_ids"]]
        self.relay = relay
        self.pipelines: Dict[Tuple[int, int], OctoCacheMap] = {
            (shard, 0): self._make_pipeline() for shard in self.shard_ids
        }

    def _make_pipeline(self) -> OctoCacheMap:
        return OctoCacheMap(
            resolution=self.resolution,
            depth=self.depth,
            params=self.params,
            max_range=self.max_range,
            cache_config=self.cache_config,
            kernel=self.kernel,
        )

    def pipeline(self, shard: int, tenant: int) -> OctoCacheMap:
        if shard not in self.shard_ids:
            raise ValueError(
                f"shard {shard} is not assigned to this worker "
                f"(owns {self.shard_ids})"
            )
        slot = (shard, tenant)
        existing = self.pipelines.get(slot)
        if existing is None:
            existing = self.pipelines[slot] = self._make_pipeline()
        return existing

    # -- memory accounting ---------------------------------------------

    def _slot_name(self, tenant: int) -> str:
        return "default" if tenant == 0 else f"tenant{tenant}"

    def _mem_report(
        self, shard: int, tenant: int, exact: bool = False, deep: bool = False
    ):
        pipeline = self.pipelines.get((shard, tenant))
        if pipeline is None:
            return None
        return pipeline.memory_breakdown(
            exact=exact, deep=deep, name=self._slot_name(tenant)
        )

    def _relay_mem(self, shard: int, tenant: int) -> None:
        """Piggyback a slot's byte rollup onto the next reply.

        ``r = None`` tells the parent the slot is gone (drop path), so
        its cached attribution disappears with the state.
        """
        if self.relay is None:
            return
        report = self._mem_report(shard, tenant)
        self.relay.push(
            {
                "k": "mem",
                "sh": shard,
                "tn": tenant,
                "r": None if report is None else report.to_dict(),
            }
        )

    # -- commands ------------------------------------------------------

    def apply(self, shard: int, tenant: int, payload: bytes) -> bytes:
        observations = codec.decode_observations(payload)
        pipeline = self.pipeline(shard, tenant)
        batch = ScanBatch(observations=observations, num_rays=0)
        record = pipeline.insert_batch(batch)
        self._relay_mem(shard, tenant)
        return codec.encode_busy_seconds(
            pipeline.record_busy_seconds(record)
        )

    def query_many(self, shard: int, tenant: int, payload: bytes) -> bytes:
        pipeline = self.pipeline(shard, tenant)
        keys = codec.decode_keys(payload)
        return codec.encode_values(
            [pipeline.query_key(key) for key in keys]
        )

    def box_query(self, shard: int, tenant: int, payload: bytes) -> bytes:
        min_key, max_key = codec.decode_keys(payload)
        pipeline = self.pipeline(shard, tenant)

        def in_box(key: VoxelKey) -> bool:
            return all(
                min_key[axis] <= key[axis] <= max_key[axis]
                for axis in range(3)
            )

        # Same cache-is-authoritative overlay as ShardedMap.occupied_in_box.
        cached = {
            key: value
            for key, value in pipeline.cache.iter_cells()
            if in_box(key)
        }
        occupied = [
            key
            for key in occupied_keys_in_box(pipeline.octree, min_key, max_key)
            if key not in cached
        ]
        occupied.extend(
            key
            for key, value in cached.items()
            if self.params.is_occupied(value)
        )
        return codec.encode_keys(sorted(occupied))

    def snapshot(self, shard: int, tenant: int) -> bytes:
        pipeline = self.pipeline(shard, tenant)
        tree = OccupancyOctree(
            resolution=self.resolution, depth=self.depth, params=self.params
        )
        merge_tree(tree, pipeline.octree, strategy="overwrite")
        for key, value in pipeline.cache.iter_cells():
            tree.set_leaf(key, value)
        return tree_to_bytes(tree)

    def restore(self, shard: int, tenant: int, payload: bytes) -> bytes:
        blob, upto, batches = codec.decode_restore(payload)
        checkpoint = (
            ShardCheckpoint(blob=blob, upto=upto) if blob is not None else None
        )
        self.pipeline(shard, tenant)  # validate ownership before replacing
        self.pipelines[(shard, tenant)] = restore_pipeline(
            self._make_pipeline, checkpoint, batches
        )
        self._relay_mem(shard, tenant)
        return codec.encode_json({"replayed": len(batches)})

    def stats(self, shard: int, tenant: int) -> bytes:
        pipeline = self.pipeline(shard, tenant)
        return codec.encode_json(
            {
                "hit_ratio": pipeline.hit_ratio,
                "resident_voxels": pipeline.cache.resident_voxels,
                "octree_nodes": pipeline.octree.num_nodes,
                "batches": len(pipeline.batches),
                "cache": pipeline.cache.stats_dict(),
                "memory": pipeline.memory_breakdown().to_dict(),
            }
        )

    def mem(self, shard: int, tenant: int, payload: bytes) -> bytes:
        """Every slot's breakdown for one shard (``MEM`` command).

        The payload selects ``exact`` (recount by walking storage) and
        ``deep`` (per-depth octree drill-down); the addressed tenant is
        ignored — one round trip returns the whole shard's slots.
        """
        options = codec.decode_json(payload) if payload else {}
        exact = bool(options.get("exact", False))
        deep = bool(options.get("deep", False))
        slots: Dict[str, Any] = {}
        for (slot_shard, slot_tenant) in sorted(self.pipelines):
            if slot_shard != shard:
                continue
            report = self._mem_report(
                shard, slot_tenant, exact=exact, deep=deep
            )
            if report is not None:
                slots[str(slot_tenant)] = report.to_dict()
        return codec.encode_json({"slots": slots})

    def finalize(self, shard: int, tenant: int) -> bytes:
        self.pipeline(shard, tenant).finalize()
        self._relay_mem(shard, tenant)
        return b""

    def drop_tenant(self, shard: int, tenant: int) -> bytes:
        """Free a tenant's pipeline on this shard (eviction)."""
        if tenant == 0:
            raise ValueError("tenant slot 0 (the default map) cannot be dropped")
        dropped = self.pipelines.pop((shard, tenant), None) is not None
        self._relay_mem(shard, tenant)
        return codec.encode_json({"dropped": dropped})


def shard_worker_main(conn, config_blob: bytes) -> None:
    """Child-process entry: build the pipelines, serve framed commands.

    ``conn`` is the worker end of a ``multiprocessing.Pipe``;
    ``config_blob`` a JSON payload (:func:`repro.mp.codec.encode_json`)
    with the shard shape (resolution/depth/params/cache) and the shard
    ids this process owns.
    """
    # The parent owns lifecycle: SIGINT (a user's Ctrl-C reaches the
    # whole process group) must not tear the worker down mid-command —
    # the parent's close()/SHUTDOWN does that in order.
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
    except (ValueError, OSError):  # pragma: no cover - non-main thread
        pass
    relay = _RelaySink()
    # Relayed span ids land in the parent's span tree verbatim, so each
    # worker allocates from a pid-disjoint range: ids from different
    # processes (and the parent, which counts up from 1) never collide.
    seed_span_ids(((os.getpid() & 0x3FFFFF) << 40) | 1)
    # A fresh tracer *before* pipelines are built (they capture it at
    # construction).  Under fork we would otherwise inherit the parent's
    # global tracer and feed parent-copied sinks nobody reads.
    set_tracer(Tracer(enabled=True, sinks=[relay]))
    config = codec.decode_json(config_blob)
    worker = _ShardWorker(config, relay=relay)
    handlers = {
        codec.MSG_APPLY: worker.apply,
        codec.MSG_QUERY_MANY: worker.query_many,
        codec.MSG_BOX_QUERY: worker.box_query,
        codec.MSG_RESTORE: worker.restore,
        codec.MSG_MEM: worker.mem,
    }
    no_payload = {
        codec.MSG_SNAPSHOT: worker.snapshot,
        codec.MSG_STATS: worker.stats,
        codec.MSG_FINALIZE: worker.finalize,
        codec.MSG_DROP_TENANT: worker.drop_tenant,
    }
    while True:
        try:
            data = conn.recv_bytes()
        except (EOFError, OSError):
            # Parent went away without SHUTDOWN (killed, crashed): exit
            # quietly; the supervisor treats us as dead either way.
            return
        frame: Optional[codec.Frame] = None
        try:
            frame = codec.decode_frame(data)
            if frame.type == codec.MSG_SHUTDOWN:
                reply = codec.encode_frame(
                    codec.MSG_OK,
                    frame.shard,
                    frame.seq,
                    codec.encode_reply(b"", relay.drain()),
                )
                try:
                    conn.send_bytes(reply)
                except (BrokenPipeError, OSError):
                    pass
                return
            # Adopt the wire-propagated trace context (pushed only after
            # a frame fully decodes, popped via __exit__ even on handler
            # failure — a corrupt frame can never orphan the span stack).
            parent = (
                span_context(frame.parent_span, "wire.request", "service")
                if frame.parent_span
                else contextlib.nullcontext()
            )
            with parent:
                if frame.type == codec.MSG_PING:
                    body = b""
                elif frame.type in handlers:
                    body = handlers[frame.type](
                        frame.shard, frame.tenant, frame.payload
                    )
                elif frame.type in no_payload:
                    body = no_payload[frame.type](frame.shard, frame.tenant)
                else:
                    raise ValueError(
                        f"unexpected message {codec.message_name(frame.type)}"
                    )
            reply = codec.encode_frame(
                codec.MSG_OK,
                frame.shard,
                frame.seq,
                codec.encode_reply(body, relay.drain()),
            )
        except BaseException:
            # Per-command failure: report, keep serving.  The parent maps
            # this to a retryable WorkerCommandError.
            reply = codec.encode_frame(
                codec.MSG_ERROR,
                frame.shard if frame is not None else -1,
                frame.seq if frame is not None else 0,
                codec.encode_reply(
                    traceback.format_exc().encode("utf-8", "replace"),
                    relay.drain(),
                ),
            )
        try:
            conn.send_bytes(reply)
        except (BrokenPipeError, OSError):
            return
