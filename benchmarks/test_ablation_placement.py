"""Ablation: heap placement — the Morton win is temporal, not spatial.

The ordering benefit (Figure 10) comes from consecutive insertions
re-touching the *same* ancestor nodes while they are still cached, not
from neighbouring nodes sharing cache lines.  If that is true, the
Morton-vs-random gap must survive a pseudo-randomly scattered heap
(``AddressSpace(placement="shuffled")``), where line sharing between
related nodes is destroyed.
"""

import numpy as np

from repro.analysis.report import format_table
from repro.octree.tree import OccupancyOctree
from repro.simcache.address_space import AddressSpace
from repro.simcache.cost_model import scaled_tx2_hierarchy
from repro.simcache.trace import TraceRecorder, replay_trace

from .conftest import BENCH_DEPTH

RESOLUTION = 0.1
NUM_KEYS = 20_000


def surface_keys():
    rng = np.random.default_rng(11)
    x = rng.integers(0, 512, NUM_KEYS)
    y = rng.integers(0, 512, NUM_KEYS)
    z = (
        128 + 12 * np.sin(x / 40.0) + 9 * np.cos(y / 25.0) + rng.integers(0, 2, NUM_KEYS)
    ).astype(int)
    return list(zip(x.tolist(), y.tolist(), z.tolist()))


def trace_for(keys):
    recorder = TraceRecorder()
    tree = OccupancyOctree(
        resolution=RESOLUTION, depth=BENCH_DEPTH, visit_hook=recorder.record
    )
    for key in keys:
        tree.update_node(key, True)
    return recorder.trace, len(set(keys))


def test_ablation_heap_placement(benchmark, emit):
    keys = surface_keys()
    rng = np.random.default_rng(0)
    shuffled_keys = list(keys)
    rng.shuffle(shuffled_keys)
    from repro.core.morton import morton_encode3

    morton_keys = sorted(keys, key=lambda k: morton_encode3(*k))

    def run():
        results = {}
        for order_label, ordered in (("morton", morton_keys), ("random", shuffled_keys)):
            trace, distinct = trace_for(ordered)
            for placement in ("sequential", "shuffled"):
                space = AddressSpace(placement=placement)
                hierarchy = scaled_tx2_hierarchy(
                    int(distinct * 1.14), address_space=space
                )
                replay = replay_trace(trace, hierarchy=hierarchy)
                results[(order_label, placement)] = (
                    replay.total_cycles / len(ordered)
                )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [order, placement, f"{cycles:.1f}"]
        for (order, placement), cycles in results.items()
    ]
    emit(
        "ablation_heap_placement",
        format_table(["ordering", "placement", "cycles/voxel"], rows),
    )

    for placement in ("sequential", "shuffled"):
        morton = results[("morton", placement)]
        random = results[("random", placement)]
        # The Morton advantage survives both placements (it is temporal).
        assert random / morton > 1.2, (placement, morton, random)
