"""Tests for trace recording and replay."""

import pytest

from repro.octree.instrumented import recorded_octree, streaming_octree
from repro.simcache.cost_model import jetson_tx2_hierarchy
from repro.simcache.trace import TraceRecorder, replay_trace


class TestRecorder:
    def test_records_in_order(self):
        recorder = TraceRecorder()
        for node_id in (3, 1, 4, 1, 5):
            recorder.record(node_id)
        assert recorder.trace == [3, 1, 4, 1, 5]
        assert len(recorder) == 5

    def test_pause_resume(self):
        recorder = TraceRecorder()
        recorder.record(1)
        recorder.pause()
        recorder.record(2)
        recorder.resume()
        recorder.record(3)
        assert recorder.trace == [1, 3]

    def test_clear(self):
        recorder = TraceRecorder()
        recorder.record(1)
        recorder.clear()
        assert recorder.trace == []


class TestReplay:
    def test_empty_trace(self):
        result = replay_trace([])
        assert result.accesses == 0
        assert result.total_cycles == 0.0

    def test_repeated_node_hits(self):
        result = replay_trace([0, 0, 0, 0])
        assert result.accesses == 4
        # First access misses to DRAM, the rest hit L1.
        assert result.total_cycles == pytest.approx(180.0 + 3 * 4.0)

    def test_custom_hierarchy(self):
        hierarchy = jetson_tx2_hierarchy()
        result = replay_trace([1, 2, 3], hierarchy=hierarchy)
        assert result.accesses == 3
        assert hierarchy.accesses == 3  # the given hierarchy was used

    def test_locality_lowers_cost(self):
        # Same multiset of accesses, different order: the grouped order
        # must cost no more than the interleaved one under LRU.
        far_apart = [i * 1000 for i in range(64)]
        interleaved = far_apart * 8
        grouped = [a for a in far_apart for _ in range(8)]
        assert (
            replay_trace(grouped).total_cycles
            <= replay_trace(interleaved).total_cycles
        )


class TestInstrumentedHelpers:
    def test_recorded_octree_captures_updates(self):
        tree, recorder = recorded_octree(resolution=0.1, depth=5)
        tree.update_node((1, 1, 1), True)
        assert len(recorder.trace) == tree.node_visits

    def test_streaming_octree_costs_accesses(self):
        tree, hierarchy = streaming_octree(resolution=0.1, depth=5)
        tree.update_node((1, 1, 1), True)
        assert hierarchy.accesses == tree.node_visits
        assert hierarchy.total_cycles > 0
