"""Tests for multi-resolution (depth-limited) octree queries."""

import pytest

from repro.octree.tree import OccupancyOctree

DEPTH = 6


def make_tree():
    return OccupancyOctree(resolution=0.1, depth=DEPTH)


class TestSearchAtLevel:
    def test_level_zero_equals_search(self):
        tree = make_tree()
        tree.update_node((5, 6, 7), True)
        assert tree.search_at_level((5, 6, 7), 0) == tree.search((5, 6, 7))

    def test_inner_level_reports_max_of_block(self):
        tree = make_tree()
        tree.update_node((0, 0, 0), True)  # occupied
        tree.update_node((0, 0, 1), False)  # free sibling
        # The level-1 block containing both reports the max: occupied.
        value = tree.search_at_level((0, 0, 0), 1)
        assert value == pytest.approx(tree.params.delta_occupied)
        # Any key inside the block maps to the same node.
        assert tree.search_at_level((1, 1, 1), 1) == pytest.approx(value)

    def test_root_level_summarises_whole_map(self):
        tree = make_tree()
        tree.update_node((3, 3, 3), True)
        assert tree.search_at_level((0, 0, 0), DEPTH) == pytest.approx(
            tree.params.delta_occupied
        )

    def test_unknown_block(self):
        tree = make_tree()
        tree.update_node((0, 0, 0), True)
        # A far octant has no node at level 1.
        assert tree.search_at_level((60, 60, 60), 1) is None

    def test_empty_tree(self):
        assert make_tree().search_at_level((0, 0, 0), 2) is None

    def test_pruned_block_answers_at_any_level(self):
        tree = make_tree()
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    for _ in range(20):
                        tree.update_node((x, y, z), True)
        for level in range(DEPTH + 1):
            value = tree.search_at_level((0, 0, 0), level)
            assert value == pytest.approx(tree.params.max_occ)

    def test_level_validation(self):
        tree = make_tree()
        with pytest.raises(ValueError):
            tree.search_at_level((0, 0, 0), -1)
        with pytest.raises(ValueError):
            tree.search_at_level((0, 0, 0), DEPTH + 1)

    def test_conservative_summary_property(self):
        """Block occupancy >= any member voxel's occupancy."""
        tree = make_tree()
        updates = [((x, y, z), (x + y + z) % 3 != 0) for x in range(4) for y in range(4) for z in range(4)]
        tree.update_batch(updates)
        for key, _occ in updates:
            leaf = tree.search(key)
            block = tree.search_at_level(key, 2)
            assert block is not None and leaf is not None
            assert block >= leaf - 1e-12
