"""Structured JSON logging and its span-id correlation with telemetry."""

import io
import json
import logging

from repro.obs.logging import configure_json_logging, service_logger
from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.tracer import Tracer, current_span_info


def make_logger(name):
    stream = io.StringIO()
    logger = logging.getLogger(name)
    logger.propagate = False
    handler = configure_json_logging(stream=stream, logger=logger)
    return stream, logger, handler


def emitted(stream):
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestJsonRecords:
    def test_basic_record_shape(self):
        stream, logger, handler = make_logger("test.obs.basic")
        try:
            logger.info("shard recovered", extra={"shard": 3, "replayed": 17})
        finally:
            logger.removeHandler(handler)
        (record,) = emitted(stream)
        assert record["message"] == "shard recovered"
        assert record["level"] == "INFO"
        assert record["logger"] == "test.obs.basic"
        assert record["shard"] == 3
        assert record["replayed"] == 17
        assert isinstance(record["ts"], float)
        assert "thread" in record

    def test_non_json_extras_fall_back_to_repr(self):
        stream, logger, handler = make_logger("test.obs.repr")
        try:
            logger.info("odd payload", extra={"payload": {1, 2}})
        finally:
            logger.removeHandler(handler)
        (record,) = emitted(stream)
        assert record["payload"] == repr({1, 2})

    def test_exceptions_are_rendered(self):
        stream, logger, handler = make_logger("test.obs.exc")
        try:
            try:
                raise ValueError("boom")
            except ValueError:
                logger.warning("it failed", exc_info=True)
        finally:
            logger.removeHandler(handler)
        (record,) = emitted(stream)
        assert "ValueError: boom" in record["exc"]

    def test_reconfiguring_replaces_rather_than_duplicates(self):
        stream = io.StringIO()
        logger = logging.getLogger("test.obs.dedupe")
        logger.propagate = False
        configure_json_logging(stream=stream, logger=logger)
        handler = configure_json_logging(stream=stream, logger=logger)
        try:
            logger.info("once")
        finally:
            logger.removeHandler(handler)
        assert len(emitted(stream)) == 1


class TestSpanCorrelation:
    def test_records_inside_a_span_carry_its_id(self):
        stream, logger, handler = make_logger("test.obs.span")
        tracer = Tracer(sinks=[RingBufferSink(capacity=16)])
        try:
            with tracer.span("shard.apply", category="service"):
                span_id = current_span_info()[0]
                logger.info("inside")
        finally:
            logger.removeHandler(handler)
        (record,) = emitted(stream)
        assert record["span_id"] == span_id
        assert record["span_name"] == "shard.apply"
        assert record["span_category"] == "service"

    def test_nested_spans_stamp_the_innermost(self):
        stream, logger, handler = make_logger("test.obs.nested")
        tracer = Tracer(sinks=[RingBufferSink(capacity=16)])
        try:
            with tracer.span("outer", category="service"):
                with tracer.span("inner", category="octree"):
                    logger.info("deep")
                logger.info("shallow")
        finally:
            logger.removeHandler(handler)
        deep, shallow = emitted(stream)
        assert deep["span_name"] == "inner"
        assert deep["span_category"] == "octree"
        assert shallow["span_name"] == "outer"
        assert deep["span_id"] != shallow["span_id"]

    def test_records_outside_any_span_have_no_stamp(self):
        stream, logger, handler = make_logger("test.obs.nospan")
        try:
            logger.info("bare")
        finally:
            logger.removeHandler(handler)
        (record,) = emitted(stream)
        assert "span_id" not in record
        assert "span_name" not in record

    def test_service_logger_is_the_repro_service_channel(self):
        assert service_logger().name == "repro.service"
