"""The OctoCache voxel cache (paper §4.2–4.3).

A flattened, table-based cache placed in front of the octree.  It holds
*accumulated* occupancy values — a cache cell is authoritative for its voxel
while resident — so queries can be answered from the cache alone on a hit
and from the octree on a miss, reproducing vanilla OctoMap's results
exactly (the paper's query-consistency property).

Structure: an array of ``w`` buckets, each a vector of cells
``(voxel key, accumulated log-odds)``.  A voxel maps to bucket
``index(v) % w``, where ``index`` is either a generic hash (strawman,
§4.2) or the Morton code of the voxel's coordinates (§4.3).  Eviction
scans buckets sequentially and drops the earliest-inserted cells of any
bucket holding more than ``τ`` cells; with Morton indexing the evicted
batch therefore comes out (locally) in Morton order — the insertion order
the paper proves optimal for the octree.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.core.config import CacheConfig
from repro.core.morton import MAX_COORD_BITS, morton_encode3
from repro.octree.key import VoxelKey, validate_key
from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree

__all__ = ["VoxelCache", "CacheStats", "EvictedCell", "aggregate_cache_stats"]


def aggregate_cache_stats(stats_dicts: "Iterable[dict]") -> "dict[str, float]":
    """Fold several ``VoxelCache.stats_dict()`` snapshots into one.

    Counters add; the ratios are recomputed from the summed counters (a
    mean of per-shard hit ratios would weight an idle shard equally with
    a loaded one).  Used by the service layer to report a fleet-wide
    Fig-23 hit ratio next to the per-shard ones.
    """
    totals: "dict[str, float]" = {
        "hits": 0,
        "misses": 0,
        "insertions": 0,
        "evictions": 0,
        "octree_fills": 0,
        "query_hits": 0,
        "query_misses": 0,
        "resident_voxels": 0,
    }
    for stats in stats_dicts:
        for key in totals:
            totals[key] += stats.get(key, 0)
    totals["hit_ratio"] = (
        totals["hits"] / totals["insertions"] if totals["insertions"] else 0.0
    )
    return totals

#: An evicted voxel: key plus its accumulated log-odds occupancy, destined
#: to overwrite the octree's copy.  (Handed out as the cache's internal
#: two-element cells — unpack like a tuple.)
EvictedCell = Tuple[VoxelKey, float]


@dataclass
class CacheStats:
    """Counters accumulated over the cache's lifetime.

    ``hits``/``misses`` count insert-path lookups (the paper's cache hit
    ratio, §6.2.3).  ``query_hits``/``query_misses`` count the read path.
    ``octree_fills`` counts misses whose voxel existed in the octree and
    was pulled into the cache.
    """

    hits: int = 0
    misses: int = 0
    octree_fills: int = 0
    evicted: int = 0
    query_hits: int = 0
    query_misses: int = 0

    @property
    def insertions(self) -> int:
        """Total insert-path lookups."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Insert-path hit ratio; 0.0 when nothing was inserted."""
        total = self.insertions
        return self.hits / total if total else 0.0


class VoxelCache:
    """Bucketed voxel cache with accumulated-occupancy cells.

    Args:
        config: cache shape and indexing policy.
        params: occupancy-update parameters (shared with the backend tree).
        backend: the octree consulted on a miss to seed the accumulated
            value (and to serve read misses).  May be ``None`` for a
            standalone cache, in which case misses start from the
            occupancy threshold.
    """

    def __init__(
        self,
        config: CacheConfig,
        params: Optional[OccupancyParams] = None,
        backend: Optional[OccupancyOctree] = None,
    ) -> None:
        self.config = config
        self.params = params or (backend.params if backend else OccupancyParams())
        self.backend = backend
        self.stats = CacheStats()
        self._mask = config.num_buckets - 1
        # A cell is a mutable ``[key, value]`` pair shared between its
        # bucket and ``_cell_index`` (Morton code → cell), so residency
        # checks are one dict probe instead of a bucket scan and value
        # updates hit both views at once.  Bucket position still encodes
        # insertion order — eviction semantics are unchanged.
        self._buckets: List[List[List]] = [
            [] for _ in range(config.num_buckets)
        ]
        self._cell_index: Dict[int, List] = {}
        # Bucket indices that may exceed τ, updated on every append so
        # eviction visits only candidate buckets instead of scanning the
        # whole array (the scan itself dominated eviction cost).
        self._overfull: set = set()
        self._resident = 0
        # Keys are validated at the insert/query boundary against the
        # backend map's bounds (or the encoder's limit for a standalone
        # cache) so out-of-range keys fail with the key and bounds named
        # rather than a bare encoder error from ``bucket_index``.
        self._key_depth = backend.depth if backend is not None else MAX_COORD_BITS
        self._key_limit = 1 << self._key_depth

    # ------------------------------------------------------------------
    # Indexing.
    # ------------------------------------------------------------------

    def bucket_index(self, key: VoxelKey) -> int:
        """Bucket slot for ``key``: ``M(v) & (w-1)`` or ``hash(v) & (w-1)``."""
        if self.config.use_morton_indexing:
            return morton_encode3(*key) & self._mask
        return hash(key) & self._mask

    # ------------------------------------------------------------------
    # Insert path (paper §4.2.1).
    # ------------------------------------------------------------------

    def insert(self, key: VoxelKey, occupied: bool) -> float:
        """Record one occupied/free observation for the voxel at ``key``.

        On a hit the resident cell's accumulated value receives the clamped
        log-odds update.  On a miss the starting value is fetched from the
        backend octree if the voxel exists there, else the occupancy
        threshold; the updated cell is appended to the bucket (buckets may
        exceed τ until the next eviction).  Returns the voxel's new
        accumulated log-odds value.
        """
        limit = self._key_limit
        if not (0 <= key[0] < limit and 0 <= key[1] < limit and 0 <= key[2] < limit):
            validate_key(key, self._key_depth)
        code = morton_encode3(key[0], key[1], key[2])
        cell = self._cell_index.get(code)
        if cell is not None:
            new_value = self.params.update(cell[1], occupied)
            cell[1] = new_value
            self.stats.hits += 1
            return new_value
        self.stats.misses += 1
        base = None
        if self.backend is not None:
            base = self.backend.search(key)
        if base is None:
            base = self.params.threshold
        else:
            self.stats.octree_fills += 1
        new_value = self.params.update(base, occupied)
        cell = [key, new_value]
        if self.config.use_morton_indexing:
            index = code & self._mask
        else:
            index = hash(key) & self._mask
        bucket = self._buckets[index]
        bucket.append(cell)
        if len(bucket) > self.config.bucket_threshold:
            self._overfull.add(index)
        self._cell_index[code] = cell
        self._resident += 1
        return new_value

    def insert_batch(self, items: Iterable[Tuple[VoxelKey, bool]]) -> None:
        """Insert a sequence of ``(key, occupied)`` observations."""
        insert = self.insert
        for key, occupied in items:
            insert(key, occupied)

    def update_batch_bulk(self, keys: np.ndarray, occupied: np.ndarray) -> None:
        """Apply a whole observation batch in grouped array passes.

        ``keys`` is ``(M, 3)`` int64 and ``occupied`` ``(M,)`` bool — the
        array form of the stream :meth:`insert_batch` consumes one tuple
        at a time.  The batch is grouped by unique voxel
        (:func:`repro.kernels.dedup.group_observations`), residency is
        probed once per *voxel* through ``_cell_index``, miss bases come
        from one shared-path octree sweep
        (:meth:`~repro.octree.tree.OccupancyOctree.search_batch`), and the
        per-voxel observation runs are folded with
        :func:`repro.kernels.logodds.fold_logodds`.

        Bit-exact with the scalar loop: same bases, the same clamped
        update sequence per voxel, new cells appended in first-touch
        order (= the scalar append order), and identical
        hit/miss/octree-fill counters.
        """
        from repro.kernels.dedup import group_observations
        from repro.kernels.logodds import fold_logodds

        total = int(keys.shape[0])
        if total == 0:
            return
        limit = self._key_limit
        bad = (keys < 0) | (keys >= limit)
        if bad.any():
            index = int(np.argmax(bad.any(axis=1)))
            validate_key(tuple(keys[index].tolist()), self._key_depth)
        groups = group_observations(keys, occupied)
        code_list = groups.codes.tolist()
        cell_get = self._cell_index.get

        num_groups = len(code_list)
        bases = np.empty(num_groups, dtype=np.float64)
        threshold = self.params.threshold
        octree_fills = 0
        cells = []
        cells_append = cells.append
        miss_positions = []
        miss_append = miss_positions.append
        for group, code in enumerate(code_list):
            cell = cell_get(code)
            cells_append(cell)
            if cell is not None:
                bases[group] = cell[1]
            else:
                miss_append(group)
        if miss_positions:
            if self.backend is not None:
                found = self.backend.search_batch(groups.keys[miss_positions])
                for group, value in zip(miss_positions, found):
                    if value is None:
                        bases[group] = threshold
                    else:
                        bases[group] = value
                        octree_fills += 1
            else:
                bases[miss_positions] = threshold

        finals = fold_logodds(
            bases, groups.occ_sorted, groups.seg_starts, groups.counts, self.params
        ).tolist()

        # Hits first (no per-group index bookkeeping), then the misses by
        # their recorded positions — the appends still happen in group
        # (= first-touch = scalar insertion) order.
        for cell, final in zip(cells, finals):
            if cell is not None:
                cell[1] = final
        new_cells = len(miss_positions)
        if miss_positions:
            buckets = self._buckets
            mask = self._mask
            bucket_threshold = self.config.bucket_threshold
            use_morton = self.config.use_morton_indexing
            cell_index = self._cell_index
            overfull_add = self._overfull.add
            key_list = groups.keys.tolist()
            for group in miss_positions:
                row = key_list[group]
                key = (row[0], row[1], row[2])
                cell = [key, finals[group]]
                code = code_list[group]
                if use_morton:
                    index = code & mask
                else:
                    index = hash(key) & mask
                bucket = buckets[index]
                bucket.append(cell)
                if len(bucket) > bucket_threshold:
                    overfull_add(index)
                cell_index[code] = cell
        self._resident += new_cells
        stats = self.stats
        stats.misses += new_cells
        stats.hits += total - new_cells
        stats.octree_fills += octree_fills

    # ------------------------------------------------------------------
    # Read path.
    # ------------------------------------------------------------------

    def lookup(self, key: VoxelKey) -> Optional[float]:
        """Accumulated log-odds for ``key`` from the cache alone.

        Returns ``None`` on a cache miss *without* consulting the backend
        (use :meth:`query` for the consistent two-level read).
        """
        limit = self._key_limit
        if not (0 <= key[0] < limit and 0 <= key[1] < limit and 0 <= key[2] < limit):
            validate_key(key, self._key_depth)
        cell = self._cell_index.get(morton_encode3(key[0], key[1], key[2]))
        if cell is not None:
            return cell[1]
        return None

    def query(self, key: VoxelKey) -> Optional[float]:
        """Consistent occupancy read: cache on hit, octree on miss.

        Matches vanilla OctoMap's answer for every voxel (the cache cell
        holds the fully accumulated value; evicted voxels overwrite the
        octree), which is the paper's query-consistency guarantee.
        """
        value = self.lookup(key)
        if value is not None:
            self.stats.query_hits += 1
            return value
        self.stats.query_misses += 1
        if self.backend is not None:
            return self.backend.search(key)
        return None

    def is_occupied(self, key: VoxelKey) -> Optional[bool]:
        """Occupancy decision for ``key``; ``None`` when unknown."""
        value = self.query(key)
        if value is None:
            return None
        return self.params.is_occupied(value)

    # ------------------------------------------------------------------
    # Eviction (paper §4.2.2).
    # ------------------------------------------------------------------

    def evict(self) -> List[EvictedCell]:
        """Trim every bucket to τ cells; return the evicted batch.

        Buckets are scanned in index order and each over-full bucket drops
        its *earliest inserted* cells.  With Morton indexing the batch is
        emitted in bucket order = ``Morton % w`` order, the paper's
        cache-enabled approximation of the globally optimal Morton
        sequence (exact whenever resident codes span less than ``w``).
        """
        threshold = self.config.bucket_threshold
        cell_index = self._cell_index
        buckets = self._buckets
        evicted: List[EvictedCell] = []
        for index in sorted(self._overfull):
            bucket = buckets[index]
            overflow = len(bucket) - threshold
            if overflow > 0:
                dropped = bucket[:overflow]
                for cell_key, _value in dropped:
                    del cell_index[morton_encode3(*cell_key)]
                evicted.extend(dropped)
                buckets[index] = bucket[overflow:]
        self._overfull.clear()
        self._resident -= len(evicted)
        self.stats.evicted += len(evicted)
        return evicted

    def iter_evict(self) -> "Iterable[List[EvictedCell]]":
        """Streaming variant of :meth:`evict`: yields per-bucket batches.

        The parallel pipeline pushes each yielded chunk straight into the
        shared buffer, so thread 2's octree update overlaps the remainder
        of the eviction scan — the readerwriterqueue behaviour of §4.4.
        Chunk order equals :meth:`evict`'s output order.
        """
        threshold = self.config.bucket_threshold
        cell_index = self._cell_index
        buckets = self._buckets
        overfull = self._overfull
        for index in sorted(overfull):
            # Dropped per index (not cleared up front) so abandoning the
            # generator mid-stream keeps the remaining candidates tracked.
            overfull.discard(index)
            bucket = buckets[index]
            overflow = len(bucket) - threshold
            if overflow > 0:
                chunk = bucket[:overflow]
                for cell_key, _value in chunk:
                    del cell_index[morton_encode3(*cell_key)]
                buckets[index] = bucket[overflow:]
                self._resident -= len(chunk)
                self.stats.evicted += len(chunk)
                yield chunk

    def flush(self) -> List[EvictedCell]:
        """Evict *everything* (end of mapping session / final octree sync)."""
        evicted: List[EvictedCell] = []
        for index, bucket in enumerate(self._buckets):
            evicted.extend(bucket)
            self._buckets[index] = []
        self._cell_index.clear()
        self._overfull.clear()
        self._resident = 0
        self.stats.evicted += len(evicted)
        return evicted

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def resident_voxels(self) -> int:
        """Number of cells currently held across all buckets."""
        return self._resident

    #: Cumulative lifetime counters, exposed directly so callers (the
    #: telemetry layer, service dashboards) never reach through ``stats``.

    @property
    def hits(self) -> int:
        """Cumulative insert-path cache hits."""
        return self.stats.hits

    @property
    def misses(self) -> int:
        """Cumulative insert-path cache misses."""
        return self.stats.misses

    @property
    def evictions(self) -> int:
        """Cumulative evicted cells (``evict``/``iter_evict``/``flush``)."""
        return self.stats.evicted

    def stats_dict(self) -> "dict[str, float]":
        """One JSON-able snapshot of every lifetime counter.

        Covers both paths — insert (``hits``/``misses``/``hit_ratio``,
        the paper's Fig. 23 metric) and read (``query_hits``/
        ``query_misses``) — plus eviction and residency, so a single call
        feeds a metrics report without poking at :class:`CacheStats`.
        """
        stats = self.stats
        return {
            "hits": stats.hits,
            "misses": stats.misses,
            "insertions": stats.insertions,
            "hit_ratio": stats.hit_ratio,
            "evictions": stats.evicted,
            "octree_fills": stats.octree_fills,
            "query_hits": stats.query_hits,
            "query_misses": stats.query_misses,
            "resident_voxels": self._resident,
        }

    def iter_cells(self) -> Iterable[Tuple[VoxelKey, float]]:
        """Yield every resident ``(key, accumulated value)`` in bucket order.

        Read-only snapshot walk used by the service layer: a resident cell
        is authoritative for its voxel, so overlaying these cells on the
        backend octree reproduces the map's current answers without
        flushing (the global-snapshot export of the sharded service).
        Callers must not mutate the cache mid-iteration.
        """
        for bucket in self._buckets:
            yield from bucket

    def memory_bytes(self) -> int:
        """Current footprint using the paper's 7-bytes-per-cell accounting."""
        from repro.core.config import CELL_BYTES

        return self._resident * CELL_BYTES

    def recount_resident(self) -> int:
        """Resident cells recounted by walking every bucket (exact path).

        Must always equal :attr:`resident_voxels` (the incrementally
        maintained counter) — the memsight drift gate checks exactly that.
        """
        return sum(len(bucket) for bucket in self._buckets)

    def memory_breakdown(self, exact: bool = False):
        """Hierarchical footprint: resident cells + index + bucket array.

        With ``exact=True`` the resident count comes from a full bucket
        walk instead of the incremental ``_resident`` counter; the two
        reports must agree byte-for-byte (``MemoryReport.drift_bytes``).
        """
        from repro.core.config import CELL_BYTES
        from repro.memsight.costs import BUCKET_SLOT_BYTES, INDEX_ENTRY_BYTES
        from repro.memsight.report import MemoryReport

        resident = self.recount_resident() if exact else self._resident
        index_entries = len(self._cell_index)
        num_buckets = self.config.num_buckets
        return MemoryReport(
            "cache",
            children=[
                MemoryReport(
                    "resident_cells", resident * CELL_BYTES, resident
                ),
                MemoryReport(
                    "morton_index",
                    index_entries * INDEX_ENTRY_BYTES,
                    index_entries,
                ),
                MemoryReport(
                    "buckets", num_buckets * BUCKET_SLOT_BYTES, num_buckets
                ),
            ],
        )

    def bucket_sizes(self) -> List[int]:
        """Cell count per bucket (for occupancy/collision diagnostics)."""
        return [len(bucket) for bucket in self._buckets]

    def collision_histogram(self) -> "dict[int, int]":
        """Histogram of bucket occupancies: size → number of buckets.

        The paper's τ discussion (§6.2.4) rests on most buckets holding
        ≤4 cells when the cache is sized 3–4× the batch; this is the
        direct measurement of that claim.
        """
        histogram: dict = {}
        for bucket in self._buckets:
            size = len(bucket)
            histogram[size] = histogram.get(size, 0) + 1
        return histogram

    def occupancy_quantiles(self) -> Tuple[float, float, float]:
        """(median, p90, max) of nonzero bucket occupancies (0s excluded).

        Both quantiles use the nearest-rank definition: the p-th quantile
        of ``n`` sorted values is the value at 1-based rank ``ceil(p*n)``
        — so the p90 of 10 values is the 9th, not the maximum, and the
        median of an even-length list is the lower middle.
        """
        sizes = sorted(len(b) for b in self._buckets if b)
        if not sizes:
            return (0.0, 0.0, 0.0)

        def nearest_rank(fraction: float) -> float:
            rank = math.ceil(fraction * len(sizes))
            return float(sizes[max(rank, 1) - 1])

        return (nearest_rank(0.5), nearest_rank(0.9), float(sizes[-1]))

    def __contains__(self, key: VoxelKey) -> bool:
        return self.lookup(key) is not None

    def __len__(self) -> int:
        return self._resident
