"""Tests for deterministic fault injection."""

import time

import pytest

from repro.resilience.faults import (
    FAULT_SITES,
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
)


class TestSpecValidation:
    def test_unknown_site(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            FaultSpec(site="warp.core")

    def test_unknown_mode(self):
        with pytest.raises(ValueError, match="unknown fault mode"):
            FaultSpec(site="shard.apply", mode="explode")

    def test_negative_after(self):
        with pytest.raises(ValueError, match="after"):
            FaultSpec(site="shard.apply", after=-1)

    def test_zero_times(self):
        with pytest.raises(ValueError, match="times"):
            FaultSpec(site="shard.apply", times=0)

    def test_negative_delay(self):
        with pytest.raises(ValueError, match="delay"):
            FaultSpec(site="shard.apply", mode="delay", delay=-0.1)

    def test_all_sites_accepted(self):
        for site in FAULT_SITES:
            FaultSpec(site=site)


class TestPlanMatching:
    def test_empty_plan_is_inert(self):
        plan = FaultPlan()
        for _ in range(100):
            assert plan.check("shard.apply", shard=0) is None
        assert plan.fired == []

    def test_error_raises_injected_fault(self):
        plan = FaultPlan([FaultSpec(site="shard.apply", mode="error")])
        with pytest.raises(InjectedFault):
            plan.check("shard.apply")

    def test_crash_is_a_fault_subclass(self):
        plan = FaultPlan([FaultSpec(site="shard.apply", mode="crash")])
        with pytest.raises(InjectedCrash):
            plan.check("shard.apply")
        assert issubclass(InjectedCrash, InjectedFault)

    def test_after_and_times_window(self):
        plan = FaultPlan(
            [FaultSpec(site="shard.apply", mode="error", after=1, times=2)]
        )
        assert plan.check("shard.apply") is None  # call 1: skipped
        with pytest.raises(InjectedFault):
            plan.check("shard.apply")  # call 2: fires
        with pytest.raises(InjectedFault):
            plan.check("shard.apply")  # call 3: fires
        assert plan.check("shard.apply") is None  # call 4: spent
        assert plan.fired_at("shard.apply") == 2

    def test_shard_filter(self):
        plan = FaultPlan(
            [FaultSpec(site="shard.apply", mode="error", shard=1)]
        )
        assert plan.check("shard.apply", shard=0) is None
        with pytest.raises(InjectedFault):
            plan.check("shard.apply", shard=1)

    def test_site_filter(self):
        plan = FaultPlan([FaultSpec(site="queue.enqueue", mode="error")])
        assert plan.check("shard.apply") is None
        with pytest.raises(InjectedFault):
            plan.check("queue.enqueue")

    def test_drop_mode(self):
        plan = FaultPlan([FaultSpec(site="queue.enqueue", mode="drop")])
        assert plan.check("queue.enqueue", shard=3) == "drop"
        assert plan.check("queue.enqueue", shard=3) is None

    def test_delay_mode_sleeps(self):
        plan = FaultPlan(
            [FaultSpec(site="octree.update", mode="delay", delay=0.02)]
        )
        start = time.perf_counter()
        assert plan.check("octree.update") is None
        assert time.perf_counter() - start >= 0.02

    def test_fired_log_records_site_mode_shard(self):
        plan = FaultPlan([FaultSpec(site="shard.apply", mode="crash")])
        with pytest.raises(InjectedCrash):
            plan.check("shard.apply", shard=2)
        assert plan.fired == [
            {"site": "shard.apply", "mode": "crash", "shard": 2, "ordinal": 1}
        ]

    def test_message_carried(self):
        plan = FaultPlan(
            [FaultSpec(site="shard.apply", mode="error", message="boom")]
        )
        with pytest.raises(InjectedFault, match="boom"):
            plan.check("shard.apply")
