"""One shared workload loader for every bench command.

``serve-bench``, ``trace-bench``, ``chaos-bench``, and ``perf-bench``
all drive a named procedural dataset's scan stream through some layer of
the system.  They used to each re-implement the same three lines
(construct the dataset, materialise the scans, truncate); this helper is
that setup, in one place, so the bench commands stay in lock-step about
what "the workload" means (pose scale, truncation semantics, sensor
range).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.datasets.generator import ScanDataset, make_dataset

__all__ = ["BenchWorkload", "load_bench_workload"]


class BenchWorkload:
    """A dataset plus its materialised (optionally truncated) scan list.

    Attributes:
        dataset: the constructed :class:`ScanDataset`.
        scans: the scan stream, materialised so multiple phases (service
            run, serial verification rebuild) see the identical clouds.
    """

    __slots__ = ("dataset", "scans")

    def __init__(self, dataset: ScanDataset, scans: List) -> None:
        self.dataset = dataset
        self.scans = scans

    @property
    def max_range(self) -> float:
        """The dataset sensor's range clamp (every pipeline needs it)."""
        return self.dataset.sensor.max_range

    @property
    def name(self) -> str:
        return self.dataset.name

    def __len__(self) -> int:
        return len(self.scans)

    def __iter__(self):
        return iter(self.scans)


def load_bench_workload(
    dataset_name: str,
    ray_scale: float = 0.5,
    max_batches: Optional[int] = None,
    pose_scale: float = 1.0,
) -> BenchWorkload:
    """Build the bench workload every ``*-bench`` command drives.

    Args:
        dataset_name: one of the paper's dataset generators
            (``fr079_corridor``, ``freiburg_campus``, ``new_college``).
        ray_scale: ray-count scale factor (cheaper smoke runs).
        max_batches: keep only the first N scans (``None`` = all).
        pose_scale: trajectory scale factor.
    """
    dataset = make_dataset(
        dataset_name, pose_scale=pose_scale, ray_scale=ray_scale
    )
    scans = list(dataset.scans())
    if max_batches is not None:
        scans = scans[:max_batches]
    return BenchWorkload(dataset, scans)
