"""Ablation: path-caching insertion makes the Morton win a *wall-clock* win.

The Figure-10 effect is a hardware-cache effect that pure-Python timing
hides (DESIGN.md §1).  The path-caching inserter re-materialises it in
software: descents restart from the LCA with the previous key, so the
work saved per insertion is exactly what the locality functional ``F``
counts — and Morton order should now beat random order in *measured
Python seconds*, closing the loop on the modeled results.
"""

import random
import time

from repro.analysis.report import format_table
from repro.core.locality import locality_cost_keys
from repro.core.morton import morton_encode3
from repro.octree.pathcache import PathCachingInserter
from repro.octree.tree import OccupancyOctree
from repro.sensor.scaninsert import trace_scan

from .conftest import BENCH_DEPTH

RESOLUTION = 0.1
TARGET_KEYS = 25_000


def corridor_keys(dataset):
    keys = []
    for cloud in dataset.scans():
        batch = trace_scan(
            cloud, RESOLUTION, BENCH_DEPTH, max_range=dataset.sensor.max_range
        )
        keys.extend(key for key, _occ in batch.observations)
        if len(keys) >= TARGET_KEYS:
            break
    return keys[:TARGET_KEYS]


def insert_plain(ordering):
    tree = OccupancyOctree(resolution=RESOLUTION, depth=BENCH_DEPTH)
    start = time.perf_counter()
    for key in ordering:
        tree.update_node(key, True)
    return time.perf_counter() - start, tree


def insert_cached(ordering):
    tree = OccupancyOctree(resolution=RESOLUTION, depth=BENCH_DEPTH)
    start = time.perf_counter()
    with PathCachingInserter(tree) as inserter:
        for key in ordering:
            inserter.insert(key, True)
    elapsed = time.perf_counter() - start
    return elapsed, tree, inserter.descent_steps


def test_ablation_path_caching(benchmark, corridor, emit):
    keys = corridor_keys(corridor)
    orderings = {
        "morton": sorted(keys, key=lambda k: morton_encode3(*k)),
        "original": list(keys),
        "random": random.Random(0).sample(keys, len(keys)),
    }

    def run():
        results = {}
        for name, ordering in orderings.items():
            plain_seconds, plain_tree = insert_plain(ordering)
            cached_seconds, cached_tree, steps = insert_cached(ordering)
            assert cached_tree.num_nodes == plain_tree.num_nodes
            results[name] = {
                "F": locality_cost_keys(ordering, BENCH_DEPTH),
                "plain": plain_seconds,
                "cached": cached_seconds,
                "steps": steps,
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            name,
            data["F"],
            f"{data['plain']:.2f}",
            f"{data['cached']:.2f}",
            f"{data['plain'] / data['cached']:.2f}x",
            data["steps"],
        ]
        for name, data in results.items()
    ]
    emit(
        "ablation_path_caching",
        format_table(
            [
                "ordering",
                "F(S)",
                "plain insert(s)",
                "path-cached(s)",
                "speedup",
                "descent steps",
            ],
            rows,
        ),
    )

    morton = results["morton"]
    rand = results["random"]
    # Wall-clock: under path caching, Morton beats random in real seconds
    # (the hardware effect, reproduced in software).
    assert morton["cached"] < 0.8 * rand["cached"]
    # Work: descent steps track F exactly in ordering.
    assert morton["steps"] < rand["steps"]
    assert morton["F"] < rand["F"]
    # Path caching never loses badly even on hostile orderings.
    assert rand["cached"] < 1.4 * rand["plain"]