"""Inter-batch voxel overlap (Figures 7–8).

For each update batch, the overlap ratio is the fraction of its distinct
voxels already touched by the previous ``window`` batches.  The paper's
Figure 8 plots the CDF over batches: two datasets exceed 80% overlap,
the sparse campus dataset drops to ~40%.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Sequence, Set, Tuple

import numpy as np

from repro.datasets.generator import ScanDataset
from repro.octree.key import VoxelKey
from repro.sensor.scaninsert import trace_scan

__all__ = ["overlap_ratios", "overlap_cdf"]


def overlap_ratios(
    dataset: ScanDataset,
    resolution: float,
    depth: int = 16,
    window: int = 3,
) -> List[float]:
    """Per-batch overlap with the previous ``window`` batches.

    The first batch has no predecessors and is skipped (matching the
    paper's "between 3 update batches" methodology).
    """
    if window < 1:
        raise ValueError(f"window must be >= 1, got {window}")
    history: Deque[Set[VoxelKey]] = deque(maxlen=window)
    ratios: List[float] = []
    for cloud in dataset.scans():
        batch = trace_scan(
            cloud, resolution, depth, max_range=dataset.sensor.max_range
        )
        unique = batch.unique_keys()
        if history and unique:
            previous: Set[VoxelKey] = set().union(*history)
            ratios.append(len(unique & previous) / len(unique))
        history.append(unique)
    return ratios


def overlap_cdf(
    ratios: Sequence[float], grid: Sequence[float] = tuple(np.linspace(0, 1, 21))
) -> List[Tuple[float, float]]:
    """Empirical CDF of overlap ratios on a grid (Figure 8's curves)."""
    values = np.sort(np.asarray(ratios, dtype=np.float64))
    cdf: List[Tuple[float, float]] = []
    for threshold in grid:
        fraction = float(np.searchsorted(values, threshold, side="right")) / max(
            len(values), 1
        )
        cdf.append((float(threshold), fraction))
    return cdf
