"""Figure 21: construction with the -RT pipelines.

OctoMap-RT removes intra-batch duplicates during ray tracing; OctoCache-RT
puts the cache behind it, so its wins come from *inter-batch* overlap and
Morton-ordered eviction.  Paper: consistent improvement, up to 2.51× at
high resolution, parallel adding ~34% at 0.1 m.  Asserted shape:
OctoCache-RT matches or beats OctoMap-RT everywhere and wins clearly at
the finest resolution on the high-overlap datasets.
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

RESOLUTIONS = {
    "fr079_corridor": (0.1, 0.2),
    "new_college": (0.2, 0.4),
}


def test_fig21_construction_rt(benchmark, corridor, college, emit):
    datasets = [corridor, college]  # the high-overlap datasets

    def run():
        results = []
        for dataset in datasets:
            for resolution in RESOLUTIONS[dataset.name]:
                config = suggest_cache_config(dataset, resolution, BENCH_DEPTH)
                vanilla = run_construction(
                    dataset,
                    resolution,
                    pipeline_factory("octomap_rt", dataset),
                    depth=BENCH_DEPTH,
                    max_batches=BENCH_MAX_BATCHES,
                )
                cached = run_construction(
                    dataset,
                    resolution,
                    pipeline_factory("octocache_rt", dataset, cache_config=config),
                    depth=BENCH_DEPTH,
                    max_batches=BENCH_MAX_BATCHES,
                )
                results.append((dataset.name, resolution, vanilla, cached))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, resolution, vanilla, cached in results:
        rows.append(
            [
                name,
                resolution,
                f"{vanilla.total_seconds:.2f}",
                f"{cached.total_seconds:.2f}",
                f"{vanilla.total_seconds / cached.total_seconds:.2f}x",
                f"{vanilla.total_seconds / cached.timeline.parallel_seconds:.2f}x",
                f"{cached.cache_hit_ratio:.2f}",
            ]
        )
    emit(
        "fig21_construction_rt",
        format_table(
            [
                "dataset",
                "res(m)",
                "OctoMap-RT(s)",
                "OctoCache-RT(s)",
                "serial speedup",
                "parallel speedup",
                "hit ratio",
            ],
            rows,
        ),
    )

    for name, resolution, vanilla, cached in results:
        speedup = vanilla.total_seconds / cached.total_seconds
        assert speedup > 0.9, (name, resolution, speedup)
        # Inter-batch overlap must still produce cache hits with RT
        # tracing (intra-batch duplicates are already gone).
        assert cached.cache_hit_ratio > 0.1, (name, resolution)
