"""Batched Amanatides–Woo ray traversal (the vector tracing kernel).

Traces every ray of a point cloud in one set of array passes and emits
the **identical observation stream** — same voxel keys, same occupied
flags, same order — as the scalar reference
(:func:`repro.sensor.raycast.compute_ray_keys` driven by
:func:`repro.sensor.scaninsert.trace_scan`).  Bit-exactness is the
contract: the scalar path stays the oracle, and the parity fuzz suite
(``tests/kernels/``) compares the two key-for-key.

How the scalar loop becomes array passes
----------------------------------------

The scalar stepper repeatedly picks ``argmin(t_max)`` (ties break to the
lowest axis index), steps that axis and advances its ``t_max`` by
``t_delta``.  That is exactly a 3-way merge of the per-axis border
crossing sequences ``t0, t0+dt, (t0+dt)+dt, ...``:

1. Each axis's crossing sequence is materialised by a **row-wise
   cumsum** over ``[t0, dt, dt, ...]`` — numpy's cumsum performs the
   same left-to-right repeated addition as the scalar ``t_max +=
   t_delta``, so every crossing value is bit-identical, not just close.
2. A per-ray **stable argsort** over the three concatenated sequences
   (axis 0's block first) merges them; for equal ``t`` values stability
   keeps the lower axis first, matching the scalar tie-break, and
   within one axis keeps crossings in order.
3. Per-axis **cumulative step counts** along the merged order give the
   voxel key after every step, and the scalar's two break conditions
   become array tests: ``key == end_key`` is a per-axis count match and
   the overshoot test ``min(t_max) > 1`` is simply "the next merged
   event's ``t`` exceeds 1" (the merged order is sorted, so the next
   event *is* the minimum of the three axis heads).
4. The scalar per-ray step budget (Manhattan key distance + 3, which
   absorbs float corner ties) is applied as a per-ray column cutoff.

``max_range`` truncation is vectorised with the same arithmetic as the
scalar path (same operation order, so the truncated endpoints are
bit-identical), and truncated rays contribute only free space.
"""

from __future__ import annotations

import math
from typing import Tuple

import numpy as np

from repro.octree.key import coord_to_key
from repro.sensor.pointcloud import PointCloud

__all__ = ["trace_cloud_arrays"]


def trace_cloud_arrays(
    cloud: PointCloud,
    resolution: float,
    depth: int,
    max_range: float = float("inf"),
) -> Tuple[np.ndarray, np.ndarray, int]:
    """Trace all rays of ``cloud``; return ``(keys, occupied, num_rays)``.

    ``keys`` is ``(M, 3)`` int64 and ``occupied`` ``(M,)`` bool, in the
    scalar emission order: per ray, free voxels from the origin outward
    followed by the endpoint voxel (occupied unless the ray was
    truncated at ``max_range``).  Raises :class:`ValueError` for
    endpoints (after truncation) or an origin outside the map, exactly
    like the scalar path.
    """
    points = cloud.as_array()
    num_rays = points.shape[0]
    if num_rays == 0:
        return np.empty((0, 3), dtype=np.int64), np.empty(0, dtype=bool), 0
    origin = np.asarray(cloud.origin, dtype=np.float64)

    deltas = points - origin
    truncated = np.zeros(num_rays, dtype=bool)
    endpoints = points
    if max_range != math.inf:
        # Same association as the scalar path: (dx*dx + dy*dy) + dz*dz.
        dist = np.sqrt(
            deltas[:, 0] * deltas[:, 0]
            + deltas[:, 1] * deltas[:, 1]
            + deltas[:, 2] * deltas[:, 2]
        )
        truncated = dist > max_range
        if truncated.any():
            endpoints = points.copy()
            scale = max_range / dist[truncated]
            endpoints[truncated] = origin + deltas[truncated] * scale[:, None]
            deltas = endpoints - origin

    offset = 1 << (depth - 1)
    limit = 1 << depth
    start_key = coord_to_key(cloud.origin, resolution, depth)
    sk = np.array(start_key, dtype=np.int64)

    with np.errstate(invalid="ignore"):
        end_keys = np.floor(endpoints / resolution).astype(np.int64) + offset
    bad = (end_keys < 0) | (end_keys >= limit)
    if bad.any():
        index = int(np.argmax(bad.any(axis=1)))
        # Re-raise through the scalar converter for the identical error.
        coord_to_key(tuple(endpoints[index].tolist()), resolution, depth)

    degenerate = (deltas == 0.0).all(axis=1)
    same_voxel = (end_keys == sk).all(axis=1)
    active = ~(degenerate | same_voxel)
    idx = np.flatnonzero(active)

    free_counts = np.zeros(num_rays, dtype=np.int64)
    if idx.size:
        d = deltas[idx]
        ek = end_keys[idx]
        n_steps = np.abs(ek - sk)              # crossings per axis
        budget = n_steps.sum(axis=1) + 3       # scalar max_steps
        emitted, emit_keys, positions_grid, flat_mask = _trace_cohort(
            d, n_steps, budget, sk, origin, resolution, offset
        )
        free_counts[idx] = 1 + emitted         # start voxel + steps

    totals = free_counts + 1                   # + endpoint observation
    ends_pos = np.cumsum(totals) - 1
    seg_off = ends_pos - free_counts
    total = int(ends_pos[-1]) + 1

    out_keys = np.empty((total, 3), dtype=np.int64)
    out_occ = np.zeros(total, dtype=bool)
    out_keys[ends_pos] = end_keys
    out_occ[ends_pos] = ~truncated
    if idx.size:
        starts = seg_off[idx]
        out_keys[starts] = sk
        positions = (starts[:, None] + positions_grid).ravel()[flat_mask]
        out_keys[positions] = emit_keys
    return out_keys, out_occ, num_rays


def _trace_cohort(
    d: np.ndarray,
    n_steps: np.ndarray,
    budget: np.ndarray,
    sk: np.ndarray,
    origin: np.ndarray,
    resolution: float,
    offset: int,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Trace one cohort of active rays; see :func:`trace_cloud_arrays`.

    Returns ``(emitted, emit_keys, positions_grid, flat_mask)``:
    emitted steps per ray, the emitted free-voxel keys in row-major
    (scalar) order, and the per-(ray, column) output-offset grid plus
    flattened emission mask the caller uses to scatter the keys into the
    observation stream.
    """
    count = d.shape[0]
    stp = np.sign(d).astype(np.int64)
    nonzero = stp != 0
    border = (sk[None, :] - offset + (d > 0.0).astype(np.int64)) * resolution
    with np.errstate(divide="ignore", invalid="ignore"):
        t0 = np.where(nonzero, (border - origin) / d, np.inf)
        dt = np.where(nonzero, resolution / np.abs(d), np.inf)

    num_events = int(budget.max()) + 1         # need step i's successor t
    width = int(n_steps.max()) + 4             # per-axis slack ≥ budget tail

    # Crossing values per (ray, axis): cumsum over [t0, dt, dt, ...]
    # reproduces the scalar repeated addition bit-for-bit.
    events = np.empty((count, 3, width))
    events[:, :, 0] = t0
    events[:, :, 1:] = dt[:, :, None]
    np.cumsum(events, axis=2, out=events)
    events = events.reshape(count, 3 * width)

    order = np.argsort(events, axis=1, kind="stable")[:, :num_events]

    columns = np.arange(num_events, dtype=np.int64)
    cx = (order < width).cumsum(axis=1, dtype=np.int64)
    cxy = (order < 2 * width).cumsum(axis=1, dtype=np.int64)
    cy = cxy - cx
    # Column j has seen j+1 events in total, so the third count is
    # implied — no third compare-and-cumsum pass needed.
    cz = columns + 1 - cxy

    # The scalar break conditions, without materialising the merged
    # t values or a stop grid:
    # - overshoot ("next event's t > 1"): the merge is sorted, so the
    #   first such column is just the count of crossings with t <= 1
    #   (minus the one consumed by the stop test's +1 lookahead);
    # - end-voxel arrival: counts sum to j+1 per column, so all three
    #   can equal ``n_steps`` (which sums to the Manhattan distance)
    #   only at column manhattan-1 — one gather checks it.
    manhattan = budget - 3
    reach = np.count_nonzero(events <= 1.0, axis=1)
    overshoot = np.clip(reach - 1, 0, num_events - 1)
    end_col = manhattan - 1
    flat_end = np.arange(count, dtype=np.int64) * num_events + end_col
    at_end = (
        (np.take(cx, flat_end) == n_steps[:, 0])
        & (np.take(cy, flat_end) == n_steps[:, 1])
        & (np.take(cz, flat_end) == n_steps[:, 2])
    )
    emitted = np.minimum(overshoot, budget)    # steps emitted per ray
    np.minimum(emitted, np.where(at_end, end_col, emitted), out=emitted)

    mask = columns[None, :] < emitted[:, None]
    flat_mask = mask.ravel()                   # row-major = scalar order
    emit_keys = np.empty((int(emitted.sum()), 3), dtype=np.int64)
    emit_keys[:, 0] = (sk[0] + stp[:, 0:1] * cx).ravel()[flat_mask]
    emit_keys[:, 1] = (sk[1] + stp[:, 1:2] * cy).ravel()[flat_mask]
    emit_keys[:, 2] = (sk[2] + stp[:, 2:3] * cz).ravel()[flat_mask]
    return emitted, emit_keys, 1 + columns, flat_mask
