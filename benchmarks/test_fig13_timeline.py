"""Figure 13: serial vs parallel OctoCache workflow timelines.

The paper's Figure 13 is a schematic of where time goes; this benchmark
renders the same picture from *measured* stage times of a real corridor
run — the serial bar, the two-thread bars with the waiting gap — and
asserts the relationships the schematic encodes.
"""

from repro.analysis.sweeps import run_construction, suggest_cache_config
from repro.analysis.timeline import (
    render_parallel_timeline,
    render_serial_timeline,
)
from repro.core.pipeline_model import PipelineModel

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

RESOLUTION = 0.15


def test_fig13_workflow_timeline(benchmark, corridor, emit):
    config = suggest_cache_config(corridor, RESOLUTION, BENCH_DEPTH)

    def run():
        return run_construction(
            corridor,
            RESOLUTION,
            pipeline_factory("octocache", corridor, cache_config=config),
            depth=BENCH_DEPTH,
            max_batches=BENCH_MAX_BATCHES,
        )

    result = benchmark.pedantic(run, rounds=1, iterations=1)

    # Render from the run's actual per-batch stage times.
    model = PipelineModel(result.batch_stage_times)
    serial_art = render_serial_timeline(model.batches)
    parallel_art = render_parallel_timeline(model.batches)
    emit("fig13_workflow_timeline", serial_art + "\n\n" + parallel_art)

    timeline = model.simulate()
    # The schematic's claims: parallel is never slower, and the critical
    # thread spends no time in 'O' (octree update moved to thread 2).
    assert timeline.parallel_seconds <= timeline.serial_seconds + 1e-9
    thread1_line = parallel_art.splitlines()[0]
    assert "O" not in thread1_line
    serial_line = serial_art.splitlines()[0]
    assert "O" in serial_line