"""Out-of-bounds voxel keys must fail clearly at the map API boundary.

Regression: negative or >21-bit key components used to surface as a bare
``ValueError`` from ``morton_encode3`` deep inside ``bucket_index``; the
insert/query entry points now name the offending key and the map bounds
on both the cached and the plain-octree paths.
"""

import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.core.octocache import OctoCacheMap
from repro.octree.key import validate_key
from repro.sensor.scaninsert import ScanBatch
from repro.service.sharded_map import ShardedMap

RES = 0.2
DEPTH = 8

BAD_KEYS = [
    (-1, 0, 0),  # negative: the old error said "coordinate must be non-negative"
    (0, -7, 3),
    (1 << DEPTH, 0, 0),  # above the map, still encodable
    (1 << 22, 0, 0),  # above the 21-bit encoder limit
]


class TestValidateKey:
    def test_accepts_in_bounds(self):
        validate_key((0, 0, 0), DEPTH)
        validate_key((255, 255, 255), DEPTH)

    def test_names_key_and_bounds(self):
        with pytest.raises(ValueError) as excinfo:
            validate_key((-1, 2, 3), DEPTH)
        message = str(excinfo.value)
        assert "(-1, 2, 3)" in message
        assert f"[0, {1 << DEPTH})" in message


class TestCachedPath:
    def make_map(self):
        return OctoCacheMap(resolution=RES, depth=DEPTH)

    @pytest.mark.parametrize("key", BAD_KEYS)
    def test_insert_rejects_with_clear_error(self, key):
        mapping = self.make_map()
        batch = ScanBatch(observations=[(key, True)], num_rays=0)
        with pytest.raises(ValueError, match="outside the map bounds"):
            mapping.insert_batch(batch)

    @pytest.mark.parametrize("key", BAD_KEYS)
    def test_query_rejects_with_clear_error(self, key):
        mapping = self.make_map()
        with pytest.raises(ValueError, match="outside the map bounds"):
            mapping.query_key(key)

    def test_error_names_offending_key(self):
        mapping = self.make_map()
        with pytest.raises(ValueError, match=r"\(-1, 0, 0\)"):
            mapping.query_key((-1, 0, 0))


class TestPlainOctreePath:
    def make_map(self):
        return OctoMapPipeline(resolution=RES, depth=DEPTH)

    @pytest.mark.parametrize("key", BAD_KEYS)
    def test_insert_rejects_with_clear_error(self, key):
        mapping = self.make_map()
        batch = ScanBatch(observations=[(key, True)], num_rays=0)
        with pytest.raises(ValueError, match="outside the map"):
            mapping.insert_batch(batch)

    @pytest.mark.parametrize("key", BAD_KEYS)
    def test_query_rejects_with_clear_error(self, key):
        mapping = self.make_map()
        with pytest.raises(ValueError, match="outside the map"):
            mapping.query_key(key)


class TestShardedPath:
    @pytest.mark.parametrize("key", BAD_KEYS)
    def test_query_key_rejects_before_routing(self, key):
        sharded = ShardedMap(resolution=RES, depth=DEPTH, num_shards=2)
        with pytest.raises(ValueError, match="outside the map"):
            sharded.query_key(key)
