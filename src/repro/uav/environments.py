"""The four MAVBench evaluation environments (paper §5.1, Figure 15).

Each environment bundles a scene, a start and goal, and the paper's
baseline ⟨sensing range, mapping resolution⟩ for both the OctoMap-class
and the RT-class comparisons.  Task difficulty ranks Room > Factory >
Farm > Openland, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.datasets.scenes import Box, Scene

__all__ = ["Environment", "make_environment", "ENVIRONMENT_NAMES"]

#: Environment names accepted by :func:`make_environment`.
ENVIRONMENT_NAMES = ("openland", "farm", "room", "factory")


@dataclass(frozen=True)
class Environment:
    """A navigation task: scene, start/goal, and baseline parameters.

    Attributes:
        name: one of :data:`ENVIRONMENT_NAMES`.
        scene: the obstacle geometry.
        start: UAV start position.
        goal: mission goal position.
        sensing_range: paper-baseline sensor range (metres).
        resolution: paper-baseline mapping resolution for the
            OctoMap-vs-OctoCache comparison.
        rt_resolution: finer baseline resolution for the RT-class
            comparison.  The paper uses 0.01–0.04 m; pure Python cannot
            sustain those, so these are ≈2× finer than the OctoMap-class
            baseline — DESIGN.md §1 records the substitution.
    """

    name: str
    scene: Scene
    start: Tuple[float, float, float]
    goal: Tuple[float, float, float]
    sensing_range: float
    resolution: float
    rt_resolution: float

    @property
    def goal_distance(self) -> float:
        """Straight-line start→goal distance."""
        return float(
            np.linalg.norm(np.asarray(self.goal) - np.asarray(self.start))
        )


def _openland() -> Environment:
    """Structured outdoor; goal 100 m away; sparse, large obstacles."""
    boxes = [
        Box((30.0, -6.0, 0.0), (34.0, 6.0, 6.0)),  # billboard wall
        Box((60.0, 4.0, 0.0), (66.0, 12.0, 8.0)),  # shed
        Box((80.0, -10.0, 0.0), (84.0, -2.0, 5.0)),  # container stack
    ]
    scene = Scene(boxes, ground=True, name="openland")
    return Environment(
        name="openland",
        scene=scene,
        start=(0.0, 0.0, 2.0),
        goal=(100.0, 0.0, 2.0),
        sensing_range=8.0,
        resolution=1.0,
        rt_resolution=0.5,
    )


def _farm() -> Environment:
    """Unstructured outdoor; goal 50 m; scattered trees and machinery."""
    rng = np.random.default_rng(7)
    boxes = [
        Box((20.0, -8.0, 0.0), (28.0, -2.0, 4.5)),  # barn
        Box((35.0, 3.0, 0.0), (38.0, 9.0, 3.0)),  # silo base
    ]
    for _ in range(18):  # orchard trees
        x = float(rng.uniform(5, 48))
        y = float(rng.uniform(-12, 12))
        if abs(y) < 1.5 and 0 < x < 50:
            continue  # keep a weaving path possible
        r = float(rng.uniform(0.3, 0.8))
        boxes.append(Box((x - r, y - r, 0.0), (x + r, y + r, float(rng.uniform(2.5, 5.0)))))
    scene = Scene(boxes, ground=True, name="farm")
    return Environment(
        name="farm",
        scene=scene,
        start=(0.0, 0.0, 1.5),
        goal=(50.0, 0.0, 1.5),
        sensing_range=4.5,
        resolution=0.3,
        rt_resolution=0.15,
    )


def _room() -> Environment:
    """Indoor room; goal 12 m; the hardest (tightest) scenario."""
    wall = 0.2
    boxes = [
        Box((-1.0, -4.0, 0.0), (-1.0 + wall, 4.0, 3.0)),  # west wall
        Box((13.0, -4.0, 0.0), (13.0 + wall, 4.0, 3.0)),  # east wall
        Box((-1.0, -4.0 - wall, 0.0), (13.2, -4.0, 3.0)),  # south wall
        Box((-1.0, 4.0, 0.0), (13.2, 4.0 + wall, 3.0)),  # north wall
        Box((-1.0, -4.2, 2.9), (13.2, 4.2, 3.1)),  # ceiling
        Box((3.0, -4.0, 0.0), (3.4, 1.0, 3.0)),  # partition 1 (gap north)
        Box((6.5, -1.0, 0.0), (6.9, 4.0, 3.0)),  # partition 2 (gap south)
        Box((9.5, -4.0, 0.0), (9.9, 0.5, 3.0)),  # partition 3
        Box((5.0, -3.5, 0.0), (6.0, -2.5, 1.2)),  # desk
        Box((10.8, 1.5, 0.0), (11.8, 2.8, 1.5)),  # shelf
    ]
    scene = Scene(boxes, ground=True, name="room")
    return Environment(
        name="room",
        scene=scene,
        start=(0.0, 0.0, 1.2),
        goal=(12.0, 0.0, 1.2),
        sensing_range=3.0,
        resolution=0.15,
        rt_resolution=0.1,
    )


def _factory() -> Environment:
    """Mixed outdoor+indoor; goal 70 m; hall with racks then a yard."""
    boxes = [
        # Factory hall shell (open door at x=30, y in [-2, 2]).
        Box((8.0, -12.0, 0.0), (30.0, -2.0, 7.0)),
        Box((8.0, 2.0, 0.0), (30.0, 12.0, 7.0)),
        Box((8.0, -12.2, 6.8), (30.0, 12.2, 7.2)),  # roof over hall
        # Rack rows inside the approach corridor (staggered; each leaves
        # a ~2.5 m lane so the slalom is navigable at 0.5 m resolution).
        Box((14.0, -1.8, 0.0), (15.0, -0.6, 4.0)),
        Box((20.0, 0.6, 0.0), (21.0, 1.8, 4.0)),
        Box((26.0, -1.8, 0.0), (27.0, -0.6, 4.0)),
        # Yard: containers and a crane base.
        Box((42.0, -6.0, 0.0), (48.0, -1.0, 4.0)),
        Box((52.0, 2.0, 0.0), (58.0, 7.0, 5.0)),
        Box((60.0, -4.0, 0.0), (63.0, -1.0, 9.0)),
    ]
    scene = Scene(boxes, ground=True, name="factory")
    return Environment(
        name="factory",
        scene=scene,
        start=(0.0, 0.0, 1.5),
        goal=(70.0, 0.0, 1.5),
        sensing_range=6.0,
        resolution=0.5,
        rt_resolution=0.25,
    )


_BUILDERS = {
    "openland": _openland,
    "farm": _farm,
    "room": _room,
    "factory": _factory,
}


def make_environment(name: str) -> Environment:
    """Construct one of the four named environments."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown environment {name!r}; expected one of {ENVIRONMENT_NAMES}"
        ) from None
    return builder()
