"""Cross-process telemetry relay: child spans/counters reach the parent.

Shard workers run in child processes with their own tracer; every IPC
reply piggybacks the child's drained span/counter events, which the
parent replays into the service tracer (metrics registry + forward
sink).  These tests pin the consistency contract: the parent's metrics
registry sees the same shard activity in process mode as in thread mode.
"""

from repro.service.server import OccupancyMapService
from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.tracer import tracing

from tests.mp.test_process_backend import make_batches, make_config


def run_service(workers, batches):
    with OccupancyMapService(
        make_config(snapshot_interval=0, workers=workers)
    ) as service:
        for batch in batches:
            service.submit_observations(batch, must_accept=True)
        service.flush()
        stats = service.stats_dict()
    return stats


class TestRelayConsistency:
    def test_child_spans_land_in_parent_registry(self):
        batches = make_batches(num_batches=6, per_batch=40, seed=61)
        stats = run_service("process", batches)
        metrics = stats["metrics"]
        histograms = metrics["histograms"]
        counters = metrics["counters"]
        # shard.apply spans are recorded parent-side around the IPC round
        # trip; the cache counters can only come from the children.
        assert counters["shard.batches_applied"] >= len(batches)
        assert histograms["shard.apply_seconds"]["count"] == (
            counters["shard.batches_applied"]
        )
        assert (
            counters.get("cache.hits", 0) + counters.get("cache.misses", 0) > 0
        )

    def test_counter_totals_match_thread_backend(self):
        """Deterministic totals agree across backends for the identical
        single-producer workload.  Service-registry counters compare
        directly; cache counters compare at the *global* tracer (thread
        shards count there natively, process shards arrive via the
        relay + forward sink), which is the view trace-bench consumes."""
        batches = make_batches(num_batches=6, per_batch=40, seed=67)
        registry = {}
        cache_totals = {}
        for workers in ("thread", "process"):
            ring = RingBufferSink(capacity=1)
            with tracing(ring):
                registry[workers] = run_service(workers, batches)[
                    "metrics"
                ]["counters"]
            cache_totals[workers] = {
                name: total
                for (category, name), total in ring.counts.items()
                if name.startswith("cache.")
            }
        for name in ("ingest.observations", "shard.batches_applied"):
            assert registry["process"].get(name, 0) == registry["thread"].get(
                name, 0
            ), name
        assert cache_totals["process"] == cache_totals["thread"]
        assert sum(cache_totals["process"].values()) > 0

    def test_child_events_forward_to_global_tracer(self):
        """A global tracer (the trace-bench arrangement) receives the
        relayed child spans through the service's forward sink."""
        batches = make_batches(num_batches=3, per_batch=30, seed=71)
        ring = RingBufferSink(capacity=8192)
        with tracing(ring):
            run_service("process", batches)
        counts = ring.counts
        relayed = [
            total
            for (category, name), total in counts.items()
            if name in ("cache.hits", "cache.misses")
        ]
        assert relayed and sum(relayed) > 0, (
            f"no relayed cache counters reached the sink: {sorted(counts)}"
        )
