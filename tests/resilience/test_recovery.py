"""Tests for the checkpoint store and exact shard rebuild."""

import random

import pytest

from repro.core.octocache import OctoCacheMap
from repro.octree.serialize import tree_to_bytes
from repro.resilience.faults import FaultPlan, FaultSpec, InjectedFault
from repro.resilience.recovery import (
    CheckpointStore,
    ShardCheckpoint,
    ShardHealth,
    restore_pipeline,
)
from repro.sensor.scaninsert import ScanBatch

RESOLUTION = 0.1
DEPTH = 6


def make_pipeline():
    return OctoCacheMap(resolution=RESOLUTION, depth=DEPTH)


def make_batches(num_batches=3, per_batch=40, seed=11):
    """Deterministic observation batches over a small key grid."""
    rng = random.Random(seed)
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(per_batch):
            key = (rng.randrange(32), rng.randrange(32), rng.randrange(32))
            batch.append((key, rng.random() < 0.6))
        batches.append(batch)
    return batches


def keys_of(batches):
    return {key for batch in batches for key, _ in batch}


def build_direct(batches):
    """The fault-free reference: insert every batch into one pipeline."""
    pipeline = make_pipeline()
    for batch in batches:
        pipeline.insert_batch(ScanBatch(observations=list(batch), num_rays=0))
    return pipeline


class TestShardHealth:
    def test_values(self):
        assert ShardHealth.HEALTHY.value == "healthy"
        assert ShardHealth.RECOVERING.value == "recovering"
        assert ShardHealth.DEAD.value == "dead"
        # str-enum: usable directly where the service reports health text
        assert ShardHealth.DEAD == "dead"


class TestCheckpointStore:
    def test_rejects_bad_shard_count(self):
        with pytest.raises(ValueError, match="num_shards"):
            CheckpointStore(0)

    def test_journal_append_and_length(self):
        store = CheckpointStore(2)
        assert store.append(0, [((1, 2, 3), True)]) == 0
        assert store.append(0, [((4, 5, 6), False)]) == 1
        assert store.append(1, [((7, 8, 9), True)]) == 0
        assert store.journal_length(0) == 2
        assert store.journal_length(1) == 1

    def test_snapshot_cannot_claim_unjournaled_entries(self):
        store = CheckpointStore(1)
        store.append(0, [((1, 1, 1), True)])
        tree = make_pipeline().octree
        with pytest.raises(ValueError, match="only journaled"):
            store.write_snapshot(0, tree, upto=5)

    def test_recovery_state_without_snapshot_replays_everything(self):
        store = CheckpointStore(1)
        batches = make_batches(num_batches=2)
        for batch in batches:
            store.append(0, batch)
        checkpoint, tail = store.recovery_state(0)
        assert checkpoint is None
        assert tail == [list(b) for b in batches]

    def test_recovery_state_with_snapshot_returns_tail_only(self):
        store = CheckpointStore(1)
        batches = make_batches(num_batches=3)
        for batch in batches:
            store.append(0, batch)
        reference = build_direct(batches[:1])
        reference.finalize()
        store.write_snapshot(0, reference.octree, upto=1)
        checkpoint, tail = store.recovery_state(0)
        assert checkpoint is not None
        assert checkpoint.upto == 1
        assert tail == [list(b) for b in batches[1:]]

    def test_snapshot_persisted_to_directory(self, tmp_path):
        store = CheckpointStore(1, directory=str(tmp_path))
        pipeline = build_direct(make_batches(num_batches=1))
        pipeline.finalize()
        store.append(0, [((1, 1, 1), True)])
        checkpoint = store.write_snapshot(0, pipeline.octree, upto=1)
        path = tmp_path / "shard-0.oct"
        assert path.read_bytes() == checkpoint.blob

    def test_stats(self):
        store = CheckpointStore(1)
        store.append(0, [((1, 1, 1), True)])
        store.append(0, [((2, 2, 2), False)])
        pipeline = make_pipeline()
        store.write_snapshot(0, pipeline.octree, upto=1)
        stats = store.stats(0)
        assert stats["journal_entries"] == 2
        assert stats["snapshot_upto"] == 1
        assert stats["snapshot_bytes"] > 0

    def test_injected_snapshot_failure_keeps_previous_checkpoint(self):
        plan = FaultPlan(
            [FaultSpec(site="snapshot.write", mode="error", after=1)]
        )
        store = CheckpointStore(1, fault_plan=plan)
        store.append(0, [((1, 1, 1), True)])
        store.append(0, [((2, 2, 2), True)])
        tree = make_pipeline().octree
        first = store.write_snapshot(0, tree, upto=1)
        with pytest.raises(InjectedFault):
            store.write_snapshot(0, tree, upto=2)
        assert store.checkpoint(0) is first


class TestRestorePipeline:
    def test_replay_only_matches_direct_build(self):
        batches = make_batches()
        direct = build_direct(batches)
        restored = restore_pipeline(make_pipeline, None, batches)
        for key in sorted(keys_of(batches)):
            assert restored.query_key(key) == pytest.approx(
                direct.query_key(key)
            )

    def test_snapshot_plus_tail_matches_direct_build(self):
        batches = make_batches(num_batches=4)
        prefix = build_direct(batches[:2])
        prefix.finalize()  # flush the cache: octree is now authoritative
        checkpoint = ShardCheckpoint(
            blob=tree_to_bytes(prefix.octree), upto=2
        )
        restored = restore_pipeline(make_pipeline, checkpoint, batches[2:])
        direct = build_direct(batches)
        for key in sorted(keys_of(batches)):
            assert restored.query_key(key) == pytest.approx(
                direct.query_key(key)
            )

    def test_shape_mismatch_rejected(self):
        other = OctoCacheMap(resolution=RESOLUTION, depth=DEPTH + 1)
        checkpoint = ShardCheckpoint(
            blob=tree_to_bytes(other.octree), upto=0
        )
        with pytest.raises(ValueError, match="does not match"):
            restore_pipeline(make_pipeline, checkpoint, [])
