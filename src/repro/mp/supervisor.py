"""``ShardProcessSupervisor``: lifecycle of the shard worker processes.

The supervisor owns everything about worker *processes* and nothing
about shard *state*: it spawns them (shards are assigned round-robin,
``shard % num_procs``, so ``num_procs=1`` serialises every shard through
one process — the baseline the ``multicore_speedup`` metric divides
by), frames and sequences every request/reply exchange, monitors
liveness (an optional heartbeat thread plus per-request detection), and
respawns dead processes on demand.  What the replacement process should
*contain* is the backend's job (:class:`~repro.mp.backend.ProcessShardedMap`
replays checkpoint + journal through a ``RESTORE`` command).

Failure surface:

- :class:`ShardProcessDied` — the process hosting a shard is gone
  (SIGKILL, OOM, broken pipe, request timeout).  It subclasses
  :class:`~repro.resilience.faults.InjectedCrash` **on purpose**: the
  service's dispatcher already treats ``InjectedCrash`` as "this shard's
  worker is fatally gone, start recovery", so a real process death rides
  the exact thread-crash recovery path chaos testing exercises.
- :class:`WorkerCommandError` — the process is alive but one command
  failed (it replied with an ``ERROR`` frame).  Retryable; carries the
  child traceback.

Each process's pipe is guarded by a lock, making every send/recv
exchange atomic; per-process sequence numbers catch desynchronised
replies (a reply for a stale request fails loudly instead of being
attributed to the wrong command).
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import signal
import threading
import time
from typing import Callable, Dict, List, Optional

from repro.mp import codec
from repro.mp.worker import shard_worker_main
from repro.resilience.faults import InjectedCrash

__all__ = [
    "ShardProcessDied",
    "ShardProcessSupervisor",
    "WorkerCommandError",
]

#: Per-request reply deadline.  Generous: the slowest command is a
#: snapshot of a large shard tree, still far under a second in practice.
_DEFAULT_REQUEST_TIMEOUT = 120.0


class ShardProcessDied(InjectedCrash):
    """The worker process hosting a shard died (or stopped responding)."""


class WorkerCommandError(RuntimeError):
    """A command failed inside a live worker (carries its traceback)."""


def _pick_context(start_method: Optional[str]):
    if start_method is not None:
        return multiprocessing.get_context(start_method)
    # fork is ~100x cheaper than spawn and the worker entry touches only
    # objects it builds after the fork; fall back where fork is absent
    # (or deprecated to the point of removal).
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


class _WorkerProcess:
    """One live (or dead) worker process and its parent-side pipe end."""

    def __init__(self, process, conn, generation: int) -> None:
        self.process = process
        self.conn = conn
        self.generation = generation
        self.events_reported = False  # heartbeat de-duplication


class ShardProcessSupervisor:
    """Spawn, talk to, monitor, kill, and respawn shard worker processes.

    Args:
        num_shards: shard count (shard ids index requests).
        num_procs: worker process count; shard ``s`` lives in process
            ``s % num_procs``.  Defaults to one process per shard.
        worker_config: shard shape forwarded to every worker (resolution,
            depth, params/cache fields — see
            :func:`repro.mp.worker.shard_worker_main`).
        start_method: ``multiprocessing`` start method override
            (default: ``fork`` where available, else ``spawn``).
        request_timeout: per-request reply deadline in seconds; an
            overdue worker is declared dead and killed.
    """

    def __init__(
        self,
        num_shards: int,
        num_procs: Optional[int] = None,
        worker_config: Optional[dict] = None,
        start_method: Optional[str] = None,
        request_timeout: float = _DEFAULT_REQUEST_TIMEOUT,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if num_procs is None:
            num_procs = num_shards
        if not 1 <= num_procs <= num_shards:
            raise ValueError(
                f"num_procs must be in [1, num_shards={num_shards}], "
                f"got {num_procs}"
            )
        if request_timeout <= 0:
            raise ValueError(
                f"request_timeout must be positive, got {request_timeout}"
            )
        self.num_shards = num_shards
        self.num_procs = num_procs
        self.request_timeout = request_timeout
        self._ctx = _pick_context(start_method)
        self._worker_config = dict(worker_config or {})
        self._workers: List[Optional[_WorkerProcess]] = [None] * num_procs
        self._locks = [threading.RLock() for _ in range(num_procs)]
        self._seqs = [itertools.count(1) for _ in range(num_procs)]
        self._spawns = [0] * num_procs
        self._closed = False
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._heartbeat_stop = threading.Event()
        self.restarts = 0

    # ------------------------------------------------------------------
    # Topology.
    # ------------------------------------------------------------------

    def process_of(self, shard_id: int) -> int:
        """The process index hosting ``shard_id``."""
        if not 0 <= shard_id < self.num_shards:
            raise ValueError(f"shard {shard_id} out of range")
        return shard_id % self.num_procs

    def shards_of(self, proc_index: int) -> List[int]:
        """The shard ids hosted by process ``proc_index``."""
        return list(range(proc_index, self.num_shards, self.num_procs))

    # ------------------------------------------------------------------
    # Lifecycle.
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn every worker process (idempotent per process slot)."""
        for proc_index in range(self.num_procs):
            with self._locks[proc_index]:
                if self._workers[proc_index] is None:
                    self._spawn(proc_index)

    def _spawn(self, proc_index: int) -> _WorkerProcess:
        """Start one worker process (caller holds the process lock)."""
        if self._closed:
            raise RuntimeError("supervisor is closed")
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        config = dict(self._worker_config)
        config["shard_ids"] = self.shards_of(proc_index)
        self._spawns[proc_index] += 1
        generation = self._spawns[proc_index]
        process = self._ctx.Process(
            target=shard_worker_main,
            args=(child_conn, codec.encode_json(config)),
            name=f"octocache-mp-{proc_index}-g{generation}",
            daemon=True,
        )
        process.start()
        child_conn.close()
        worker = _WorkerProcess(process, parent_conn, generation)
        self._workers[proc_index] = worker
        if generation > 1:
            self.restarts += 1
        return worker

    def ensure_alive(self, shard_id: int) -> int:
        """Respawn the hosting process if dead; returns its generation.

        The fresh process starts with *empty* shards — the caller is
        responsible for restoring state before routing work to it.
        """
        proc_index = self.process_of(shard_id)
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            if worker is None or not worker.process.is_alive():
                if worker is not None:
                    self._reap(worker)
                worker = self._spawn(proc_index)
            return worker.generation

    def generation(self, shard_id: int) -> int:
        """Current spawn generation of the process hosting ``shard_id``."""
        proc_index = self.process_of(shard_id)
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            return worker.generation if worker is not None else 0

    def alive(self, shard_id: int) -> bool:
        """True while the process hosting ``shard_id`` is running."""
        proc_index = self.process_of(shard_id)
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            return worker is not None and worker.process.is_alive()

    def pid_of(self, shard_id: int) -> Optional[int]:
        """The hosting process's pid (``None`` when not running)."""
        proc_index = self.process_of(shard_id)
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            return worker.process.pid if worker is not None else None

    def kill(self, shard_id: int) -> bool:
        """SIGKILL the process hosting ``shard_id``; True if one died.

        This is *real* process death — the chaos path behind
        ``chaos-bench --workers process`` — not a polite shutdown.
        """
        proc_index = self.process_of(shard_id)
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            if worker is None or not worker.process.is_alive():
                return False
            pid = worker.process.pid
            try:
                os.kill(pid, signal.SIGKILL)
            except (ProcessLookupError, OSError):  # pragma: no cover - race
                pass
            worker.process.join(timeout=10.0)
            self._reap(worker)
            return True

    def _reap(self, worker: _WorkerProcess) -> None:
        """Release a dead worker's resources (caller holds its lock)."""
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover - already closed
            pass
        if not worker.process.is_alive():
            worker.process.join(timeout=0)

    # ------------------------------------------------------------------
    # Requests.
    # ------------------------------------------------------------------

    def request(
        self,
        shard_id: int,
        msg_type: int,
        payload: bytes = b"",
        timeout: Optional[float] = None,
        parent_span: int = 0,
        tenant: int = 0,
    ) -> codec.Frame:
        """One atomic framed exchange with the process hosting a shard.

        ``parent_span`` rides the frame header as wire trace context:
        the worker parents its spans under that id, so process-mode
        request waterfalls join into one span tree (0 = no context).
        ``tenant`` is the tenant slot the command addresses (0 = the
        default single-tenant map); it selects which of the shard's
        per-tenant pipelines executes the command worker-side.

        Raises :class:`ShardProcessDied` when the process is gone (or
        misses the reply deadline — it is then killed, so "slow" and
        "dead" converge to one recovery path) and
        :class:`WorkerCommandError` when the live worker reports a
        command failure.
        """
        proc_index = self.process_of(shard_id)
        deadline = timeout if timeout is not None else self.request_timeout
        with self._locks[proc_index]:
            worker = self._workers[proc_index]
            if worker is None or not worker.process.is_alive():
                raise ShardProcessDied(
                    f"worker process for shard {shard_id} is not running"
                )
            seq = next(self._seqs[proc_index])
            frame = codec.encode_frame(
                msg_type,
                shard_id,
                seq,
                payload,
                parent_span=parent_span,
                tenant=tenant,
            )
            try:
                worker.conn.send_bytes(frame)
                if not worker.conn.poll(deadline):
                    raise TimeoutError(
                        f"no reply within {deadline:.1f}s to "
                        f"{codec.message_name(msg_type)}"
                    )
                data = worker.conn.recv_bytes()
            except (
                BrokenPipeError,
                ConnectionResetError,
                EOFError,
                OSError,
                TimeoutError,
            ) as error:
                # Unresponsive == dead: kill so the next ensure_alive
                # respawns cleanly instead of talking to a wedged pipe.
                if worker.process.is_alive():
                    try:
                        os.kill(worker.process.pid, signal.SIGKILL)
                    except (ProcessLookupError, OSError):  # pragma: no cover
                        pass
                    worker.process.join(timeout=10.0)
                self._reap(worker)
                raise ShardProcessDied(
                    f"worker process for shard {shard_id} died during "
                    f"{codec.message_name(msg_type)}: {error!r}"
                ) from error
        reply = codec.decode_frame(data)
        if reply.seq != seq:
            raise WorkerCommandError(
                f"desynchronised reply for shard {shard_id}: "
                f"expected seq {seq}, got {reply.seq}"
            )
        if reply.type == codec.MSG_ERROR:
            body, _events = codec.decode_reply(reply.payload)
            raise WorkerCommandError(
                f"{codec.message_name(msg_type)} failed in worker for "
                f"shard {shard_id}:\n{body.decode('utf-8', 'replace')}"
            )
        if reply.type != codec.MSG_OK:
            raise WorkerCommandError(
                f"unexpected reply {codec.message_name(reply.type)} to "
                f"{codec.message_name(msg_type)}"
            )
        return reply

    # ------------------------------------------------------------------
    # Heartbeat.
    # ------------------------------------------------------------------

    def start_heartbeat(
        self,
        interval: float = 0.5,
        on_death: Optional[Callable[[int, List[int], int], None]] = None,
    ) -> None:
        """Monitor worker liveness on a daemon thread.

        ``on_death(proc_index, shard_ids, generation)`` fires once per
        died generation.  The heartbeat never respawns by itself —
        recovery is state-bearing and belongs to the backend/service
        (traffic-driven, exactly-once).
        """
        if self._heartbeat_thread is not None:
            return

        def loop() -> None:
            while not self._heartbeat_stop.wait(interval):
                for proc_index in range(self.num_procs):
                    with self._locks[proc_index]:
                        worker = self._workers[proc_index]
                        dead = (
                            worker is not None
                            and not worker.process.is_alive()
                            and not worker.events_reported
                        )
                        if dead:
                            worker.events_reported = True
                            generation = worker.generation
                    if dead and on_death is not None:
                        try:
                            on_death(
                                proc_index,
                                self.shards_of(proc_index),
                                generation,
                            )
                        except Exception:  # pragma: no cover - callback bug
                            pass

        self._heartbeat_thread = threading.Thread(
            target=loop, name="octocache-mp-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def ping(self, proc_index: int, timeout: float = 5.0) -> bool:
        """Round-trip liveness probe of one process."""
        shard_ids = self.shards_of(proc_index)
        if not shard_ids:
            return False
        try:
            self.request(shard_ids[0], codec.MSG_PING, timeout=timeout)
            return True
        except (ShardProcessDied, WorkerCommandError):
            return False

    def stats(self) -> Dict[str, object]:
        """JSON-able supervisor state (for reports and debugging)."""
        return {
            "num_procs": self.num_procs,
            "num_shards": self.num_shards,
            "restarts": self.restarts,
            "spawns": list(self._spawns),
            "alive": [
                worker is not None and worker.process.is_alive()
                for worker in self._workers
            ],
            "start_method": self._ctx.get_start_method(),
        }

    # ------------------------------------------------------------------
    # Shutdown.
    # ------------------------------------------------------------------

    def close(self, shutdown_timeout: float = 10.0) -> None:
        """Stop the heartbeat, shut workers down, reap every process.

        Idempotent and teardown-safe: a polite ``SHUTDOWN`` exchange
        first, escalating to SIGKILL for anything still alive.
        """
        if self._closed:
            return
        self._closed = True
        self._heartbeat_stop.set()
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=5.0)
            self._heartbeat_thread = None
        deadline = time.monotonic() + shutdown_timeout
        for proc_index in range(self.num_procs):
            with self._locks[proc_index]:
                worker = self._workers[proc_index]
                if worker is None:
                    continue
                if worker.process.is_alive():
                    try:
                        seq = next(self._seqs[proc_index])
                        worker.conn.send_bytes(
                            codec.encode_frame(
                                codec.MSG_SHUTDOWN, -1, seq
                            )
                        )
                        remaining = max(0.1, deadline - time.monotonic())
                        if worker.conn.poll(remaining):
                            worker.conn.recv_bytes()
                    except (BrokenPipeError, EOFError, OSError):
                        pass
                    worker.process.join(
                        timeout=max(0.1, deadline - time.monotonic())
                    )
                    if worker.process.is_alive():
                        try:
                            os.kill(worker.process.pid, signal.SIGKILL)
                        except (ProcessLookupError, OSError):
                            pass
                        worker.process.join(timeout=5.0)
                self._reap(worker)
                self._workers[proc_index] = None

    def __enter__(self) -> "ShardProcessSupervisor":
        self.start()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()
