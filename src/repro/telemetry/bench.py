"""The ``python -m repro trace-bench`` workload: one traced pipeline run.

Drives a synthetic workload through every instrumented layer with global
tracing enabled, then rolls the captured spans into a
:class:`~repro.telemetry.profile.PipelineProfile`:

1. **Pipeline phase** — a :class:`~repro.core.parallel.ParallelOctoCacheMap`
   maps the dataset's scan stream (sensor / cache / octree / parallel
   spans, cache hit counters, thread-2 queue-wait handoffs).
2. **Service phase** — the same scans through a sharded
   :class:`~repro.service.OccupancyMapService` with interleaved queries
   (service-category ingest/apply/queue-wait/query spans; the service's
   :class:`~repro.service.metrics.MetricsRegistry` is fed from the same
   events, which :func:`run_trace_bench` cross-checks).
3. **Simcache phase** — one batch inserted into a visit-recorded octree
   and replayed through the modeled memory hierarchy (simcache span).

The result exports as a Chrome-trace (`--chrome-trace`) openable in
``chrome://tracing`` / Perfetto, a JSON profile (`--trace-out`), and the
paper-style stage-decomposition table on stdout.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.core.parallel import ParallelOctoCacheMap
from repro.datasets.workload import load_bench_workload
from repro.octree.instrumented import recorded_octree
from repro.sensor.scaninsert import trace_scan
from repro.service.server import OccupancyMapService, ServiceConfig
from repro.simcache.trace import replay_trace
from repro.telemetry.profile import PipelineProfile
from repro.telemetry.sinks import ChromeTraceSink, RingBufferSink
from repro.telemetry.tracer import tracing

__all__ = ["TraceBenchReport", "run_trace_bench"]

#: Node-visit trace cap for the simcache phase (replay is O(trace)).
_MAX_SIM_TRACE = 60_000


@dataclass
class TraceBenchReport:
    """Everything one traced run produced.

    Attributes:
        dataset: dataset name driven through the layers.
        batches: scans fed to each phase.
        profile: the rolled-up stage decomposition + counters.
        chrome: the collected ``trace_event`` sink (exportable).
        service_stats: the service phase's final ``stats_dict()``.
        consistency: metric-total vs. span-count pairs that must agree
            (``name -> (metrics_total, span_count)``).
        sim_accesses / sim_mean_cycles: simcache phase replay summary.
    """

    dataset: str
    batches: int
    profile: PipelineProfile
    chrome: ChromeTraceSink
    service_stats: Dict[str, object] = field(default_factory=dict)
    consistency: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    sim_accesses: int = 0
    sim_mean_cycles: float = 0.0

    @property
    def consistent(self) -> bool:
        """True when every metrics total equals its span/event count."""
        return all(a == b for a, b in self.consistency.values())

    def to_dict(self) -> Dict[str, object]:
        """The machine-readable summary (``trace-bench --json``)."""
        return {
            "dataset": self.dataset,
            "batches": self.batches,
            "consistent": self.consistent,
            "consistency": {
                name: {"metrics_total": metric, "span_count": spans}
                for name, (metric, spans) in sorted(self.consistency.items())
            },
            "sim_accesses": self.sim_accesses,
            "sim_mean_cycles": self.sim_mean_cycles,
            "cache": self.profile.cache_summary(),
            "profile": self.profile.to_dict(),
        }


def _consistency_pairs(
    profile: PipelineProfile, service_stats: Dict[str, object]
) -> Dict[str, Tuple[float, float]]:
    """Metric totals that must equal span counts from the same events."""
    metrics = service_stats.get("metrics", {})
    histograms = metrics.get("histograms", {})
    counters = metrics.get("counters", {})
    pairs: Dict[str, Tuple[float, float]] = {}
    for span_name in ("ingest.trace", "ingest.enqueue", "shard.apply"):
        stage = profile.stages.get(("service", span_name))
        hist = histograms.get(span_name + "_seconds")
        if stage is not None or hist is not None:
            pairs[span_name] = (
                float(hist["count"]) if hist else 0.0,
                float(stage.count) if stage else 0.0,
            )
    # Counter cross-check: scans submitted vs. ingest.trace spans.
    if "ingest.scans" in counters:
        stage = profile.stages.get(("service", "ingest.trace"))
        pairs["ingest.scans"] = (
            float(counters["ingest.scans"]),
            float(stage.count) if stage else 0.0,
        )
    return pairs


def run_trace_bench(
    dataset_name: str = "fr079_corridor",
    batches: int = 6,
    resolution: float = 0.3,
    depth: int = 10,
    shards: int = 2,
    queries_per_scan: int = 2,
    ray_scale: float = 0.5,
    ring_capacity: Optional[int] = None,
    workers: str = "thread",
    num_procs: Optional[int] = None,
    kernel: str = "scalar",
) -> TraceBenchReport:
    """Run the three traced phases and aggregate the span stream.

    Returns a :class:`TraceBenchReport`; the caller decides what to print
    or export (see ``python -m repro trace-bench``).

    ``workers="process"`` runs the service phase on the multiprocess
    backend; child-process spans are relayed into the service tracer and
    mirrored to the global one, so the consistency cross-check (metric
    totals vs. span counts from the same events) holds in both modes.
    """
    if batches < 1:
        raise ValueError(f"batches must be >= 1, got {batches}")
    workload = load_bench_workload(
        dataset_name, ray_scale=ray_scale, max_batches=batches
    )
    scans = workload.scans
    max_range = workload.max_range

    ring = RingBufferSink(capacity=ring_capacity)
    chrome = ChromeTraceSink()
    with tracing(ring, chrome):
        # Phase 1: the paper's two-thread pipeline.
        with ParallelOctoCacheMap(
            resolution=resolution,
            depth=depth,
            max_range=max_range,
            kernel=kernel,
        ) as pipeline:
            for cloud in scans:
                pipeline.insert_point_cloud(cloud)

        # Phase 2: the sharded service, with interleaved queries.
        config = ServiceConfig(
            resolution=resolution,
            depth=depth,
            num_shards=shards,
            max_range=max_range,
            workers=workers,
            num_procs=num_procs,
            kernel=kernel,
        )
        with OccupancyMapService(config) as service:
            for index, cloud in enumerate(scans):
                service.submit(cloud)
                origin = tuple(cloud.origin)
                for probe in range(queries_per_scan):
                    offset = 0.5 * (probe + 1)
                    service.is_occupied(
                        (origin[0] + offset, origin[1], origin[2])
                    )
                if index == 0:
                    service.cast_ray(origin, (1.0, 0.0, 0.0), max_range=3.0)
            service.flush()
            service_stats = service.stats_dict()

        # Phase 3: replay one batch's octree node visits through the
        # modeled memory hierarchy.
        tree, recorder = recorded_octree(resolution=resolution, depth=depth)
        batch = trace_scan(scans[0], resolution, depth, max_range=max_range)
        for key, occupied in batch.observations:
            tree.update_node(key, occupied)
        replay = replay_trace(recorder.trace[:_MAX_SIM_TRACE])

    profile = PipelineProfile.from_ring(ring)
    return TraceBenchReport(
        dataset=dataset_name,
        batches=len(scans),
        profile=profile,
        chrome=chrome,
        service_stats=service_stats,
        consistency=_consistency_pairs(profile, service_stats),
        sim_accesses=replay.accesses,
        sim_mean_cycles=replay.mean_cycles,
    )
