"""Memory-hierarchy simulator: the stand-in for the Jetson TX2's CPU caches.

The paper's Morton-ordering result (Figure 10) is a *hardware cache
locality* effect: consecutive root-to-leaf insertions re-touch shared
ancestor nodes, and orderings that maximise sharing hit in L1/L2 more
often.  Pure-Python wall-clock cannot expose this (interpreter overhead
dominates), so this package replays the octree's node-visit trace through
a set-associative LRU cache model and converts hits/misses into a modeled
access cost.  Orderings ranked by modeled cost rank the same way the
paper's measured wall-clock does — see DESIGN.md §1.
"""

from repro.simcache.address_space import AddressSpace
from repro.simcache.cache_sim import CacheLevel, CacheSimulator
from repro.simcache.cost_model import (
    AccessCosts,
    MemoryHierarchy,
    jetson_tx2_hierarchy,
    jetson_tx2_hierarchy_with_prefetch,
    scaled_tx2_hierarchy,
)
from repro.simcache.trace import TraceRecorder, replay_trace

__all__ = [
    "AccessCosts",
    "AddressSpace",
    "CacheLevel",
    "CacheSimulator",
    "MemoryHierarchy",
    "TraceRecorder",
    "jetson_tx2_hierarchy",
    "jetson_tx2_hierarchy_with_prefetch",
    "scaled_tx2_hierarchy",
    "replay_trace",
]
