"""Real process death, exact recovery.

The thread backend simulates crashes; the process backend gives us the
real thing.  These tests SIGKILL actual worker processes mid-workload —
either directly or by letting an injected ``shard.apply`` crash be made
real by the service — and verify the service converges on the identical
map a fault-free serial build produces (checkpoint + journal-tail
replay, no double-applied batches, no lost ones).
"""

import os
import signal
import time

from repro.mp.backend import ProcessShardedMap
from repro.octree.merge import map_agreement
from repro.resilience.faults import FaultPlan, FaultSpec
from repro.service.server import OccupancyMapService

from tests.mp.test_process_backend import (
    RESOLUTION,
    DEPTH,
    build_serial,
    make_batches,
    make_config,
)


class TestSigkillRecovery:
    def test_sigkill_mid_workload_recovers_exactly(self):
        """SIGKILL a live worker process between submissions; the service
        transparently respawns it, replays checkpoint + journal tail, and
        the final snapshot agrees 1.0 with the serial oracle."""
        batches = make_batches(num_batches=10, per_batch=50, seed=41)
        with OccupancyMapService(make_config(num_shards=2)) as service:
            supervisor = service.map.supervisor
            for index, batch in enumerate(batches):
                if index == 4:
                    service.flush()
                    victim = supervisor.pid_of(0)
                    assert victim is not None
                    os.kill(victim, signal.SIGKILL)
                    # Wait for the child to actually die before feeding
                    # more work through it.
                    deadline = time.time() + 10.0
                    while supervisor.alive(0) and time.time() < deadline:
                        time.sleep(0.01)
                    assert not supervisor.alive(0)
                service.submit_observations(batch, must_accept=True)
            service.flush()
            snapshot = service.snapshot()
            assert supervisor.pid_of(0) != victim
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0
        assert agreement.compared > 0

    def test_injected_crash_kills_real_process(self):
        """An injected shard.apply crash in process mode SIGKILLs the
        real worker process (not a simulated death), and recovery still
        converges exactly."""
        batches = make_batches(num_batches=8, per_batch=40, seed=43)
        plan = FaultPlan(
            [FaultSpec(site="shard.apply", mode="crash", shard=0, after=2)]
        )
        with OccupancyMapService(
            make_config(num_shards=2), fault_plan=plan
        ) as service:
            first_pid = service.map.supervisor.pid_of(0)
            for batch in batches:
                service.submit_observations(batch, must_accept=True)
            service.flush()
            snapshot = service.snapshot()
            stats = service.stats_dict()
            respawned_pid = service.map.supervisor.pid_of(0)
        counters = stats["metrics"]["counters"]
        assert counters.get("shard.worker_restarts", 0) >= 1
        assert respawned_pid != first_pid
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0

    def test_checkpoints_disabled_replays_whole_journal(self):
        batches = make_batches(num_batches=6, per_batch=30, seed=47)
        with OccupancyMapService(
            make_config(num_shards=2, snapshot_interval=0)
        ) as service:
            for index, batch in enumerate(batches):
                if index == 3:
                    service.flush()
                    assert service.map.kill_shard_process(0)
                service.submit_observations(batch, must_accept=True)
            service.flush()
            snapshot = service.snapshot()
        serial = build_serial(batches)
        serial.finalize()
        assert map_agreement(serial.octree, snapshot).decision_agreement == 1.0


class TestSupervisorLiveness:
    def test_kill_and_respawn_bumps_generation(self):
        with ProcessShardedMap(
            resolution=RESOLUTION, depth=DEPTH, num_shards=2
        ) as pmap:
            supervisor = pmap.supervisor
            gen_before = supervisor.generation(0)
            assert supervisor.ping(0)
            assert pmap.kill_shard_process(0)
            assert not supervisor.alive(0)
            # Next apply transparently respawns the worker.
            pmap.apply_to_shard(0, [((1, 1, 1), True)])
            assert supervisor.alive(0)
            assert supervisor.generation(0) > gen_before
            assert supervisor.restarts >= 1

    def test_query_on_dead_shard_degrades_to_unknown(self):
        """Queries never resurrect a dead worker: they degrade to None
        (unknown) and leave recovery to the ingest path."""
        with ProcessShardedMap(
            resolution=RESOLUTION, depth=DEPTH, num_shards=2
        ) as pmap:
            key = (1, 1, 1)
            shard = pmap.router.shard_of(key)
            pmap.apply_to_shard(shard, [(key, True)])
            assert pmap.query_key(key) is not None
            assert pmap.kill_shard_process(shard)
            assert pmap.query_key(key) is None

    def test_standalone_recovery_source_replays_tail(self):
        """The backend's lazy restore replays exactly the applied prefix
        of the journal tail — the in-flight entry (journal appends before
        apply) must not be double-counted."""
        applied = []

        def recovery_source(shard_id):
            return None, [list(batch) for batch in applied]

        pmap = ProcessShardedMap(
            resolution=RESOLUTION, depth=DEPTH, num_shards=1
        )
        try:
            pmap.recovery_source = recovery_source
            batches = make_batches(num_batches=5, per_batch=25, seed=53)
            for batch in batches[:3]:
                applied.append(batch)
                pmap.apply_to_shard(0, batch)
            assert pmap.kill_shard_process(0)
            for batch in batches[3:]:
                applied.append(batch)
                pmap.apply_to_shard(0, batch)
            pmap.finalize()
            snapshot = pmap.snapshot()
        finally:
            pmap.close()
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0
