"""Log-odds occupancy arithmetic (OctoMap §III / paper §2.2).

Occupancy is stored as a log-odds value clamped to
``[min_occ, max_occ]``.  A *hit* (voxel observed occupied) adds
``delta_occupied``; a *miss* (ray passed through) subtracts ``delta_free``.
Clamping keeps the map responsive in dynamic environments.  A voxel is
considered occupied when its log-odds value meets the threshold ``t``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["OccupancyParams", "logodds", "probability"]


def logodds(p: float) -> float:
    """Log-odds of a probability: ``log(p / (1 - p))``."""
    if not 0.0 < p < 1.0:
        raise ValueError(f"probability must be in (0, 1), got {p}")
    return math.log(p / (1.0 - p))


def probability(lo: float) -> float:
    """Probability corresponding to a log-odds value."""
    return 1.0 / (1.0 + math.exp(-lo))


@dataclass(frozen=True)
class OccupancyParams:
    """Occupancy-update parameters, defaulting to OctoMap's standard values.

    Attributes:
        threshold: log-odds occupancy threshold ``t``; ``value >= t`` means
            occupied.  OctoMap default 0.5 probability → 0.0 log-odds.
        delta_occupied: log-odds increment per hit (default P=0.7).
        delta_free: log-odds decrement per miss (default P=0.4 → 0.41...).
        min_occ: lower clamp (default P=0.12).
        max_occ: upper clamp (default P=0.97).
    """

    threshold: float = 0.0
    delta_occupied: float = logodds(0.7)
    delta_free: float = -logodds(0.4)  # positive magnitude, subtracted on miss
    min_occ: float = logodds(0.12)
    max_occ: float = logodds(0.97)

    def __post_init__(self) -> None:
        if self.delta_occupied <= 0:
            raise ValueError("delta_occupied must be positive")
        if self.delta_free <= 0:
            raise ValueError("delta_free must be positive")
        if self.min_occ >= self.max_occ:
            raise ValueError("min_occ must be below max_occ")
        if not self.min_occ <= self.threshold <= self.max_occ:
            raise ValueError("threshold must lie within the clamp range")

    def update(self, value: float, occupied: bool) -> float:
        """Apply one observation to a log-odds ``value`` and clamp.

        Implements the paper's update rule (§2.2):
        ``min(value + delta_occupied, max_occ)`` on a hit,
        ``max(value - delta_free, min_occ)`` on a miss.
        """
        if occupied:
            return min(value + self.delta_occupied, self.max_occ)
        return max(value - self.delta_free, self.min_occ)

    def accumulate(self, value: float, delta: float) -> float:
        """Fold an already-accumulated log-odds ``delta`` into ``value``.

        Used when merging a cache cell (which holds the accumulated
        occupancy of several observations) into the octree; the result is
        clamped exactly as a sequence of individual updates would be.
        """
        return min(max(value + delta, self.min_occ), self.max_occ)

    def is_occupied(self, value: float) -> bool:
        """Whether a log-odds value counts as occupied."""
        return value >= self.threshold
