"""Simulated heap placement of octree nodes.

Every octree node carries a ``node_id`` from a monotonically increasing
allocation counter.  The address space maps ids to simulated byte
addresses.  Two placements are provided:

- ``sequential`` — bump allocation, ids placed back to back (glibc-like
  behaviour for steady same-size allocations).
- ``shuffled`` — ids scattered pseudo-randomly over a larger arena,
  modelling a fragmented heap.  Useful as an ablation: the Morton-order
  benefit is *temporal* (re-touching the same ancestors), so it must
  survive shuffled placement.
"""

from __future__ import annotations

__all__ = ["AddressSpace"]

_PLACEMENTS = ("sequential", "shuffled")


class AddressSpace:
    """Maps node ids to simulated heap addresses.

    Args:
        node_bytes: simulated size of one octree node.  48 bytes
            approximates OctoMap's C++ node (vtable + value + children
            pointer array slot).
        placement: ``"sequential"`` or ``"shuffled"``.
        seed: PRNG seed for the shuffled placement.
    """

    def __init__(
        self,
        node_bytes: int = 48,
        placement: str = "sequential",
        seed: int = 0x5EED,
    ) -> None:
        if node_bytes <= 0:
            raise ValueError(f"node_bytes must be positive, got {node_bytes}")
        if placement not in _PLACEMENTS:
            raise ValueError(
                f"placement must be one of {_PLACEMENTS}, got {placement!r}"
            )
        self.node_bytes = node_bytes
        self.placement = placement
        self._seed = seed

    def address_of(self, node_id: int) -> int:
        """Simulated byte address of the node with ``node_id``."""
        if node_id < 0:
            raise ValueError(f"node_id must be non-negative, got {node_id}")
        if self.placement == "sequential":
            return node_id * self.node_bytes
        # Shuffled: a cheap invertible mix (splitmix-style) spreads ids over
        # a 2^40-byte arena while staying deterministic for a given seed.
        mixed = (node_id + self._seed) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 30
        mixed = (mixed * 0xBF58476D1CE4E5B9) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 27
        mixed = (mixed * 0x94D049BB133111EB) & 0xFFFFFFFFFFFFFFFF
        mixed ^= mixed >> 31
        return (mixed & ((1 << 40) - 1)) // self.node_bytes * self.node_bytes
