"""OctoMap-style probabilistic occupancy octree substrate.

This package reimplements the parts of OctoMap (Hornung et al., 2013) that
OctoCache builds on: discrete voxel keys, log-odds occupancy updates with
clamping, a pointer octree with max-of-children inner nodes and pruning,
leaf/bbox iteration, multi-resolution queries, map ray casting, binary
serialisation, and tree merging.  The tree exposes node-visit
instrumentation so the :mod:`repro.simcache` memory-hierarchy simulator
can replay its access trace.
"""

from repro.octree.arraytree import ArrayOctree
from repro.octree.key import VoxelKey, coord_to_key, key_to_coord, key_to_morton
from repro.octree.filters import connected_components, largest_component, remove_speckles
from repro.octree.merge import map_agreement, merge_tree
from repro.octree.pathcache import PathCachingInserter
from repro.octree.occupancy import OccupancyParams, logodds, probability
from repro.octree.node import OctreeNode
from repro.octree.rayquery import RayHit, cast_ray
from repro.octree.serialize import load_tree, save_tree, tree_from_bytes, tree_to_bytes
from repro.octree.tree import OccupancyOctree

__all__ = [
    "ArrayOctree",
    "OccupancyOctree",
    "OccupancyParams",
    "OctreeNode",
    "PathCachingInserter",
    "RayHit",
    "VoxelKey",
    "cast_ray",
    "connected_components",
    "largest_component",
    "remove_speckles",
    "coord_to_key",
    "key_to_coord",
    "key_to_morton",
    "load_tree",
    "logodds",
    "map_agreement",
    "merge_tree",
    "probability",
    "save_tree",
    "tree_from_bytes",
    "tree_to_bytes",
]
