"""Multi-waypoint missions (search-and-rescue patterns, paper §1).

The paper motivates OctoCache with time-sensitive missions — search and
rescue, surveillance — which visit a *sequence* of goals rather than one.
``run_waypoint_mission`` chains the single-goal closed loop over a list
of waypoints, reusing one mapping system throughout, so later legs profit
from the map (and the voxel cache) built on earlier ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from repro.baselines.interface import MappingSystem
from repro.uav.environments import Environment
from repro.uav.mission import MissionConfig, MissionResult, run_mission
from repro.uav.planner import GreedyPlanner

__all__ = ["WaypointMissionResult", "run_waypoint_mission"]

Vec3 = Tuple[float, float, float]


@dataclass
class WaypointMissionResult:
    """Aggregated outcome of a multi-leg mission.

    Attributes:
        legs: the single-goal results in visiting order.
        success: every leg reached its waypoint.
        total_time: summed completion time across legs (the paper's
            mission-completion metric for the whole pattern).
        total_energy: summed rotor energy.
        total_distance: summed distance flown.
    """

    legs: List[MissionResult] = field(default_factory=list)

    @property
    def success(self) -> bool:
        return bool(self.legs) and all(leg.success for leg in self.legs)

    @property
    def crashed(self) -> bool:
        return any(leg.crashed for leg in self.legs)

    @property
    def total_time(self) -> float:
        return sum(leg.completion_time for leg in self.legs)

    @property
    def total_energy(self) -> float:
        return sum(leg.energy_joules for leg in self.legs)

    @property
    def total_distance(self) -> float:
        return sum(leg.distance_travelled for leg in self.legs)


def run_waypoint_mission(
    config: MissionConfig,
    mapping_factory: Callable[[float], MappingSystem],
    waypoints: Sequence[Vec3],
    planner: Optional[GreedyPlanner] = None,
) -> WaypointMissionResult:
    """Visit ``waypoints`` in order with one persistent mapping system.

    Each leg runs the standard closed loop; the mapping system and
    planner persist across legs, so revisited space is already mapped —
    the inter-batch overlap regime OctoCache feeds on.  A leg that fails
    (crash or budget) aborts the remaining waypoints.

    Args:
        config: base mission parameters; each leg replaces the goal.
        mapping_factory: builds the (single, persistent) mapping system.
        waypoints: goals in visiting order, starting from ``config``'s
            environment start.
    """
    if not waypoints:
        raise ValueError("need at least one waypoint")
    result = WaypointMissionResult()
    planner = planner or GreedyPlanner()
    mapping_holder: List[MappingSystem] = []

    def persistent_factory(resolution: float) -> MappingSystem:
        if not mapping_holder:
            mapping_holder.append(mapping_factory(resolution))
        return mapping_holder[0]

    position = config.environment.start
    for waypoint in waypoints:
        env = config.environment
        leg_environment = Environment(
            name=env.name,
            scene=env.scene,
            start=position,
            goal=tuple(waypoint),
            sensing_range=env.sensing_range,
            resolution=env.resolution,
            rt_resolution=env.rt_resolution,
        )
        leg_config = MissionConfig(
            environment=leg_environment,
            uav=config.uav,
            sensing_range=config.sensing_range,
            resolution=config.resolution,
            latency_scale=config.latency_scale,
            goal_tolerance=config.goal_tolerance,
            max_cycles=config.max_cycles,
            max_sim_time=config.max_sim_time,
            model_octree_offload=config.model_octree_offload,
        )
        leg = run_mission(leg_config, persistent_factory, planner=planner)
        result.legs.append(leg)
        if not leg.success:
            break
        # Continue the next leg from (approximately) the reached goal.
        position = tuple(waypoint)
    return result
