"""The :class:`MemoryReport` tree and the :class:`MemoryMeter` protocol.

A report is a tree of components: each node carries the bytes and object
count attributed *directly* to that component (``nbytes`` / ``count``)
plus child components.  ``total_bytes`` folds the subtree.  Reports are
plain data — JSON-able with :meth:`MemoryReport.to_dict`, rebuildable
with :meth:`MemoryReport.from_dict` (that is how worker processes ship
their breakdowns over the wire), and mergeable with
:meth:`MemoryReport.merged` (that is how per-shard slots roll up into a
per-tenant total).
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence

__all__ = ["MemoryMeter", "MemoryReport"]


class MemoryReport:
    """One component's footprint: direct bytes/count plus children.

    Attributes:
        name: component label, unique among siblings by convention.
        nbytes: bytes attributed directly to this component (children
            excluded — fold with :attr:`total_bytes`).
        count: object count behind ``nbytes`` (cells, nodes, entries…);
            0 when the component is a pure grouping node.
        children: sub-component reports.
    """

    __slots__ = ("name", "nbytes", "count", "children")

    def __init__(
        self,
        name: str,
        nbytes: int = 0,
        count: int = 0,
        children: Optional[Sequence["MemoryReport"]] = None,
    ) -> None:
        if nbytes < 0:
            raise ValueError(f"nbytes must be >= 0, got {nbytes} for {name!r}")
        if count < 0:
            raise ValueError(f"count must be >= 0, got {count} for {name!r}")
        self.name = name
        self.nbytes = int(nbytes)
        self.count = int(count)
        self.children: List[MemoryReport] = list(children or [])

    # ------------------------------------------------------------------
    # Folds and lookups.
    # ------------------------------------------------------------------

    @property
    def total_bytes(self) -> int:
        """Bytes of this component plus its whole subtree."""
        return self.nbytes + sum(child.total_bytes for child in self.children)

    @property
    def total_count(self) -> int:
        """Object count of this component plus its whole subtree."""
        return self.count + sum(child.total_count for child in self.children)

    def child(self, name: str) -> Optional["MemoryReport"]:
        """The direct child named ``name`` (first match), or ``None``."""
        for child in self.children:
            if child.name == name:
                return child
        return None

    def find(self, path: str) -> Optional["MemoryReport"]:
        """Resolve a ``"a/b/c"`` slash path from this node, or ``None``."""
        node: Optional[MemoryReport] = self
        for part in path.split("/"):
            if node is None:
                return None
            node = node.child(part)
        return node

    def walk(self) -> Iterator["MemoryReport"]:
        """Yield this node then every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def leaf_totals(self) -> Dict[str, int]:
        """``slash/path → total_bytes`` for every *leaf* component.

        The flat view drift checks compare: two reports agree exactly
        when their leaf totals are equal key-for-key and byte-for-byte.
        """
        totals: Dict[str, int] = {}

        def visit(node: MemoryReport, prefix: str) -> None:
            path = f"{prefix}/{node.name}" if prefix else node.name
            if not node.children:
                totals[path] = totals.get(path, 0) + node.nbytes
                return
            if node.nbytes:
                totals[path] = totals.get(path, 0) + node.nbytes
            for child in node.children:
                visit(child, path)

        visit(self, "")
        return totals

    def drift_bytes(self, other: "MemoryReport") -> int:
        """Summed absolute per-leaf difference against ``other``.

        Zero iff the two reports attribute identical bytes to identical
        components — the mem-bench ``mem_accounting_drift`` metric is
        this fold of the incremental report against the exact recount.
        """
        mine = self.leaf_totals()
        theirs = other.leaf_totals()
        drift = 0
        for path in set(mine) | set(theirs):
            drift += abs(mine.get(path, 0) - theirs.get(path, 0))
        return drift

    # ------------------------------------------------------------------
    # Serialisation (admin routes, the mp wire, bench reports).
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "name": self.name,
            "bytes": self.nbytes,
            "total_bytes": self.total_bytes,
        }
        if self.count:
            out["count"] = self.count
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "MemoryReport":
        return cls(
            name=str(data["name"]),
            nbytes=int(data.get("bytes", 0)),
            count=int(data.get("count", 0)),
            children=[
                cls.from_dict(child) for child in data.get("children", [])
            ],
        )

    def merged(self, other: "MemoryReport", name: Optional[str] = None) -> "MemoryReport":
        """Component-wise sum of two reports (children matched by name).

        Children present on only one side pass through; the merged node
        keeps ``name`` (defaulting to this report's).  Used to roll one
        tenant's per-shard slot reports into a single attribution tree.
        """
        merged = MemoryReport(
            name or self.name,
            self.nbytes + other.nbytes,
            self.count + other.count,
        )
        theirs = {child.name: child for child in other.children}
        for child in self.children:
            match = theirs.pop(child.name, None)
            merged.children.append(
                child.merged(match) if match is not None else child
            )
        merged.children.extend(theirs.values())
        return merged

    def render(self, indent: int = 0) -> str:
        """Human-readable tree (the ``mem-bench`` text report)."""
        pad = "  " * indent
        suffix = f"  ({self.count} objs)" if self.count else ""
        lines = [f"{pad}{self.name}: {self.total_bytes} B{suffix}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MemoryReport({self.name!r}, total={self.total_bytes}B, "
            f"children={len(self.children)})"
        )


class MemoryMeter:
    """Protocol: a structure that can account for its own bytes.

    Implementors return a fresh :class:`MemoryReport` from counters they
    maintain incrementally (O(1) per call); passing ``exact=True`` must
    recount by walking the underlying storage instead — the two must
    agree byte-for-byte, which is what the drift gate checks.
    """

    def memory_breakdown(self, exact: bool = False) -> MemoryReport:
        raise NotImplementedError
