"""Prometheus text exposition: format, escaping, and registry guards."""

import pytest

from repro.obs.exposition import (
    escape_label_value,
    format_bound,
    render_prometheus,
)
from repro.service.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    sanitize_metric_name,
)


def parse_samples(text):
    """Exposition text → {series_with_labels: float_value}."""
    samples = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        series, value = line.rsplit(" ", 1)
        samples[series] = float(value)
    return samples


class TestNameSanitisation:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("ingest.scans") == "ingest_scans"

    def test_prometheus_grammar_characters_survive(self):
        assert sanitize_metric_name("a_b:c9") == "a_b:c9"

    def test_leading_digit_is_prefixed(self):
        assert sanitize_metric_name("9lives") == "_9lives"

    def test_unicode_and_spaces_are_replaced(self):
        assert sanitize_metric_name("q size µs") == "q_size__s"

    def test_empty_name_yields_placeholder(self):
        assert sanitize_metric_name("") == "_"


class TestCounters:
    def test_counter_total_suffix_and_type_line(self):
        registry = MetricsRegistry()
        registry.counter("ingest.scans").inc(7)
        text = registry.to_prometheus_text()
        assert "# TYPE repro_ingest_scans_total counter" in text
        assert parse_samples(text)["repro_ingest_scans_total"] == 7

    def test_namespace_prefix_is_sanitised_and_optional(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        assert "my_ns_x_total" in registry.to_prometheus_text(namespace="my.ns")
        assert registry.to_prometheus_text(namespace="").startswith(
            "# TYPE x_total"
        )

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""


class TestGauges:
    def test_gauge_exposes_value_and_high_water_mark(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("queue_depth.shard0")
        gauge.set(5)
        gauge.set(2)
        samples = parse_samples(registry.to_prometheus_text())
        assert samples["repro_queue_depth_shard0"] == 2
        assert samples["repro_queue_depth_shard0_max"] == 5


class TestStateGauges:
    def test_one_hot_over_every_seen_state(self):
        registry = MetricsRegistry()
        state = registry.state("shard_health.shard0", initial="healthy")
        state.set("recovering")
        state.set("healthy")
        samples = parse_samples(registry.to_prometheus_text())
        assert samples['repro_shard_health_shard0{state="healthy"}'] == 1
        assert samples['repro_shard_health_shard0{state="recovering"}'] == 0
        assert samples["repro_shard_health_shard0_transitions_total"] == 2
        one_hot = [
            value
            for series, value in samples.items()
            if series.startswith("repro_shard_health_shard0{")
        ]
        assert sum(one_hot) == 1

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.state("s", initial='we"ird\\state\nhere')
        text = registry.to_prometheus_text()
        assert '{state="we\\"ird\\\\state\\nhere"}' in text

    def test_escape_label_value_rules(self):
        assert escape_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'


class TestHistograms:
    def test_cumulative_buckets_end_at_count(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        for value in (0.0005, 0.003, 0.003, 0.2, 99.0):
            histogram.record(value)
        text = registry.to_prometheus_text()
        samples = parse_samples(text)
        bucket_values = [
            samples[f'repro_lat_bucket{{le="{format_bound(bound)}"}}']
            for bound in DEFAULT_BUCKETS
        ]
        assert bucket_values == sorted(bucket_values)
        # 99.0 lands only in +Inf, never in a finite bucket.
        assert bucket_values[-1] == 4
        assert samples['repro_lat_bucket{le="+Inf"}'] == 5
        assert samples["repro_lat_count"] == 5
        assert samples["repro_lat_sum"] == pytest.approx(0.0005 + 0.006 + 0.2 + 99.0)
        assert "# TYPE repro_lat histogram" in text

    def test_bucket_lines_come_out_in_bound_order(self):
        registry = MetricsRegistry()
        registry.histogram("lat").record(0.01)
        lines = [
            line
            for line in registry.to_prometheus_text().splitlines()
            if line.startswith("repro_lat_bucket")
        ]
        bounds = [line.split('le="')[1].split('"')[0] for line in lines]
        assert bounds[-1] == "+Inf"
        floats = [float(bound) for bound in bounds[:-1]]
        assert floats == sorted(floats)

    def test_exposition_state_is_internally_consistent(self):
        histogram = Histogram()
        for value in (1e-4, 0.5, 3.0):
            histogram.record(value)
        bounds, cumulative, count, total = histogram.exposition_state()
        assert len(bounds) == len(cumulative)
        assert cumulative == sorted(cumulative)
        assert cumulative[-1] <= count
        assert total == pytest.approx(3.5001)

    def test_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram(buckets=(0.1, 0.1, 0.2))
        with pytest.raises(ValueError):
            Histogram(buckets=(0.2, 0.1))


class TestFormatting:
    def test_format_bound_integral_and_fractional(self):
        assert format_bound(1.0) == "1.0"
        assert format_bound(0.25) == "0.25"
        assert format_bound(1e-5) == "1e-05"


class TestRegistryGuards:
    def test_reregistration_reuses_the_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("g") is registry.gauge("g")
        assert registry.histogram("h") is registry.histogram("h")
        assert registry.state("s") is registry.state("s")

    def test_reuse_preserves_recorded_values(self):
        # The restart scenario: a component re-registers its metrics and
        # must land on the live series, not shadow it with a fresh zero.
        registry = MetricsRegistry()
        registry.counter("ingest.scans").inc(5)
        registry.histogram("lat").record(0.1)
        registry.state("health", initial="healthy").set("recovering")
        assert registry.counter("ingest.scans").value == 5
        assert registry.histogram("lat").count == 1
        assert registry.state("health").state == "recovering"

    def test_cross_kind_registration_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_sanitised_name_collision_raises(self):
        registry = MetricsRegistry()
        registry.counter("a.b")
        with pytest.raises(ValueError, match="collides"):
            registry.counter("a_b")

    def test_repeat_scrapes_are_byte_identical(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").record(0.01)
        registry.state("s", initial="up").set("down")
        assert registry.to_prometheus_text() == registry.to_prometheus_text()

    def test_snapshot_counter_totals_match_exposition(self):
        registry = MetricsRegistry()
        registry.counter("ingest.scans").inc(11)
        registry.counter("query.points").inc(4)
        samples = parse_samples(registry.to_prometheus_text())
        for name, value in registry.snapshot()["counters"].items():
            series = "repro_" + sanitize_metric_name(name) + "_total"
            assert samples[series] == value
