"""Versioned, pickle-free wire codec for the multiprocess shard engine.

Every message between the service parent and a shard worker process is
one *frame*: a fixed little-endian header (magic, version, message type,
shard id, sequence number, payload length), the payload, and a CRC-32 of
everything before it — the same corruption-fails-loudly discipline as
the serialize-v2 octree format (:mod:`repro.octree.serialize`), whose
blobs ride inside snapshot/restore payloads unmodified.

Nothing here touches ``pickle``: bulk voxel data moves as packed
``array`` buffers (u32 key components + one occupancy byte per
observation), floats as IEEE-754 doubles, and structured odds-and-ends
(stats dicts, telemetry relay events, worker config) as UTF-8 JSON.
That keeps the protocol auditable, version-checkable, and immune to the
arbitrary-code-execution hazard of unpickling bytes from a crashed or
corrupted worker.

Replies share one envelope (:func:`encode_reply`): a body specific to
the request type plus the worker's drained telemetry relay events, so
every round trip piggybacks the child's spans/counters back to the
parent registry without a separate channel.
"""

from __future__ import annotations

import json
import struct
import sys
import zlib
from array import array
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.octree.key import VoxelKey

__all__ = [
    "CodecError",
    "Frame",
    "MSG_APPLY",
    "MSG_BOX_QUERY",
    "MSG_DROP_TENANT",
    "MSG_ERROR",
    "MSG_FINALIZE",
    "MSG_MEM",
    "MSG_OK",
    "MSG_PING",
    "MSG_QUERY_MANY",
    "MSG_RESTORE",
    "MSG_SNAPSHOT",
    "MSG_SHUTDOWN",
    "MSG_STATS",
    "WIRE_VERSION",
    "decode_busy_seconds",
    "decode_frame",
    "decode_json",
    "decode_keys",
    "decode_observations",
    "decode_reply",
    "decode_restore",
    "decode_values",
    "encode_busy_seconds",
    "encode_frame",
    "encode_json",
    "encode_keys",
    "encode_observations",
    "encode_reply",
    "encode_restore",
    "encode_values",
    "message_name",
]

_MAGIC = b"RMPC"

#: Wire protocol version; a mismatched worker fails the handshake loudly
#: instead of misparsing frames.  v2 added the trace-context field
#: (``parent_span``) to the fixed header; v3 adds the tenant slot (u32,
#: 0 = the default single-tenant map) so one worker process hosts many
#: tenants' shard pipelines side by side.
WIRE_VERSION = 3

# Request types (parent -> worker).
MSG_APPLY = 1
MSG_QUERY_MANY = 2
MSG_BOX_QUERY = 3
MSG_SNAPSHOT = 4
MSG_RESTORE = 5
MSG_STATS = 6
MSG_FINALIZE = 7
MSG_PING = 8
MSG_SHUTDOWN = 9
MSG_DROP_TENANT = 10
MSG_MEM = 11
# Reply types (worker -> parent).
MSG_OK = 20
MSG_ERROR = 21

_NAMES = {
    MSG_APPLY: "APPLY",
    MSG_QUERY_MANY: "QUERY_MANY",
    MSG_BOX_QUERY: "BOX_QUERY",
    MSG_SNAPSHOT: "SNAPSHOT",
    MSG_RESTORE: "RESTORE",
    MSG_STATS: "STATS",
    MSG_FINALIZE: "FINALIZE",
    MSG_PING: "PING",
    MSG_SHUTDOWN: "SHUTDOWN",
    MSG_DROP_TENANT: "DROP_TENANT",
    MSG_MEM: "MEM",
    MSG_OK: "OK",
    MSG_ERROR: "ERROR",
}

# magic, version, type, shard, seq, payload length, parent span id,
# tenant slot.
_HEADER = struct.Struct("<4sBBiIIQI")
_CRC = struct.Struct("<I")
_U32 = struct.Struct("<I")
_F64 = struct.Struct("<d")
_RESTORE_HEAD = struct.Struct("<BII")


class CodecError(ValueError):
    """A frame or payload failed structural or CRC validation."""


def message_name(msg_type: int) -> str:
    """Human-readable message-type name (for errors and logs)."""
    return _NAMES.get(msg_type, f"type{msg_type}")


@dataclass(frozen=True)
class Frame:
    """One decoded wire frame.

    ``parent_span`` is the sender's active span id (0 = none): the
    trace context that lets a worker process parent its spans under the
    request span that crossed the pipe, so process-mode waterfalls join
    into one tree.  ``tenant`` is the tenant slot the command targets
    (0 = the default single-tenant map); it rides the fixed header next
    to the trace context so every command addresses one tenant's shard
    pipeline without touching the payload formats.
    """

    type: int
    shard: int
    seq: int
    payload: bytes
    parent_span: int = 0
    tenant: int = 0


def encode_frame(
    msg_type: int,
    shard: int,
    seq: int,
    payload: bytes = b"",
    parent_span: int = 0,
    tenant: int = 0,
) -> bytes:
    """Frame one message: header + payload + CRC-32 trailer."""
    if msg_type not in _NAMES:
        raise CodecError(f"unknown message type {msg_type}")
    head = _HEADER.pack(
        _MAGIC,
        WIRE_VERSION,
        msg_type,
        shard,
        seq,
        len(payload),
        parent_span & 0xFFFFFFFFFFFFFFFF,
        tenant & 0xFFFFFFFF,
    )
    body = head + payload
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def decode_frame(data: bytes) -> Frame:
    """Validate and decode one frame (magic, version, length, CRC)."""
    if len(data) < _HEADER.size + _CRC.size:
        raise CodecError(f"truncated frame ({len(data)} bytes)")
    (stored_crc,) = _CRC.unpack_from(data, len(data) - _CRC.size)
    body = data[: -_CRC.size]
    actual_crc = zlib.crc32(body) & 0xFFFFFFFF
    if stored_crc != actual_crc:
        raise CodecError(
            f"corrupt frame: CRC-32 mismatch "
            f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})"
        )
    magic, version, msg_type, shard, seq, length, parent_span, tenant = (
        _HEADER.unpack_from(body, 0)
    )
    if magic != _MAGIC:
        raise CodecError(f"bad magic {magic!r}; not an mp wire frame")
    if version != WIRE_VERSION:
        raise CodecError(
            f"wire version mismatch: frame v{version}, codec v{WIRE_VERSION}"
        )
    payload = body[_HEADER.size:]
    if len(payload) != length:
        raise CodecError(
            f"frame length mismatch: header says {length}, got {len(payload)}"
        )
    return Frame(
        type=msg_type,
        shard=shard,
        seq=seq,
        payload=payload,
        parent_span=parent_span,
        tenant=tenant,
    )


# ----------------------------------------------------------------------
# Bulk voxel payloads: packed arrays, not per-item Python objects.
# ----------------------------------------------------------------------


def _pack_u32(values: Sequence[int]) -> bytes:
    arr = array("I", values)
    if arr.itemsize != 4:  # pragma: no cover - exotic platforms only
        arr = array("L", values)
    if sys.byteorder == "big":  # pragma: no cover - wire is little-endian
        arr = array(arr.typecode, arr)
        arr.byteswap()
    return arr.tobytes()


def _unpack_u32(buffer: bytes, count: int) -> array:
    arr = array("I")
    if arr.itemsize != 4:  # pragma: no cover - exotic platforms only
        arr = array("L")
    arr.frombytes(buffer[: 4 * count])
    if sys.byteorder == "big":  # pragma: no cover - wire is little-endian
        arr.byteswap()
    return arr


def encode_observations(
    observations: Sequence[Tuple[VoxelKey, bool]]
) -> bytes:
    """Pack ``[(key, occupied)]`` as u32 key triples + occupancy bytes."""
    count = len(observations)
    flat: List[int] = []
    occ = bytearray(count)
    for index, (key, occupied) in enumerate(observations):
        flat.extend(key)
        if occupied:
            occ[index] = 1
    return _U32.pack(count) + _pack_u32(flat) + bytes(occ)


def decode_observations(payload: bytes) -> List[Tuple[VoxelKey, bool]]:
    """Inverse of :func:`encode_observations`."""
    if len(payload) < _U32.size:
        raise CodecError("truncated observations payload")
    (count,) = _U32.unpack_from(payload, 0)
    expected = _U32.size + 12 * count + count
    if len(payload) != expected:
        raise CodecError(
            f"observations payload length mismatch: expected {expected}, "
            f"got {len(payload)}"
        )
    flat = _unpack_u32(payload[_U32.size:], 3 * count)
    occ = payload[_U32.size + 12 * count:]
    return [
        (
            (flat[3 * index], flat[3 * index + 1], flat[3 * index + 2]),
            occ[index] != 0,
        )
        for index in range(count)
    ]


def encode_keys(keys: Sequence[VoxelKey]) -> bytes:
    """Pack a key list as u32 triples."""
    flat: List[int] = []
    for key in keys:
        flat.extend(key)
    return _U32.pack(len(keys)) + _pack_u32(flat)


def decode_keys(payload: bytes) -> List[VoxelKey]:
    """Inverse of :func:`encode_keys`."""
    if len(payload) < _U32.size:
        raise CodecError("truncated keys payload")
    (count,) = _U32.unpack_from(payload, 0)
    if len(payload) != _U32.size + 12 * count:
        raise CodecError("keys payload length mismatch")
    flat = _unpack_u32(payload[_U32.size:], 3 * count)
    return [
        (flat[3 * index], flat[3 * index + 1], flat[3 * index + 2])
        for index in range(count)
    ]


def encode_values(values: Sequence[Optional[float]]) -> bytes:
    """Pack query answers: presence bytes + doubles for present values."""
    count = len(values)
    presence = bytearray(count)
    present: List[float] = []
    for index, value in enumerate(values):
        if value is not None:
            presence[index] = 1
            present.append(float(value))
    arr = array("d", present)
    if sys.byteorder == "big":  # pragma: no cover - wire is little-endian
        arr.byteswap()
    return _U32.pack(count) + bytes(presence) + arr.tobytes()


def decode_values(payload: bytes) -> List[Optional[float]]:
    """Inverse of :func:`encode_values`."""
    if len(payload) < _U32.size:
        raise CodecError("truncated values payload")
    (count,) = _U32.unpack_from(payload, 0)
    presence = payload[_U32.size: _U32.size + count]
    if len(presence) != count:
        raise CodecError("values payload length mismatch")
    arr = array("d")
    arr.frombytes(payload[_U32.size + count:])
    if sys.byteorder == "big":  # pragma: no cover - wire is little-endian
        arr.byteswap()
    if len(arr) != sum(presence):
        raise CodecError("values payload presence/value count mismatch")
    values: List[Optional[float]] = []
    cursor = 0
    for index in range(count):
        if presence[index]:
            values.append(arr[cursor])
            cursor += 1
        else:
            values.append(None)
    return values


# ----------------------------------------------------------------------
# Structured payloads (config, stats, telemetry relay): UTF-8 JSON.
# ----------------------------------------------------------------------


def encode_json(obj: Any) -> bytes:
    """JSON-encode a structured payload (config, stats, relay events)."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode("utf-8")


def decode_json(payload: bytes) -> Any:
    """Inverse of :func:`encode_json`."""
    try:
        return json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise CodecError(f"bad JSON payload: {error}") from error


def encode_reply(body: bytes, events: Sequence[Dict[str, Any]] = ()) -> bytes:
    """The shared reply envelope: body + drained telemetry relay events."""
    events_blob = encode_json(list(events)) if events else b"[]"
    return _U32.pack(len(body)) + body + events_blob


def decode_reply(payload: bytes) -> Tuple[bytes, List[Dict[str, Any]]]:
    """Inverse of :func:`encode_reply`; returns ``(body, events)``."""
    if len(payload) < _U32.size:
        raise CodecError("truncated reply payload")
    (length,) = _U32.unpack_from(payload, 0)
    body = payload[_U32.size: _U32.size + length]
    if len(body) != length:
        raise CodecError("reply body length mismatch")
    events = decode_json(payload[_U32.size + length:])
    if not isinstance(events, list):
        raise CodecError("reply events payload is not a list")
    return body, events


# ----------------------------------------------------------------------
# Restore payload: optional snapshot blob + journal-tail batches.
# ----------------------------------------------------------------------


def encode_restore(
    blob: Optional[bytes],
    upto: int,
    batches: Sequence[Sequence[Tuple[VoxelKey, bool]]],
) -> bytes:
    """Pack one shard-rebuild command.

    ``blob`` is a serialize-v2 octree checkpoint (or ``None`` for a
    from-scratch rebuild), ``upto`` the journal entries it covers, and
    ``batches`` the journal tail to replay on top of it.
    """
    chunks = [
        _RESTORE_HEAD.pack(
            1 if blob is not None else 0, upto, len(batches)
        ),
        _U32.pack(len(blob) if blob is not None else 0),
        blob or b"",
    ]
    for batch in batches:
        encoded = encode_observations(list(batch))
        chunks.append(_U32.pack(len(encoded)))
        chunks.append(encoded)
    return b"".join(chunks)


def decode_restore(
    payload: bytes,
) -> Tuple[Optional[bytes], int, List[List[Tuple[VoxelKey, bool]]]]:
    """Inverse of :func:`encode_restore`."""
    if len(payload) < _RESTORE_HEAD.size + _U32.size:
        raise CodecError("truncated restore payload")
    has_blob, upto, num_batches = _RESTORE_HEAD.unpack_from(payload, 0)
    offset = _RESTORE_HEAD.size
    (blob_length,) = _U32.unpack_from(payload, offset)
    offset += _U32.size
    blob = payload[offset: offset + blob_length] if has_blob else None
    offset += blob_length
    batches: List[List[Tuple[VoxelKey, bool]]] = []
    for _ in range(num_batches):
        if len(payload) < offset + _U32.size:
            raise CodecError("truncated restore batch")
        (length,) = _U32.unpack_from(payload, offset)
        offset += _U32.size
        batches.append(decode_observations(payload[offset: offset + length]))
        offset += length
    if offset != len(payload):
        raise CodecError(
            f"trailing bytes in restore payload ({len(payload) - offset})"
        )
    return blob, upto, batches


def encode_busy_seconds(busy: float) -> bytes:
    """The APPLY reply body: the shard's busy seconds for the batch."""
    return _F64.pack(busy)


def decode_busy_seconds(body: bytes) -> float:
    """Inverse of :func:`encode_busy_seconds`."""
    if len(body) != _F64.size:
        raise CodecError("bad busy-seconds reply body")
    return _F64.unpack(body)[0]
