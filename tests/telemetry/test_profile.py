"""PipelineProfile: self-time accounting, coverage, tables."""

import pytest

from repro.telemetry import (
    PipelineProfile,
    RingBufferSink,
    Tracer,
)


def synthetic_ring():
    """Two roots, one nested child: known self-time decomposition."""
    ring = RingBufferSink()
    tracer = Tracer(sinks=[ring])
    tracer.record_span("octree_update", "octree", start=5.0, duration=0.4)
    with tracer.span("insert_batch", category="pipeline") as outer:
        pass
    # Rewrite durations deterministically: outer 1.0 with a 0.3 child.
    outer.start, outer.duration = 1.0, 1.0
    child = Tracer(sinks=[ring])
    child.record_span("cache_insertion", "cache", start=1.1, duration=0.3)
    ring.spans[-1].parent_id = outer.span_id
    tracer.count("cache.hits", 30, category="cache")
    tracer.count("cache.misses", 10, category="cache")
    tracer.count("cache.evictions", 4, category="cache")
    return ring


class TestSelfTimeAccounting:
    def test_self_time_subtracts_direct_children(self):
        profile = PipelineProfile.from_ring(synthetic_ring())
        outer = profile.stages[("pipeline", "insert_batch")]
        assert outer.total_seconds == pytest.approx(1.0)
        assert outer.self_seconds == pytest.approx(0.7)
        child = profile.stages[("cache", "cache_insertion")]
        assert child.self_seconds == pytest.approx(0.3)

    def test_wall_is_sum_of_roots_and_coverage_is_one(self):
        profile = PipelineProfile.from_ring(synthetic_ring())
        assert profile.wall_seconds == pytest.approx(1.4)  # 1.0 + 0.4 roots
        assert profile.total_seconds() == pytest.approx(1.4)
        assert profile.coverage() == pytest.approx(1.0)

    def test_orphan_parent_treated_as_root(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        tracer.record_span("x", "c", start=0.0, duration=1.0)
        ring.spans[0].parent_id = 999_999  # parent evicted from the ring
        profile = PipelineProfile.from_ring(ring)
        assert profile.wall_seconds == pytest.approx(1.0)

    def test_self_time_floors_at_zero(self):
        ring = RingBufferSink()
        tracer = Tracer(sinks=[ring])
        with tracer.span("outer") as outer:
            pass
        outer.duration = 0.1
        # A child that (through clock jitter) outlasts its parent.
        tracer.record_span("child", "c", start=0.0, duration=0.5)
        ring.spans[-1].parent_id = outer.span_id
        profile = PipelineProfile.from_ring(ring)
        assert profile.stages[("default", "outer")].self_seconds == 0.0

    def test_empty_profile(self):
        profile = PipelineProfile.from_ring(RingBufferSink())
        assert profile.wall_seconds == 0.0
        assert profile.coverage() == 1.0
        assert profile.categories == []


class TestSummaries:
    def test_categories_and_counts(self):
        profile = PipelineProfile.from_ring(synthetic_ring())
        assert profile.categories == ["cache", "octree", "pipeline"]
        assert profile.count("cache", "cache.hits") == 30
        assert profile.count("cache", "nothing") == 0
        assert profile.total_seconds("octree") == pytest.approx(0.4)

    def test_cache_summary(self):
        summary = PipelineProfile.from_ring(synthetic_ring()).cache_summary()
        assert summary["hits"] == 30
        assert summary["misses"] == 10
        assert summary["evictions"] == 4
        assert summary["hit_ratio"] == pytest.approx(0.75)

    def test_table_accounts_for_all_wall_time(self):
        table = PipelineProfile.from_ring(synthetic_ring()).table()
        assert "insert_batch" in table
        assert "octree_update" in table
        assert "100.0%" in table  # the total row's coverage

    def test_counts_table_and_empty_case(self):
        profile = PipelineProfile.from_ring(synthetic_ring())
        assert "cache.hits" in profile.counts_table()
        assert PipelineProfile({}, 0.0).counts_table() == ""

    def test_to_dict_is_json_able(self):
        import json

        payload = PipelineProfile.from_ring(synthetic_ring()).to_dict()
        encoded = json.loads(json.dumps(payload))
        assert encoded["coverage"] == pytest.approx(1.0)
        assert {s["name"] for s in encoded["stages"]} == {
            "insert_batch",
            "cache_insertion",
            "octree_update",
        }
        assert encoded["cache"]["hits"] == 30
