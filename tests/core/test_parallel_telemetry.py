"""Stage-handoff telemetry of the parallel pipeline (§4.4 schedule).

Validates that the *measured* span schedule matches the analytic
:class:`~repro.core.pipeline_model.PipelineModel` ordering: per batch,
thread 1 runs ray tracing → waiting gap → cache insertion → cache
eviction/enqueue, while each enqueued chunk's octree update starts on
thread 2 no earlier than its enqueue and after the preceding update.
"""

import numpy as np
import pytest

from repro.core.parallel import ParallelOctoCacheMap
from repro.core.pipeline_model import PipelineModel
from repro.sensor.pointcloud import PointCloud
from repro.telemetry import RingBufferSink, tracing

RES = 0.2
DEPTH = 8


def small_cloud(seed=0, points=60):
    rng = np.random.default_rng(seed)
    pts = np.column_stack(
        [np.full(points, 2.0), rng.uniform(-1, 1, points), rng.uniform(0, 1, points)]
    )
    return PointCloud(pts, origin=(0.0, 0.0, 0.5))


def traced_run(batches=3):
    ring = RingBufferSink()
    with tracing(ring):
        with ParallelOctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
            for seed in range(batches):
                mapping.insert_point_cloud(small_cloud(seed))
    return mapping, ring


def spans_named(ring, name):
    return sorted(
        (s for s in ring.spans if s.name == name), key=lambda s: s.start
    )


class TestQueueProfile:
    def test_profile_counts_and_waits(self):
        mapping, _ring = traced_run()
        profile = mapping.queue_profile()
        assert profile["chunks"] > 0
        assert profile["queue_wait_seconds"] >= 0.0
        assert profile["service_seconds"] > 0.0
        assert profile["mean_queue_wait"] >= 0.0
        assert profile["mean_service"] > 0.0
        assert profile["enqueue_seconds"] >= 0.0

    def test_mean_is_total_over_chunks(self):
        mapping, _ring = traced_run()
        profile = mapping.queue_profile()
        assert profile["mean_queue_wait"] == pytest.approx(
            profile["queue_wait_seconds"] / profile["chunks"]
        )

    def test_empty_pipeline_profile_is_zeroed(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)
        profile = mapping.queue_profile()
        assert profile["chunks"] == 0
        assert profile["mean_queue_wait"] == 0.0
        assert profile["mean_service"] == 0.0


class TestScheduleMatchesPipelineModel:
    """The measured span timeline obeys the model's stage ordering."""

    def test_thread1_stage_order_per_batch(self):
        # Model: ray_tracing → wait → cache_insertion → cache_eviction.
        _mapping, ring = traced_run()
        batches = spans_named(ring, "insert_batch")
        traces = spans_named(ring, "ray_tracing")
        assert batches and len(traces) == len(batches)
        for trace, batch in zip(traces, batches):
            # Ray tracing precedes the batch's processing entirely.
            assert trace.start + trace.duration <= batch.start + 1e-9
            children = {
                s.name: s
                for s in ring.spans
                if s.parent_id == batch.span_id
            }
            order = [
                children[name]
                for name in (
                    "thread1_wait",
                    "cache_insertion",
                    "cache_eviction",
                )
            ]
            starts = [span.start for span in order]
            assert starts == sorted(starts)
            # Each stage finishes before the next begins (thread 1 is
            # serial).
            for earlier, later in zip(order, order[1:]):
                assert earlier.start + earlier.duration <= later.start + 1e-9

    def test_octree_updates_follow_their_enqueue(self):
        # Model: thread 2's update of a chunk starts at
        # max(enqueue time, previous octree_update done).
        _mapping, ring = traced_run()
        enqueues = spans_named(ring, "enqueue")
        updates = spans_named(ring, "octree_update")
        assert len(updates) == len(enqueues) > 0
        for enqueue, update in zip(enqueues, updates):
            assert update.start >= enqueue.start
        for previous, current in zip(updates, updates[1:]):
            # Thread 2 serialises octree updates.
            assert current.start >= previous.start + previous.duration - 1e-9

    def test_queue_wait_spans_bridge_the_handoff(self):
        # queue_wait covers enqueue → dequeue: it starts with the enqueue
        # and ends at (or before) its octree update's start.
        _mapping, ring = traced_run()
        waits = spans_named(ring, "queue_wait")
        updates = spans_named(ring, "octree_update")
        assert len(waits) == len(updates) > 0
        for wait, update in zip(waits, updates):
            assert wait.duration >= 0.0
            assert wait.start + wait.duration <= update.start + 1e-6

    def test_threads_are_distinct(self):
        _mapping, ring = traced_run()
        thread1 = {s.thread_id for s in ring.spans if s.name == "cache_insertion"}
        thread2 = {s.thread_id for s in ring.spans if s.name == "octree_update"}
        assert len(thread1) == 1
        assert len(thread2) == 1
        assert thread1 != thread2

    def test_model_reproduces_measured_wait_ordering(self):
        # Feeding the measured per-batch records into the analytic model
        # must yield a consistent timeline: parallel makespan between the
        # octree-update total and the serial sum.
        mapping, _ring = traced_run(batches=4)
        model = PipelineModel.from_records(mapping.batches)
        timeline = model.simulate()
        assert timeline.parallel_seconds <= timeline.serial_seconds + 1e-9
        octree_total = sum(b.octree_update for b in model.batches)
        assert timeline.parallel_seconds >= octree_total - 1e-9
        assert timeline.thread1_wait_seconds >= 0.0
