"""Named scan datasets: scene + trajectory + sensor, lazily scanned.

``make_dataset("fr079_corridor")`` (etc.) returns a :class:`ScanDataset`
whose point clouds mirror the character of the paper's Table 2 datasets at
laptop scale: the corridor is small and indoor (few scans, extreme
duplication), the campus is large and sparse (more scans, lower overlap),
the college is a dense loop (many scans, high overlap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

import numpy as np

from repro.datasets.scenes import (
    Scene,
    campus_scene,
    college_scene,
    corridor_scene,
)
from repro.datasets.sensor_model import SensorModel
from repro.datasets.trajectories import Pose, loop_trajectory, waypoint_trajectory
from repro.sensor.pointcloud import PointCloud

__all__ = ["ScanDataset", "make_dataset", "DATASET_NAMES"]

#: Dataset names accepted by :func:`make_dataset`, mirroring Table 2.
DATASET_NAMES = ("fr079_corridor", "freiburg_campus", "new_college")


@dataclass
class ScanDataset:
    """A reproducible sequence of point-cloud scans of one scene.

    Attributes:
        name: dataset label (one of :data:`DATASET_NAMES`).
        scene: the scanned geometry.
        poses: the sensor trajectory.
        sensor: the sensor model used at each pose.
        seed: RNG seed for sensor noise (scans are deterministic given it).
    """

    name: str
    scene: Scene
    poses: List[Pose]
    sensor: SensorModel
    seed: int = 0

    def __len__(self) -> int:
        return len(self.poses)

    def scans(self) -> Iterator[PointCloud]:
        """Yield one point cloud per pose, in trajectory order."""
        rng = np.random.default_rng(self.seed)
        for pose in self.poses:
            yield self.sensor.scan(
                self.scene, pose.position, pose.yaw, pose.pitch, rng=rng
            )

    def scan_at(self, index: int) -> PointCloud:
        """The scan at one pose (noise drawn from a pose-specific stream)."""
        pose = self.poses[index]
        rng = np.random.default_rng((self.seed, index))
        return self.sensor.scan(
            self.scene, pose.position, pose.yaw, pose.pitch, rng=rng
        )


def make_dataset(
    name: str,
    scale: float = 1.0,
    sensor: Optional[SensorModel] = None,
    seed: int = 0,
    pose_scale: Optional[float] = None,
    ray_scale: Optional[float] = None,
) -> ScanDataset:
    """Construct one of the three named datasets.

    Args:
        name: one of :data:`DATASET_NAMES`.
        scale: multiplies scan count and ray density; 1.0 is the default
            laptop-scale configuration, larger values stress throughput.
        sensor: override the dataset's default sensor model.
        seed: RNG seed for sensor noise.
        pose_scale: override the trajectory density alone.  Inter-batch
            overlap (Figure 8) is set by pose spacing relative to sensing
            range, so benchmarks keep this at 1.0 while trimming cost via
            ``ray_scale`` and batch truncation.
        ray_scale: override the per-scan ray density alone.  Intra-batch
            duplication (§3.1) grows with ray density relative to voxel
            size.
    """
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    pose_scale = scale if pose_scale is None else pose_scale
    ray_scale = scale if ray_scale is None else ray_scale
    if pose_scale <= 0 or ray_scale <= 0:
        raise ValueError("pose_scale and ray_scale must be positive")
    if name == "fr079_corridor":
        # Indoor corridor: short steps, short range, dense rays on nearby
        # walls — the extreme-duplication, extreme-overlap regime.
        scene = corridor_scene()
        poses = waypoint_trajectory(
            [(1.0, 0.0, 1.2), (10.0, 0.2, 1.2), (19.0, -0.2, 1.2)],
            poses_per_leg=max(2, int(12 * pose_scale)),
        )
        default_sensor = SensorModel(
            horizontal_fov=np.deg2rad(110),
            vertical_fov=np.deg2rad(70),
            horizontal_rays=max(4, int(48 * ray_scale)),
            vertical_rays=max(3, int(24 * ray_scale)),
            max_range=5.0,
            noise_sigma=0.002,
        )
    elif name == "freiburg_campus":
        # Large sparse outdoor area: longer steps relative to range, so
        # inter-batch overlap drops toward the paper's ~40% regime.
        scene = campus_scene()
        poses = waypoint_trajectory(
            [
                (-35.0, -35.0, 1.5),
                (0.0, -25.0, 1.5),
                (30.0, 0.0, 1.5),
                (0.0, 30.0, 1.5),
                (-30.0, 5.0, 1.5),
            ],
            poses_per_leg=max(2, int(10 * pose_scale)),
        )
        default_sensor = SensorModel(
            horizontal_fov=np.deg2rad(180),
            vertical_fov=np.deg2rad(40),
            horizontal_rays=max(4, int(72 * ray_scale)),
            vertical_rays=max(3, int(12 * ray_scale)),
            max_range=20.0,
            noise_sigma=0.005,
        )
    elif name == "new_college":
        # Quad loop: small steps on a circle, long range — high overlap
        # with steady revisiting, the paper's New College character.
        scene = college_scene()
        poses = loop_trajectory(
            center=(0.0, 0.0),
            radius=9.0,
            height=1.5,
            num_poses=max(3, int(40 * pose_scale)),
            face_outward=True,
        )
        default_sensor = SensorModel(
            horizontal_fov=np.deg2rad(120),
            vertical_fov=np.deg2rad(50),
            horizontal_rays=max(4, int(54 * ray_scale)),
            vertical_rays=max(3, int(16 * ray_scale)),
            max_range=16.0,
            noise_sigma=0.003,
        )
    else:
        raise ValueError(f"unknown dataset {name!r}; expected one of {DATASET_NAMES}")
    return ScanDataset(
        name=name,
        scene=scene,
        poses=poses,
        sensor=sensor or default_sensor,
        seed=seed,
    )
