"""Ablation: Morton bucket indexing vs the strawman hash (§4.2 vs §4.3).

The only difference between the strawman and Morton OctoCache is the
bucket-locating function — and therefore the *order* in which sequential
eviction emits voxels.  This ablation feeds identical scan batches to
both caches, evicts, and compares the evicted sequences by the paper's
locality functional ``F`` and by modeled octree-insertion cost.

Expected: both configurations produce the same cache hit ratio (indexing
does not change what is resident, only where), while Morton indexing's
evicted batches insert into the octree at measurably lower modeled cost.

A nuance worth recording: with ``w`` buckets, ``Morton(v) % w`` orders
voxels only *within* each ``w``-code window — the modulo wraps destroy
global Morton order, so the pairwise functional ``F`` of the whole
evicted sequence barely improves.  The modeled cost still drops clearly,
because the simulated caches exploit a reuse window much wider than
adjacent pairs: spatially close voxels merely need to be evicted *near*
each other, not strictly consecutively.  (The paper's C++ cache has the
same wraparound; its Figure 22 gains are likewise of this windowed kind.)
"""

from repro.analysis.report import format_table
from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig
from repro.core.locality import locality_cost_keys
from repro.octree.tree import OccupancyOctree
from repro.sensor.scaninsert import trace_scan
from repro.simcache.cost_model import scaled_tx2_hierarchy
from repro.simcache.trace import TraceRecorder, replay_trace

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES

RESOLUTION = 0.1
NUM_BUCKETS = 1024
TAU = 2


def drive_cache(dataset, use_morton):
    """Feed the dataset through a standalone cache; collect evictions."""
    config = CacheConfig(
        num_buckets=NUM_BUCKETS,
        bucket_threshold=TAU,
        use_morton_indexing=use_morton,
    )
    backend = OccupancyOctree(resolution=RESOLUTION, depth=BENCH_DEPTH)
    cache = VoxelCache(config, backend=backend)
    evicted_keys = []
    for index, cloud in enumerate(dataset.scans()):
        if index >= BENCH_MAX_BATCHES:
            break
        batch = trace_scan(
            cloud, RESOLUTION, BENCH_DEPTH, max_range=dataset.sensor.max_range
        )
        cache.insert_batch(batch.observations)
        for key, value in cache.evict():
            backend.set_leaf(key, value)
            evicted_keys.append(key)
    return cache, evicted_keys


def modeled_insert_cost(keys):
    """Modeled cost of inserting ``keys`` into a fresh octree, in order."""
    recorder = TraceRecorder()
    tree = OccupancyOctree(
        resolution=RESOLUTION, depth=BENCH_DEPTH, visit_hook=recorder.record
    )
    for key in keys:
        tree.update_node(key, True)
    hierarchy = scaled_tx2_hierarchy(max(1, int(len(set(keys)) * 1.14)))
    return replay_trace(recorder.trace, hierarchy=hierarchy)


def test_ablation_bucket_indexing(benchmark, corridor, emit):
    def run():
        results = {}
        for label, use_morton in (("hash", False), ("morton", True)):
            cache, evicted = drive_cache(corridor, use_morton)
            replay = modeled_insert_cost(evicted)
            results[label] = {
                "hit_ratio": cache.stats.hit_ratio,
                "evicted": len(evicted),
                "locality": locality_cost_keys(evicted, BENCH_DEPTH),
                "cycles_per_voxel": (
                    replay.total_cycles / len(evicted) if evicted else 0.0
                ),
            }
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        [
            label,
            f"{data['hit_ratio']:.3f}",
            data["evicted"],
            data["locality"],
            f"{data['cycles_per_voxel']:.1f}",
        ]
        for label, data in results.items()
    ]
    emit(
        "ablation_bucket_indexing",
        format_table(
            ["indexing", "hit ratio", "evicted", "F(evicted)", "cycles/voxel"],
            rows,
        ),
    )

    hash_run = results["hash"]
    morton_run = results["morton"]
    # Indexing changes neither residency nor hit ratio materially...
    assert abs(hash_run["hit_ratio"] - morton_run["hit_ratio"]) < 0.08
    assert hash_run["evicted"] > 0 and morton_run["evicted"] > 0
    # ...but Morton indexing's (windowed) eviction order inserts into the
    # octree at clearly lower modeled memory cost.
    assert (
        morton_run["cycles_per_voxel"] < 0.85 * hash_run["cycles_per_voxel"]
    )
