"""Parity for the bulk clamped log-odds fold.

The clamped update is order-dependent and non-associative in floating
point, so :func:`repro.kernels.logodds.fold_logodds` promises to be
bit-identical — not just close — to replaying ``params.update`` one
observation at a time.  The fuzz here spans group counts on both sides
of the vector/scalar-tail crossover and long uniform runs that pin
values to the clamp bounds (the fixed-point skip path).
"""

import numpy as np
import pytest

from repro.kernels.logodds import fold_logodds
from repro.octree.occupancy import OccupancyParams


def replay_scalar(base, occ_sorted, seg_starts, counts, params):
    finals = np.array(base, dtype=np.float64, copy=True)
    for group in range(counts.shape[0]):
        value = float(finals[group])
        start = int(seg_starts[group])
        for flag in occ_sorted[start : start + int(counts[group])].tolist():
            value = params.update(value, flag)
        finals[group] = value
    return finals


def random_segments(rng, num_groups, max_count):
    counts = rng.integers(1, max_count + 1, size=num_groups).astype(np.int64)
    seg_starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
    total = int(counts.sum())
    occ_sorted = rng.random(total) < 0.35
    base = rng.uniform(-2.5, 2.5, size=num_groups)
    return base, occ_sorted, seg_starts, counts


def assert_fold_matches(base, occ_sorted, seg_starts, counts, params):
    got = fold_logodds(base, occ_sorted, seg_starts, counts, params)
    want = replay_scalar(base, occ_sorted, seg_starts, counts, params)
    np.testing.assert_array_equal(got, want)  # bit-exact, not approx


@pytest.mark.parametrize("seed", range(8))
def test_fuzz_default_params(seed):
    rng = np.random.default_rng(seed)
    # Group counts spanning both the vectorised rounds and the scalar
    # tail (crossover at _SCALAR_TAIL active groups).
    num_groups = int(rng.integers(1, 300))
    base, occ_sorted, seg_starts, counts = random_segments(
        rng, num_groups, int(rng.integers(1, 40))
    )
    assert_fold_matches(
        base, occ_sorted, seg_starts, counts, OccupancyParams()
    )


@pytest.mark.parametrize("seed", range(4))
def test_fuzz_custom_params(seed):
    rng = np.random.default_rng(500 + seed)
    params = OccupancyParams(
        threshold=0.1,
        delta_occupied=0.9,
        delta_free=0.6,
        min_occ=-1.5,
        max_occ=2.5,
    )
    base, occ_sorted, seg_starts, counts = random_segments(rng, 120, 25)
    base = np.clip(base, params.min_occ, params.max_occ)
    assert_fold_matches(base, occ_sorted, seg_starts, counts, params)


def test_long_uniform_runs_pin_to_clamps():
    # The origin-voxel pattern: one voxel freed (or hit) hundreds of
    # times in a row.  The scalar tail's fixed-point skip must land on
    # exactly the clamp value the naive replay produces.
    params = OccupancyParams()
    counts = np.array([400, 400, 7], dtype=np.int64)
    seg_starts = np.array([0, 400, 800], dtype=np.int64)
    occ_sorted = np.concatenate(
        [
            np.zeros(400, dtype=bool),  # all free → pins to min_occ
            np.ones(400, dtype=bool),  # all hits → pins to max_occ
            np.array([True, False, True, True, False, False, True]),
        ]
    )
    base = np.array([0.3, -0.3, 0.0])
    assert_fold_matches(base, occ_sorted, seg_starts, counts, params)


def test_alternating_after_clamp():
    # Hit a clamp, then reverse direction: the skip must stop exactly at
    # the next opposite-flag observation.
    params = OccupancyParams()
    flags = [True] * 50 + [False] * 3 + [True] * 50 + [False] * 80 + [True]
    occ_sorted = np.array(flags)
    counts = np.array([len(flags)], dtype=np.int64)
    seg_starts = np.array([0], dtype=np.int64)
    base = np.array([0.0])
    assert_fold_matches(base, occ_sorted, seg_starts, counts, params)


def test_empty_inputs():
    params = OccupancyParams()
    out = fold_logodds(
        np.empty(0),
        np.empty(0, dtype=bool),
        np.empty(0, dtype=np.int64),
        np.empty(0, dtype=np.int64),
        params,
    )
    assert out.shape == (0,)


def test_base_values_are_not_mutated():
    params = OccupancyParams()
    base = np.array([0.5, -0.5])
    keep = base.copy()
    fold_logodds(
        base,
        np.array([True, False]),
        np.array([0, 1], dtype=np.int64),
        np.array([1, 1], dtype=np.int64),
        params,
    )
    np.testing.assert_array_equal(base, keep)
