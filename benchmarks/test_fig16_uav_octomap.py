"""Figure 16: UAV navigation, OctoMap- vs OctoCache-based systems.

The paper flies both systems through the four MAVBench environments at
the per-environment baseline ⟨sensing range, resolution⟩ and reports
end-to-end runtime speedups of 1.78–3.02× and task-completion-time
reductions of 13–28% (AscTec Pelican).  Regenerated with the closed-loop
simulator; asserted shape: every mission completes without collision,
OctoCache cuts per-cycle response latency in every environment, and cuts
completion time wherever compute (not rotor power) is the binding
constraint.
"""

from repro.analysis.report import format_table
from repro.baselines.octomap import OctoMapPipeline
from repro.core.octocache import OctoCacheMap
from repro.uav.environments import ENVIRONMENT_NAMES, make_environment
from repro.uav.mission import MissionConfig, run_mission
from repro.uav.vehicle import ASCTEC_PELICAN

DEPTH = 12
MAX_CYCLES = 900

PIPELINES = {"octomap": OctoMapPipeline, "octocache": OctoCacheMap}


def fly(env, kind, resolution=None, sensing_range=None, uav=ASCTEC_PELICAN):
    config = MissionConfig(
        environment=env,
        uav=uav,
        resolution=resolution,
        sensing_range=sensing_range,
        max_cycles=MAX_CYCLES,
        model_octree_offload=True,
    )
    cls = PIPELINES[kind]

    def attempt():
        return run_mission(
            config,
            lambda res: cls(
                resolution=res, depth=DEPTH, max_range=config.sensing_range
            ),
        )

    result = attempt()
    if not result.success and not result.crashed:
        # Trajectories are wall-clock driven; a rare hover-loop timeout is
        # stochastic, so one retry keeps the benchmark deterministic in
        # practice without masking crashes or systematic failures.
        result = attempt()
    return result


def test_fig16_uav_navigation(benchmark, emit):
    def run():
        results = {}
        for name in ENVIRONMENT_NAMES:
            env = make_environment(name)
            results[name] = (fly(env, "octomap"), fly(env, "octocache"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (octomap, octocache) in results.items():
        runtime_speedup = (
            octomap.mean_response_latency / octocache.mean_response_latency
        )
        completion_saving = 1.0 - (
            octocache.completion_time / octomap.completion_time
        )
        rows.append(
            [
                name,
                f"{octomap.mean_response_latency * 1000:.0f}ms",
                f"{octocache.mean_response_latency * 1000:.0f}ms",
                f"{runtime_speedup:.2f}x",
                f"{octomap.completion_time:.1f}s",
                f"{octocache.completion_time:.1f}s",
                f"{completion_saving * 100:.0f}%",
                f"{octomap.mean_velocity:.1f}",
                f"{octocache.mean_velocity:.1f}",
            ]
        )
    emit(
        "fig16_uav_octomap_vs_octocache",
        format_table(
            [
                "environment",
                "OctoMap resp",
                "OctoCache resp",
                "runtime speedup",
                "OctoMap T",
                "OctoCache T",
                "T saved",
                "v OctoMap",
                "v OctoCache",
            ],
            rows,
        ),
    )

    savings = []
    for name, (octomap, octocache) in results.items():
        # Every mission lands safely.
        assert octomap.success and not octomap.crashed, name
        assert octocache.success and not octocache.crashed, name
        # Universal response-latency win (paper: 1.78-3.02x end-to-end).
        speedup = octomap.mean_response_latency / octocache.mean_response_latency
        assert speedup > 1.3, (name, speedup)
        # Completion time: no per-environment regression beyond trajectory
        # jitter (runs are wall-clock driven)...
        assert octocache.completion_time < octomap.completion_time * 1.1, name
        savings.append(
            1.0 - octocache.completion_time / octomap.completion_time
        )
        # Velocity never degrades.
        assert octocache.mean_velocity >= octomap.mean_velocity * 0.95, name
    # ...and a clear aggregate saving (paper: 13-28% on the Pelican).
    assert sum(savings) / len(savings) > 0.10, savings
