"""Dense voxel-grid mapping baseline (paper §2.1, Figure 2a).

A flat 3-D array of log-odds values over a fixed bounding box.  Updates
and queries are O(1) — no tree traversal — but memory grows with the
*mapped volume* rather than the observed surface, which is exactly the
trade-off that motivates OctoMap's octree (and therefore OctoCache).
Included as a comparator: fast updates, no memory frugality, no
unknown-space representation outside its box.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.baselines.interface import BatchRecord, MappingSystem
from repro.octree.key import VoxelKey
from repro.octree.occupancy import OccupancyParams
from repro.sensor.scaninsert import ScanBatch

__all__ = ["VoxelGridPipeline"]


class VoxelGridPipeline(MappingSystem):
    """Occupancy mapping on a dense numpy grid.

    The grid covers a cube of side ``resolution * 2**grid_depth`` centred
    at the origin — the same addressing as the octree at depth
    ``grid_depth``, so voxel keys are interchangeable.  ``grid_depth`` is
    deliberately separate from ``depth``: a dense array at octree depth 16
    would need 2^48 cells, which is the whole point of the comparison.

    Args:
        resolution: voxel edge length.
        grid_depth: log2 of the grid's side length in voxels (≤9 keeps
            the array under ~1 GB of float32 at 2^27 cells).
    """

    name = "VoxelGrid"

    #: Sentinel marking never-observed cells (outside log-odds range).
    _UNKNOWN = np.float32(np.finfo(np.float32).min)

    def __init__(
        self,
        resolution: float,
        grid_depth: int = 8,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        rt: bool = False,
    ) -> None:
        if not 1 <= grid_depth <= 9:
            raise ValueError(
                f"grid_depth must be in [1, 9] (dense memory!), got {grid_depth}"
            )
        super().__init__(
            resolution=resolution,
            depth=grid_depth,
            params=params,
            max_range=max_range,
            rt=rt,
        )
        side = 1 << grid_depth
        self._grid = np.full((side, side, side), self._UNKNOWN, dtype=np.float32)

    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        grid = self._grid
        params = self.params
        unknown = self._UNKNOWN
        with self.timings.stage("grid_update") as watch:
            for key, occupied in batch.observations:
                value = grid[key]
                if value == unknown:
                    value = params.threshold
                grid[key] = params.update(float(value), occupied)
        record.octree_update = watch.elapsed  # comparable slot

    # ------------------------------------------------------------------
    # Query path: the octree API answered from the array.
    # ------------------------------------------------------------------

    def query_key(self, key: VoxelKey) -> Optional[float]:
        """Log-odds at ``key`` (``None`` when never observed)."""
        value = self._grid[key]
        if value == self._UNKNOWN:
            return None
        return float(value)

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        from repro.octree.key import coord_to_key

        return self.query_key(coord_to_key(coord, self.resolution, self.depth))

    def critical_path_seconds(self) -> float:
        """Queries wait for the full grid update, like vanilla OctoMap."""
        return self.timings.total(("ray_tracing", "grid_update"))

    def memory_bytes(self) -> int:
        """Dense footprint: every cell, observed or not."""
        return int(self._grid.nbytes)

    def memory_breakdown(self, exact: bool = False):
        """Footprint as a :class:`MemoryReport`: one dense ``grid`` leaf.

        ``numpy`` reports the array's exact allocation, so the default
        and ``exact=True`` paths are the same number — the kwarg exists
        for :class:`repro.memsight.report.MemoryMeter` parity.
        """
        from repro.memsight.report import MemoryReport

        side = self._grid.shape[0]
        return MemoryReport(
            "voxelgrid",
            children=[
                MemoryReport("grid", int(self._grid.nbytes), side**3)
            ],
        )

    def observed_voxels(self) -> int:
        """Number of cells carrying an actual observation."""
        return int(np.count_nonzero(self._grid != self._UNKNOWN))
