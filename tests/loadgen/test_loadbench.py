"""The open-loop load bench: ramp mechanics, knee detection, BENCH entry.

Full-size ramps belong to CI's load-smoke job; these tests run miniature
ramps (fractions of a second per step) and verify the *mechanics* —
monotone offered load, SLI evaluation per step, knee/capacity plumbing,
and the series-entry/regression-gate integration.
"""

import json

import pytest

from repro.loadgen import LoadStep, run_load_bench
from repro.obs.perf import append_bench_entry, check_regressions
from repro.obs.slo import SLObjective


def run_tiny(**overrides):
    kwargs = dict(
        shards=2,
        resolution=0.3,
        depth=8,
        max_batches=3,
        ray_scale=0.15,
        client_steps=(1, 2),
        rate_per_client=20.0,
        step_seconds=0.3,
    )
    kwargs.update(overrides)
    return run_load_bench(**kwargs)


class TestRamp:
    def test_ramp_produces_a_monotone_capacity_curve(self):
        report = run_tiny()
        assert [step.clients for step in report.steps] == [1, 2]
        offered = [step.offered_scans_per_s for step in report.steps]
        assert offered == sorted(offered)
        for step in report.steps:
            assert step.submitted >= step.accepted
            assert step.accepted + step.rejected == step.submitted
            assert 0.0 <= step.availability <= 1.0
            assert step.p99_ms >= 0.0
        assert report.capacity_scans_per_s > 0.0
        assert report.elapsed_seconds > 0.0

    def test_tight_objective_forces_a_knee_at_the_first_step(self):
        # A 1 µs p99 target is unmeetable: the very first step burns,
        # so the knee lands there and the ramp stops early
        # (stop_after_knee=1 → at most two steps run).
        impossible = (
            SLObjective("strict_latency", "latency", 0.5, threshold=1e-6),
        )
        report = run_tiny(
            client_steps=(1, 2, 4, 8), objectives=impossible
        )
        assert report.saturated
        assert report.knee_clients == 1
        assert len(report.steps) <= 2
        assert "strict_latency" in report.steps[0].burning

    def test_unreachable_objectives_mean_no_knee(self):
        lax = (SLObjective("lax", "availability", 0.01),)
        report = run_tiny(objectives=lax)
        assert not report.saturated
        assert report.knee_clients is None
        # Capacity falls back to the fastest step overall.
        assert report.capacity_scans_per_s == pytest.approx(
            max(s.achieved_scans_per_s for s in report.steps)
        )

    def test_validation_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="step_seconds"):
            run_tiny(step_seconds=0.0)
        with pytest.raises(ValueError, match="rate_per_client"):
            run_tiny(rate_per_client=-1.0)
        with pytest.raises(ValueError, match="ascending"):
            run_tiny(client_steps=(4, 2))

    def test_process_workers_drive_the_same_ramp(self):
        report = run_tiny(workers="process", num_procs=1)
        assert report.workers == "process"
        assert report.steps
        assert report.capacity_scans_per_s > 0.0


class TestFleetMode:
    def test_tenant_ramp_records_fairness(self):
        report = run_tiny(client_steps=(2, 4), tenants=2)
        assert report.tenants == 2
        for step in report.steps:
            assert step.tenant_fairness is not None
            assert step.tenant_fairness >= 1.0
        assert report.tenant_fairness_ratio is not None
        # Identical clients over identical tenants: near-perfect fairness.
        assert report.tenant_fairness_ratio < 1.5

    def test_fairness_skips_tenants_with_no_offered_load(self):
        # 1 client over 2 tenants: only fleet-0 gets traffic, and the
        # idle tenant must not read as starvation (ratio inf).
        report = run_tiny(client_steps=(1,), tenants=2)
        assert report.steps[0].tenant_fairness == pytest.approx(1.0)

    def test_fleet_entry_carries_the_fairness_metric(self):
        report = run_tiny(tenants=2)
        entry = report.to_bench_entry()
        assert entry["tenants"] == 2
        assert set(entry["metrics"]) == {
            "capacity_scans_per_s",
            "ingest_p99_ms",
            "tenant_fairness_ratio",
        }
        assert entry["metrics"]["tenant_fairness_ratio"]["direction"] == "lower"
        json.dumps(entry)

    def test_single_map_entry_shape_is_unchanged(self):
        report = run_tiny()
        entry = report.to_bench_entry()
        assert "tenants" not in entry
        assert set(entry["metrics"]) == {
            "capacity_scans_per_s",
            "ingest_p99_ms",
        }

    def test_validation_rejects_negative_tenants(self):
        with pytest.raises(ValueError, match="tenants"):
            run_tiny(tenants=-1)


class TestReportShapes:
    def test_to_dict_carries_the_full_curve(self):
        report = run_tiny()
        payload = report.to_dict()
        assert payload["capacity_curve"]
        assert set(payload["capacity_curve"][0]) >= {
            "clients",
            "achieved_scans_per_s",
            "p99_ms",
            "staleness_p99_ms",
            "availability",
            "burning",
        }
        json.dumps(payload)  # JSON-serialisable end to end

    def test_bench_entry_gates_through_perf_check(self, tmp_path):
        report = run_tiny()
        entry = report.to_bench_entry()
        assert set(entry["metrics"]) == {
            "capacity_scans_per_s",
            "ingest_p99_ms",
        }
        path = tmp_path / "BENCH_test.json"
        assert append_bench_entry(entry, str(path)) == 1
        latest = json.loads(path.read_text())[-1]
        baseline = {
            "metrics": {
                "capacity_scans_per_s": {
                    "value": report.capacity_scans_per_s / 2,
                    "direction": "higher",
                    "tolerance": 0.45,
                },
                "ingest_p99_ms": {
                    "value": max(1.0, report.ingest_p99_ms * 4),
                    "direction": "lower",
                    "tolerance": 0.45,
                },
                "serve_throughput": {"value": 1e9, "direction": "higher"},
            }
        }
        # Unfiltered: the load entry lacks serve_throughput → regression.
        assert not check_regressions(latest, baseline).ok
        # Filtered to the capacity metrics: clean.
        result = check_regressions(
            latest,
            baseline,
            only=("capacity_scans_per_s", "ingest_p99_ms"),
        )
        assert result.ok, [c.name for c in result.regressions]
        with pytest.raises(ValueError, match="not in baseline"):
            check_regressions(latest, baseline, only=("nope",))

    def test_append_rejects_shapeless_entries(self, tmp_path):
        with pytest.raises(ValueError, match="metrics"):
            append_bench_entry({}, str(tmp_path / "b.json"))

    def test_step_dict_round_trips(self):
        step = LoadStep(
            clients=2,
            offered_scans_per_s=80.0,
            achieved_scans_per_s=75.0,
            submitted=40,
            accepted=38,
            rejected=2,
            availability=0.95,
            p99_ms=12.0,
            staleness_p99_ms=8.0,
            burning=("availability",),
            elapsed_seconds=0.5,
        )
        assert step.to_dict()["burning"] == ["availability"]
