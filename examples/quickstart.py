#!/usr/bin/env python3
"""Quickstart: build an occupancy map with OctoCache and query it.

Demonstrates the core public API in under a minute:

1. create an :class:`~repro.core.octocache.OctoCacheMap`,
2. insert point-cloud scans (the OctoMap-compatible update path),
3. query occupancy immediately — queries are served from the voxel cache
   without waiting for octree updates (the paper's headline property),
4. finalize and serialise the backend octree.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import OctoCacheMap
from repro.octree.serialize import tree_to_bytes
from repro.sensor.pointcloud import PointCloud


def synthetic_wall_scan(num_points: int = 400, seed: int = 0) -> PointCloud:
    """Points sampled on a wall 5 m in front of the sensor."""
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            np.full(num_points, 5.0),  # wall plane x = 5
            rng.uniform(-3.0, 3.0, num_points),
            rng.uniform(0.0, 2.5, num_points),
        ]
    )
    return PointCloud(points, origin=(0.0, 0.0, 1.0))


def main() -> None:
    mapping = OctoCacheMap(resolution=0.1, depth=12, max_range=8.0)

    # A moving sensor rescans the same wall: heavy voxel duplication,
    # exactly the workload OctoCache accelerates.
    for step in range(5):
        cloud = synthetic_wall_scan(seed=step)
        record = mapping.insert_point_cloud(cloud)
        print(
            f"scan {step}: {record.observations:6d} voxel observations, "
            f"cache hit ratio so far {mapping.hit_ratio:.2f}"
        )

    # Queries answer immediately and agree exactly with vanilla OctoMap.
    on_wall = (5.0, 0.0, 1.0)
    in_air = (2.5, 0.0, 1.0)
    print(f"\noccupied at {on_wall}?  {mapping.is_occupied(on_wall)}")
    print(f"occupied at {in_air}?  {mapping.is_occupied(in_air)}")
    print(f"unknown far away?      {mapping.is_occupied((7.9, 7.9, 0.5))}")

    # Flush the cache into the octree and serialise the final map.
    mapping.finalize()
    blob = tree_to_bytes(mapping.octree)
    print(
        f"\nfinal octree: {mapping.octree.num_nodes} nodes, "
        f"{len(blob)} bytes serialised"
    )
    print(f"total mapping time: {mapping.total_seconds():.3f}s "
          f"(critical path: {mapping.critical_path_seconds():.3f}s)")


if __name__ == "__main__":
    main()
