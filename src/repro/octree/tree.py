"""Probabilistic occupancy octree (the OctoMap substrate).

The tree stores log-odds occupancy at the finest level and maintains
max-of-children values on inner nodes, with OctoMap's pruning rule
(8 equal-valued leaf children collapse into their parent).  Updates and
queries perform the root-to-leaf traversal the paper identifies as the
bottleneck (§2.2, Figure 5): an update visits up to ``2 * depth`` nodes
(down and back up), a query up to ``depth``.

Every node visit increments :attr:`OccupancyOctree.node_visits` and, when a
visit hook is installed, reports the node's id — this trace is what the
:mod:`repro.simcache` simulator replays to model CPU-cache behaviour that
pure-Python timing cannot expose.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.octree.key import (
    VoxelKey,
    child_index,
    coord_to_key,
    key_to_coord,
)
from repro.octree.node import OctreeNode
from repro.octree.occupancy import OccupancyParams

__all__ = ["OccupancyOctree"]

#: Approximate bytes per node, mirroring OctoMap's compact C++ node
#: (float value + children pointer): used for memory-overhead reporting.
NODE_BYTES = 16


class OccupancyOctree:
    """An OctoMap-style occupancy octree.

    Args:
        resolution: edge length of the finest voxel, in metres.
        depth: number of tree levels below the root; the mapping boundary
            is a cube of side ``resolution * 2**depth`` centred at the
            origin.  OctoMap's default (and the paper's "standard") is 16.
        params: occupancy-update parameters; defaults to OctoMap's.
        visit_hook: optional callable invoked with ``node_id`` on every
            node visit (used by the memory simulator).
    """

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        visit_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if not 1 <= depth <= 21:
            raise ValueError(f"depth must be in [1, 21], got {depth}")
        self.resolution = resolution
        self.depth = depth
        self.params = params or OccupancyParams()
        self.visit_hook = visit_hook
        self.node_visits = 0
        self._root: Optional[OctreeNode] = None
        self._next_node_id = 0
        self._num_nodes = 0
        self._changed_keys: Optional[set] = None
        self._key_limit = 1 << depth

    def _check_key(self, key: VoxelKey) -> None:
        """Reject keys outside the map: bits above ``depth`` would be
        silently ignored by the traversal (aliasing distinct voxels)."""
        limit = self._key_limit
        if (
            not 0 <= key[0] < limit
            or not 0 <= key[1] < limit
            or not 0 <= key[2] < limit
        ):
            raise ValueError(
                f"key {key} outside the map (components must be in [0, {limit}))"
            )

    # ------------------------------------------------------------------
    # Node allocation and visit accounting.
    # ------------------------------------------------------------------

    def _alloc(self, value: float) -> OctreeNode:
        node = OctreeNode(value, self._next_node_id)
        self._next_node_id += 1
        self._num_nodes += 1
        return node

    def _visit(self, node: OctreeNode) -> None:
        self.node_visits += 1
        if self.visit_hook is not None:
            self.visit_hook(node.node_id)

    # ------------------------------------------------------------------
    # Coordinate helpers.
    # ------------------------------------------------------------------

    def coord_to_key(self, coord: Tuple[float, float, float]) -> VoxelKey:
        """Discretise a metric coordinate to a finest-level voxel key."""
        return coord_to_key(coord, self.resolution, self.depth)

    def key_to_coord(self, key: VoxelKey) -> Tuple[float, float, float]:
        """Metric centre of the voxel addressed by ``key``."""
        return key_to_coord(key, self.resolution, self.depth)

    # ------------------------------------------------------------------
    # Updates.
    # ------------------------------------------------------------------

    def update_node(self, key: VoxelKey, occupied: bool) -> float:
        """Apply one occupied/free observation to the voxel at ``key``.

        Performs the full root-to-leaf round trip: traverse down (expanding
        pruned subtrees as needed), apply the clamped log-odds update at the
        leaf, then propagate max-of-children values back to the root,
        pruning where possible.  Returns the leaf's new log-odds value.
        """
        self._check_key(key)
        path = self._descend(key, create=True)
        leaf = path[-1]
        old_value = leaf.value
        leaf.value = self.params.update(leaf.value, occupied)
        self._ascend(path)
        if self._changed_keys is not None and leaf.value != old_value:
            self._changed_keys.add(key)
        return leaf.value

    def set_leaf(self, key: VoxelKey, value: float) -> None:
        """Overwrite the voxel at ``key`` with an absolute log-odds value.

        This is the operation cache eviction uses: the cache cell holds the
        fully accumulated (already clamped) occupancy, which replaces the
        octree's stale copy (paper §4.2.1).
        """
        self._check_key(key)
        path = self._descend(key, create=True)
        leaf = path[-1]
        if self._changed_keys is not None and leaf.value != value:
            self._changed_keys.add(key)
        leaf.value = value
        self._ascend(path)

    # ------------------------------------------------------------------
    # Change tracking (OctoMap's changedKeys: incremental consumers).
    # ------------------------------------------------------------------

    def enable_change_tracking(self) -> None:
        """Start recording the finest-level keys whose value changes.

        Incremental consumers (re-planners, map diff streaming) call
        :meth:`pop_changed_keys` after each update batch instead of
        re-scanning the whole map.
        """
        if self._changed_keys is None:
            self._changed_keys = set()

    def disable_change_tracking(self) -> None:
        """Stop recording and drop any pending changed keys."""
        self._changed_keys = None

    def pop_changed_keys(self) -> "set[VoxelKey]":
        """Return and clear the set of keys changed since the last pop.

        Raises :class:`RuntimeError` when tracking was never enabled.
        """
        if self._changed_keys is None:
            raise RuntimeError(
                "change tracking is disabled; call enable_change_tracking()"
            )
        changed = self._changed_keys
        self._changed_keys = set()
        return changed

    def update_batch(
        self, items: List[Tuple[VoxelKey, bool]]
    ) -> None:
        """Apply a batch of (key, occupied) observations in sequence."""
        for key, occupied in items:
            self.update_node(key, occupied)

    def _descend(self, key: VoxelKey, create: bool) -> List[OctreeNode]:
        """Walk root→leaf along ``key``; return the visited node path.

        With ``create=True`` the finest-level leaf is guaranteed to exist on
        return.  Two distinct cases arise when a node has no children:

        - The node *pre-existed* this call: it is a pruned leaf whose value
          covers its whole subtree, so it is **expanded** — all 8 children
          are created with the parent's value (OctoMap's ``expandNode``).
        - The node was *created during this descent*: its siblings are
          genuinely unknown, so only the on-path child is created,
          initialised at the threshold (the paper's stated initial value).
        """
        fresh = False
        if self._root is None:
            if not create:
                return []
            self._root = self._alloc(self.params.threshold)
            fresh = True
        node = self._root
        self._visit(node)
        path = [node]
        for level in range(self.depth - 1, -1, -1):
            if node.children is None:
                if not create:
                    break
                if fresh:
                    node.children = [None] * 8
                else:
                    # Expand a pruned subtree: descendants inherit its value.
                    node.children = [self._alloc(node.value) for _ in range(8)]
            slot = child_index(key, level)
            child = node.children[slot]
            if child is None:
                if not create:
                    break
                child = self._alloc(self.params.threshold)
                node.children[slot] = child
                fresh = True
            node = child
            self._visit(node)
            path.append(node)
        return path

    def _ascend(self, path: List[OctreeNode]) -> None:
        """Propagate max-of-children upward along ``path`` and prune.

        Matches the paper's update path (Figure 5): the leaf and each
        ancestor are visited again on the way back to the root.
        """
        self._visit(path[-1])
        for index in range(len(path) - 2, -1, -1):
            parent = path[index]
            self._visit(parent)
            if self._try_prune(parent):
                continue
            parent.value = max(
                child.value for child in parent.children if child is not None
            )

    def _try_prune(self, node: OctreeNode) -> bool:
        """Collapse ``node``'s children when all 8 are equal-valued leaves."""
        if not node.has_all_children():
            return False
        children = node.children
        first = children[0]
        if first.children is not None:
            return False
        value = first.value
        for child in children[1:]:
            if child.children is not None or child.value != value:
                return False
        node.children = None
        node.value = value
        self._num_nodes -= 8
        return True

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def search(self, key: VoxelKey) -> Optional[float]:
        """Log-odds occupancy of the voxel at ``key``, or ``None`` if unknown.

        Traverses root-to-leaf; stops early at a pruned node, whose value
        covers all its descendants.
        """
        self._check_key(key)
        node = self._root
        if node is None:
            return None
        self._visit(node)
        for level in range(self.depth - 1, -1, -1):
            if node.children is None:
                return node.value  # pruned subtree: uniform occupancy
            child = node.children[child_index(key, level)]
            if child is None:
                return None
            node = child
            self._visit(node)
        return node.value

    def search_at_level(self, key: VoxelKey, level: int) -> Optional[float]:
        """Occupancy of the size-``2**level`` voxel containing ``key``.

        Multi-resolution query (OctoMap's depth-limited ``search``):
        stops the root-to-leaf descent ``level`` levels early and returns
        that node's value — for an inner node the max over its subtree,
        i.e. a conservative occupancy summary of the whole block.  Used by
        hierarchical planners that clear large free regions in one query.
        """
        if not 0 <= level <= self.depth:
            raise ValueError(f"level must be in [0, {self.depth}], got {level}")
        node = self._root
        if node is None:
            return None
        self._visit(node)
        for current in range(self.depth - 1, level - 1, -1):
            if node.children is None:
                return node.value  # pruned subtree: uniform occupancy
            child = node.children[child_index(key, current)]
            if child is None:
                return None
            node = child
            self._visit(node)
        return node.value

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        """Log-odds occupancy at a metric coordinate (``None`` if unknown)."""
        return self.search(self.coord_to_key(coord))

    def is_occupied(self, coord: Tuple[float, float, float]) -> Optional[bool]:
        """Occupancy decision at a metric coordinate; ``None`` if unknown."""
        value = self.query(coord)
        if value is None:
            return None
        return self.params.is_occupied(value)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        """Number of allocated nodes currently in the tree."""
        return self._num_nodes

    def memory_bytes(self) -> int:
        """Estimated memory footprint using OctoMap's compact node size."""
        return self._num_nodes * NODE_BYTES

    def iter_leaves(self) -> Iterator[Tuple[VoxelKey, int, float]]:
        """Yield ``(min_key, level, value)`` for every leaf node.

        ``level`` is 0 for finest-resolution leaves; a pruned leaf at level
        ``l`` covers a cube of ``2**l`` voxels per axis starting at
        ``min_key``.
        """
        if self._root is None:
            return
        stack: List[Tuple[OctreeNode, int, int, int, int]] = [
            (self._root, self.depth, 0, 0, 0)
        ]
        while stack:
            node, level, kx, ky, kz = stack.pop()
            if node.children is None:
                yield ((kx, ky, kz), level, node.value)
                continue
            half = 1 << (level - 1)
            for slot in range(8):
                child = node.children[slot]
                if child is None:
                    continue
                stack.append(
                    (
                        child,
                        level - 1,
                        kx + (half if slot & 4 else 0),
                        ky + (half if slot & 2 else 0),
                        kz + (half if slot & 1 else 0),
                    )
                )

    def iter_finest_leaves(self) -> Iterator[Tuple[VoxelKey, float]]:
        """Yield ``(key, value)`` for every finest-resolution voxel.

        Pruned subtrees are expanded on the fly (can be large for coarse
        pruned regions; intended for tests and small maps).
        """
        for (kx, ky, kz), level, value in self.iter_leaves():
            span = 1 << level
            for dx in range(span):
                for dy in range(span):
                    for dz in range(span):
                        yield ((kx + dx, ky + dy, kz + dz), value)

    def __len__(self) -> int:
        return self._num_nodes
