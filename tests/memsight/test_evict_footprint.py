"""Regression: ``TenantRegistry.evict`` returns the footprint to baseline.

An evicted tenant must stop costing memory: its per-shard map slots are
dropped, its journal entries are compacted below the checkpoint, and its
changelog ring is cleared.  Only the snapshot blobs — the durable copy
eviction exists to keep — may remain.  Historically the slots were
dropped but journals and rings kept growing; this pins the full
return-to-baseline under both worker backends.
"""

import random

import pytest

from repro.service.server import OccupancyMapService, ServiceConfig
from repro.tenancy.registry import TenantRegistry

BACKENDS = ("thread", "process")


def make_service(workers):
    return OccupancyMapService(
        ServiceConfig(
            resolution=0.2,
            depth=8,
            num_shards=2,
            workers=workers,
            snapshot_interval=0,
        )
    )


def random_batches(seed, batches=4, size=50):
    rng = random.Random(seed)
    return [
        [
            (
                (rng.randrange(256), rng.randrange(256), rng.randrange(256)),
                rng.random() < 0.7,
            )
            for _ in range(size)
        ]
        for _ in range(batches)
    ]


def grow(registry, name, seed, subscribe=False):
    sub = registry.subscribe(name) if subscribe else None
    for batch in random_batches(seed):
        registry.submit_observations(name, batch, must_accept=True)
    registry.flush(name)
    if sub is not None:
        sub.close()


@pytest.mark.parametrize("workers", BACKENDS)
class TestEvictReturnsToBaseline:
    def test_map_slots_journals_and_rings_reach_zero(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                tenant = registry.create("robot-a")
                grow(registry, "robot-a", seed=21, subscribe=True)

                assert service.map.tenant_memory_bytes().get(tenant.slot, 0) > 0
                assert tenant.changelog.memory_breakdown().total_bytes > 0
                report = tenant.memory_breakdown(exact=True)
                assert report.child("durability").find(
                    "shard0/journal"
                ).total_bytes + report.child("durability").find(
                    "shard1/journal"
                ).total_bytes > 0

                registry.evict("robot-a")

                # Map slots: gone from every shard.
                assert (
                    service.map.tenant_memory_bytes().get(tenant.slot, 0) == 0
                )
                # Journals + changelog: zero (exact recount agrees).
                residual = tenant.memory_breakdown(exact=True)
                leaves = residual.leaf_totals()
                nonzero = {
                    path: nbytes
                    for path, nbytes in leaves.items()
                    if nbytes and "snapshot" not in path
                }
                assert nonzero == {}
                # Snapshots remain — they are the durable copy.
                assert any(
                    nbytes
                    for path, nbytes in leaves.items()
                    if "snapshot" in path
                )

    def test_service_total_returns_to_pre_tenant_level(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                before = service.memory_report().total_bytes
                snapshot_bytes_before = _snapshot_bytes(service)
                grow(registry, "robot-a", seed=22)
                grown = service.memory_report().total_bytes
                assert grown > before

                registry.evict("robot-a")
                after = service.memory_report(exact=True).total_bytes
                snapshot_growth = _snapshot_bytes(service) - (
                    snapshot_bytes_before
                )
                # Everything the tenant grew is released except the
                # durable snapshot blobs written by the evict's persist.
                assert after == before + snapshot_growth

    def test_restore_then_evict_again_still_returns(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                tenant = registry.create("robot-a")
                grow(registry, "robot-a", seed=23)
                registry.evict("robot-a")
                registry.restore("robot-a")
                grow(registry, "robot-a", seed=24)
                registry.evict("robot-a")
                residual = tenant.memory_breakdown(exact=True)
                assert not any(
                    nbytes
                    for path, nbytes in residual.leaf_totals().items()
                    if nbytes and "snapshot" not in path
                )
                assert (
                    service.map.tenant_memory_bytes().get(tenant.slot, 0) == 0
                )


def _snapshot_bytes(service):
    report = service.memory_report(exact=True)
    return sum(
        nbytes
        for path, nbytes in report.leaf_totals().items()
        if "snapshot" in path
    )
