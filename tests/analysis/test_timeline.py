"""Tests for the ASCII workflow timeline renderer."""

from repro.analysis.timeline import (
    render_parallel_timeline,
    render_serial_timeline,
)
from repro.core.pipeline_model import StageTimes


def batch(rt=1.0, ci=0.5, ce=0.25, ou=2.0):
    return StageTimes(
        ray_tracing=rt,
        cache_insertion=ci,
        cache_eviction=ce,
        octree_update=ou,
    )


class TestSerialTimeline:
    def test_empty(self):
        assert "empty" in render_serial_timeline([])

    def test_glyph_shares_match_durations(self):
        art = render_serial_timeline([batch()], width=80)
        bar = art.splitlines()[0].split(": ", 1)[1]
        # Octree update is ~53% of the 3.75s batch.
        assert 0.4 < bar.count("O") / len(bar) < 0.65
        assert bar.count("R") > 0
        assert bar.count("I") > 0

    def test_stage_order_per_batch(self):
        art = render_serial_timeline([batch()], width=40)
        bar = art.splitlines()[0].split(": ", 1)[1]
        # R before I before E before O.
        assert bar.index("R") < bar.index("I") < bar.index("E") < bar.index("O")

    def test_legend_present(self):
        assert "ray tracing" in render_serial_timeline([batch()])


class TestParallelTimeline:
    def test_two_threads_rendered(self):
        art = render_parallel_timeline([batch(), batch()], width=60)
        lines = art.splitlines()
        assert lines[0].startswith("thread1:")
        assert lines[1].startswith("thread2:")

    def test_thread1_never_runs_octree(self):
        art = render_parallel_timeline([batch()] * 3, width=80)
        assert "O" not in art.splitlines()[0]
        assert "O" in art.splitlines()[1]

    def test_wait_gap_appears_when_octree_dominates(self):
        slow_octree = [batch(rt=0.1, ci=0.1, ce=0.1, ou=5.0)] * 3
        art = render_parallel_timeline(slow_octree, width=80)
        thread1 = art.splitlines()[0]
        assert "." in thread1  # the Figure-13(b) waiting gap

    def test_no_wait_when_thread1_dominates(self):
        busy_thread1 = [batch(rt=5.0, ci=2.0, ce=1.0, ou=0.1)] * 3
        art = render_parallel_timeline(busy_thread1, width=80)
        thread1_bar = art.splitlines()[0].split(": ", 1)[1]
        assert thread1_bar.count(".") == 0

    def test_empty(self):
        assert "empty" in render_parallel_timeline([])
