"""Per-stage runtime accounting (Figures 6, 13, 22; Table 3).

Every mapping pipeline owns a :class:`StageTimings` and wraps each workflow
stage (ray tracing, cache insertion, cache eviction, octree update, buffer
enqueue/dequeue, thread-1 wait) in a :class:`Stopwatch` block, so runtime
decompositions fall out of any run for free.
"""

from __future__ import annotations

import time
from collections import defaultdict
from typing import Dict, Iterable, List, Optional

__all__ = ["StageTimings", "Stopwatch", "STANDARD_STAGES"]

#: Canonical stage names used across pipelines, in workflow order.
STANDARD_STAGES = (
    "ray_tracing",
    "cache_insertion",
    "cache_eviction",
    "octree_update",
    "enqueue",
    "dequeue",
    "queue_wait",
    "thread1_wait",
)


class StageTimings:
    """Accumulated wall-clock seconds and invocation counts per stage."""

    def __init__(self) -> None:
        self.seconds: Dict[str, float] = defaultdict(float)
        self.counts: Dict[str, int] = defaultdict(int)

    def add(self, stage: str, seconds: float) -> None:
        """Record ``seconds`` of work under ``stage``."""
        if seconds < 0:
            raise ValueError(f"negative duration for stage {stage!r}: {seconds}")
        self.seconds[stage] += seconds
        self.counts[stage] += 1

    def stage(self, name: str) -> "Stopwatch":
        """Context manager timing one block under ``name``."""
        return Stopwatch(self, name)

    def total(self, stages: Optional[Iterable[str]] = None) -> float:
        """Sum of recorded seconds, optionally restricted to ``stages``."""
        if stages is None:
            return sum(self.seconds.values())
        return sum(self.seconds.get(stage, 0.0) for stage in stages)

    def fraction(self, stage: str) -> float:
        """Share of total time spent in ``stage`` (0.0 when nothing ran)."""
        total = self.total()
        return self.seconds.get(stage, 0.0) / total if total else 0.0

    def merge(self, other: "StageTimings") -> None:
        """Fold another accumulator into this one."""
        for stage, seconds in other.seconds.items():
            self.seconds[stage] += seconds
        for stage, count in other.counts.items():
            self.counts[stage] += count

    def as_dict(self) -> Dict[str, float]:
        """Plain dict of stage → seconds (stable for reports)."""
        return dict(self.seconds)

    def rows(self) -> List[str]:
        """Human-readable decomposition lines, standard stages first."""
        total = self.total()
        ordered = [s for s in STANDARD_STAGES if s in self.seconds]
        ordered += [s for s in sorted(self.seconds) if s not in STANDARD_STAGES]
        lines = []
        for stage in ordered:
            seconds = self.seconds[stage]
            share = seconds / total * 100 if total else 0.0
            lines.append(f"{stage:>16}: {seconds:9.4f}s  ({share:5.1f}%)")
        return lines

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"StageTimings({dict(self.seconds)!r})"


class Stopwatch:
    """Context manager adding its elapsed time to a :class:`StageTimings`."""

    __slots__ = ("_timings", "_stage", "_start", "elapsed")

    def __init__(self, timings: StageTimings, stage: str) -> None:
        self._timings = timings
        self._stage = stage
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.elapsed = time.perf_counter() - self._start
        self._timings.add(self._stage, self.elapsed)
