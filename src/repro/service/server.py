"""``OccupancyMapService``: the concurrent front door to a ShardedMap.

The ingestion path generalises the paper's two-thread schedule (§4.4) to
N shards: a producer's scan is traced once (the latency-critical stage),
partitioned by Morton prefix, and each slice is pushed onto its shard's
capacity-bounded queue; one worker thread per shard drains its queue,
coalescing adjacent sub-batches into a single cache-insert → evict →
octree-update cycle.  Queries never traverse the queues — they go
straight to the shard (cache first, octree under the shard lock), so a
queue backlog delays *map freshness*, never *query latency*.

Backpressure is explicit because queue capacity is reserved up front
(a per-shard semaphore guards a slot per queued sub-batch):

- ``"block"`` (default): ``submit`` waits for queue space — producers
  are throttled to the map's sustainable ingest rate.  A per-request
  :class:`~repro.resilience.Deadline` turns an unbounded wait into
  :class:`~repro.resilience.DeadlineExceeded`.
- ``"reject"``: ``submit`` drops the slice, counts it, and reports it in
  the receipt — producers that must not stall (a planner's control loop)
  trade completeness for latency.

``must_accept`` submissions are **all-or-nothing**: a slot is reserved
on *every* target shard before *any* slice is enqueued, so a rejected
must-accept submission leaves the map byte-identical — no partially
ingested scans.

The service is crash-resilient (see ``docs/resilience.md``): every
accepted batch is journaled before it is applied, shards are
checkpointed periodically (snapshot + journal position), transient apply
failures are retried with jittered backoff, and a crashed shard worker
is replaced by a fresh thread that rebuilds the shard *exactly* from its
last checkpoint plus journal replay.  While a shard rebuilds, the old
map keeps answering queries — stale but self-consistent reads, flagged
through :meth:`query_detailed`.  Shard health (``healthy`` /
``recovering`` / ``dead``) is surfaced through the metrics registry.

Every stage reports through one structured-telemetry path: the service
owns an always-on :class:`~repro.telemetry.Tracer` whose
:class:`~repro.telemetry.MetricsSink` feeds the
:class:`~repro.service.metrics.MetricsRegistry` (ingest/apply/query
latency histograms, per-shard counters) from the very spans a
:class:`~repro.telemetry.ForwardSink` mirrors into the global tracer
whenever pipeline tracing is enabled — so ``serve-bench`` metric totals
and ``trace-bench`` span counts agree by construction.  Queue-depth
gauges (not span-shaped) stay direct.
"""

from __future__ import annotations

import atexit
import logging
import queue
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.core.config import CacheConfig
from repro.kernels import validate_kernel
from repro.memsight.costs import OBS_BYTES
from repro.memsight.pressure import PressureConfig, PressureMonitor
from repro.memsight.report import MemoryReport
from repro.memsight.rss import peak_rss_bytes, process_rss_bytes
from repro.octree.key import VoxelKey
from repro.octree.occupancy import OccupancyParams
from repro.octree.rayquery import RayHit
from repro.octree.tree import OccupancyOctree
from repro.resilience.faults import FaultPlan, InjectedCrash
from repro.resilience.policy import Deadline, DeadlineExceeded, RetryPolicy
from repro.resilience.recovery import CheckpointStore, ShardHealth
from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import trace_scan, trace_scan_rt
from repro.service.metrics import MetricsRegistry
from repro.service.sharded_map import ShardedMap
from repro.telemetry import ForwardSink, MetricsSink, Tracer, get_tracer
from repro.telemetry.tracer import current_span_info

__all__ = [
    "BackpressureError",
    "IngestReceipt",
    "OccupancyMapService",
    "QueryResult",
    "ServiceConfig",
]

_BACKPRESSURE_POLICIES = ("block", "reject")

_WORKER_BACKENDS = ("thread", "process")

#: Sentinel telling a shard worker to exit.
_STOP = object()

#: Lifecycle events (crashes, recoveries, deaths) go through here; silent
#: until a handler is attached — ``repro.obs.configure_json_logging()``
#: renders them as span-correlated JSON lines (docs/observability.md).
_LOG = logging.getLogger("repro.service")


class BackpressureError(RuntimeError):
    """Raised when a submission that must succeed was rejected.

    Only ``submit(..., must_accept=True)`` raises this, and it is
    all-or-nothing: when it raises, *no* slice of the submission was
    enqueued and the map is untouched.
    """


@dataclass(frozen=True)
class ServiceConfig:
    """Shape and policy of the occupancy-map service.

    Attributes:
        resolution: finest voxel edge length (metres).
        depth: octree depth.
        num_shards: spatial shard count (worker thread per shard).
        queue_capacity: bound on each shard's ingest queue (sub-batches);
            enforced by per-shard slot reservation at submit time.
        backpressure: ``"block"`` or ``"reject"`` (see module docstring).
        coalesce: max queued sub-batches merged into one apply cycle;
            1 disables coalescing.
        max_range: sensor range clamp during ray tracing.
        rt: duplicate-free (OctoMap-RT) ray tracing.
        kernel: ``"scalar"`` or ``"vector"`` — the tracing/apply kernel
            for ingest tracing and every shard pipeline (see
            ``docs/kernels.md``; both kernels build bit-identical maps,
            the vector one batches each scan through numpy array
            passes).
        cache_config: per-shard cache shape (defaults per shard).
        default_deadline: default per-request deadline (seconds) applied
            to every submission that doesn't carry its own; ``None``
            (default) waits indefinitely under ``block`` backpressure.
        retry_attempts: total apply attempts per batch (1 = no retry).
        retry_base_delay / retry_max_delay: jittered exponential backoff
            shape between apply attempts.
        retry_seed: RNG seed for backoff jitter (per-shard offset is
            added); ``None`` for nondeterministic jitter.
        snapshot_interval: applied batches between shard checkpoints;
            0 disables checkpointing (recovery then replays the whole
            journal).
        max_recoveries: rebuilds a shard may undergo before it is
            declared ``dead`` and starts discarding its traffic.
        checkpoint_dir: when set, shard snapshots are also persisted as
            ``<dir>/shard-<id>.oct`` files.
        workers: ``"thread"`` (default — shard pipelines live in this
            process, workers contend on the GIL) or ``"process"`` —
            shard pipelines live in child processes behind
            :class:`~repro.mp.backend.ProcessShardedMap`, so shard
            compute runs on real cores.  Queueing, backpressure,
            journaling, and recovery semantics are identical.
        num_procs: worker process count for ``workers="process"``
            (default: one per shard); shards are assigned round-robin.
        mem_soft_bytes / mem_hard_bytes: total-footprint pressure
            watermarks (accounted bytes, see ``docs/memory.md``);
            ``None`` disables that check.
        tenant_mem_soft_bytes / tenant_mem_hard_bytes: per-tenant
            watermarks applied to each tenant's attributed footprint.
    """

    resolution: float
    depth: int = 12
    num_shards: int = 4
    queue_capacity: int = 8
    backpressure: str = "block"
    coalesce: int = 4
    max_range: float = float("inf")
    rt: bool = False
    kernel: str = "scalar"
    cache_config: Optional[CacheConfig] = None
    default_deadline: Optional[float] = None
    retry_attempts: int = 3
    retry_base_delay: float = 0.002
    retry_max_delay: float = 0.1
    retry_seed: Optional[int] = 0
    snapshot_interval: int = 16
    max_recoveries: int = 3
    checkpoint_dir: Optional[str] = None
    workers: str = "thread"
    num_procs: Optional[int] = None
    mem_soft_bytes: Optional[int] = None
    mem_hard_bytes: Optional[int] = None
    tenant_mem_soft_bytes: Optional[int] = None
    tenant_mem_hard_bytes: Optional[int] = None

    def pressure_config(self) -> PressureConfig:
        """The watermark fields as a validated :class:`PressureConfig`."""
        return PressureConfig(
            soft_bytes=self.mem_soft_bytes,
            hard_bytes=self.mem_hard_bytes,
            tenant_soft_bytes=self.tenant_mem_soft_bytes,
            tenant_hard_bytes=self.tenant_mem_hard_bytes,
        )

    def __post_init__(self) -> None:
        if self.resolution <= 0:
            raise ValueError(f"resolution must be positive, got {self.resolution}")
        if self.num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {self.num_shards}")
        if self.queue_capacity < 1:
            raise ValueError(
                f"queue_capacity must be >= 1, got {self.queue_capacity}"
            )
        if self.backpressure not in _BACKPRESSURE_POLICIES:
            raise ValueError(
                f"backpressure must be one of {_BACKPRESSURE_POLICIES}, "
                f"got {self.backpressure!r}"
            )
        if self.coalesce < 1:
            raise ValueError(f"coalesce must be >= 1, got {self.coalesce}")
        validate_kernel(self.kernel)
        if self.default_deadline is not None and self.default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {self.default_deadline}"
            )
        if self.retry_attempts < 1:
            raise ValueError(
                f"retry_attempts must be >= 1, got {self.retry_attempts}"
            )
        if self.retry_base_delay < 0 or self.retry_max_delay < 0:
            raise ValueError("retry delays must be >= 0")
        if self.snapshot_interval < 0:
            raise ValueError(
                f"snapshot_interval must be >= 0, got {self.snapshot_interval}"
            )
        if self.max_recoveries < 0:
            raise ValueError(
                f"max_recoveries must be >= 0, got {self.max_recoveries}"
            )
        if self.workers not in _WORKER_BACKENDS:
            raise ValueError(
                f"workers must be one of {_WORKER_BACKENDS}, "
                f"got {self.workers!r}"
            )
        if self.num_procs is not None:
            if self.workers != "process":
                raise ValueError(
                    "num_procs only applies to workers='process'"
                )
            if not 1 <= self.num_procs <= self.num_shards:
                raise ValueError(
                    f"num_procs must be in [1, num_shards="
                    f"{self.num_shards}], got {self.num_procs}"
                )
        # Validates the watermark fields (non-negative, soft <= hard).
        self.pressure_config()


@dataclass(frozen=True)
class IngestReceipt:
    """What happened to one submitted scan.

    Attributes:
        observations: voxel observations the scan traced to.
        enqueued: observations accepted onto shard queues.
        rejected: observations dropped by the ``reject`` policy (or
            routed to a dead shard).
        trace_seconds: ray-tracing time (the critical-path stage).
    """

    observations: int
    enqueued: int
    rejected: int
    trace_seconds: float

    @property
    def accepted(self) -> bool:
        return self.rejected == 0


@dataclass(frozen=True)
class QueryResult:
    """A point query answer plus the serving shard's health.

    ``stale`` is set while the owning shard is recovering (the old map
    keeps serving self-consistent but possibly out-of-date answers) or
    dead (the map stopped advancing entirely).
    """

    value: Optional[float]
    occupied: Optional[bool]
    shard: int
    health: str

    @property
    def stale(self) -> bool:
        return self.health != ShardHealth.HEALTHY.value


class OccupancyMapService:
    """A sharded, concurrent, crash-resilient occupancy-map server.

    Typical use::

        with OccupancyMapService(ServiceConfig(resolution=0.2)) as service:
            service.submit(points, origin=(0, 0, 0))   # producers
            service.is_occupied((1.0, 0.0, 0.5))       # consumers
            service.flush()                            # barrier
            print(service.stats_report())

    Args:
        config: service shape and policy.
        fault_plan: deterministic fault injection for chaos testing
            (inert empty plan by default — safe in production).
    """

    def __init__(
        self, config: ServiceConfig, fault_plan: Optional[FaultPlan] = None
    ) -> None:
        self.config = config
        self.fault_plan = fault_plan or FaultPlan()
        self.metrics = MetricsRegistry()
        #: Wall-clock start (``/healthz`` uptime) and the lazily built
        #: SLO engine (see :meth:`slo_engine`).
        self.started_at = time.time()
        self._slo = None
        self._slo_lock = threading.Lock()
        # The service's own always-on tracer: metrics work without global
        # tracing, and the ForwardSink mirrors the same spans/counts into
        # the global tracer's sinks whenever someone enables it.
        self.tracer = Tracer(
            sinks=[MetricsSink(self.metrics), ForwardSink(get_tracer())]
        )
        if config.workers == "process":
            # Imported lazily: the thread backend must not pay for (or
            # depend on) the multiprocessing machinery.
            from repro.mp.backend import ProcessShardedMap

            self.map = ProcessShardedMap(
                resolution=config.resolution,
                depth=config.depth,
                num_shards=config.num_shards,
                max_range=config.max_range,
                cache_config=config.cache_config,
                rt=config.rt,
                kernel=config.kernel,
                num_procs=config.num_procs,
            )
        else:
            self.map = ShardedMap(
                resolution=config.resolution,
                depth=config.depth,
                num_shards=config.num_shards,
                max_range=config.max_range,
                cache_config=config.cache_config,
                rt=config.rt,
                kernel=config.kernel,
            )
        self.map.fault_plan = self.fault_plan
        self.store = CheckpointStore(
            config.num_shards,
            directory=config.checkpoint_dir,
            fault_plan=self.fault_plan,
        )
        if config.workers == "process":
            # Child-process spans/counters relay into the service tracer
            # (registry + forward sinks), and a process that died taking
            # sibling shards with it lazily restores them from the store.
            self.map.relay_tracer = self.tracer
            self.map.recovery_source = self.store.recovery_state
        self._queues: List["queue.Queue"] = [
            queue.Queue() for _ in range(config.num_shards)
        ]
        # One slot per queueable sub-batch; reserved at submit time,
        # released at dequeue.  Reserving before enqueueing is what makes
        # must_accept submissions all-or-nothing.
        self._slots: List[threading.Semaphore] = [
            threading.Semaphore(config.queue_capacity)
            for _ in range(config.num_shards)
        ]
        self._outstanding_cv = threading.Condition()
        self._outstanding = 0
        # Observations sitting in each shard's queue right now — the
        # O(1) counters behind the ``queues`` memory component
        # (incremented at enqueue, decremented at dequeue, both under
        # ``_outstanding_cv`` which those paths already take).
        self._queued_obs: List[int] = [0] * config.num_shards
        #: Watermark evaluation over the accounted footprint; advisory
        #: (gauge + log + hook), refreshed by scrapes and benches.
        self.pressure = PressureMonitor(
            config.pressure_config(), metrics=self.metrics
        )
        self._errors: List[BaseException] = []
        self._close_lock = threading.RLock()
        self._closed = False
        self._health: List[ShardHealth] = [
            ShardHealth.HEALTHY for _ in range(config.num_shards)
        ]
        self._recoveries = [0] * config.num_shards
        self._applied_since_snapshot = [0] * config.num_shards
        self._retry: List[RetryPolicy] = [
            RetryPolicy(
                max_attempts=config.retry_attempts,
                base_delay=config.retry_base_delay,
                max_delay=config.retry_max_delay,
                seed=(
                    None
                    if config.retry_seed is None
                    else config.retry_seed + shard_id
                ),
            )
            for shard_id in range(config.num_shards)
        ]
        for shard_id in range(config.num_shards):
            self.metrics.state(
                f"shard_health.shard{shard_id}",
                initial=ShardHealth.HEALTHY.value,
            )
        self._workers: List[threading.Thread] = [
            self._make_worker(shard_id)
            for shard_id in range(config.num_shards)
        ]
        for worker in self._workers:
            worker.start()
        # Last: close this service at interpreter exit if the owner never
        # did.  Registering *after* multiprocessing has initialised (the
        # process backend spawned its workers above) means atexit's LIFO
        # order runs our handler before multiprocessing's own teardown —
        # a clean drain/flush instead of racing dying daemon children.
        atexit.register(self._close_at_exit)

    def _make_worker(
        self,
        shard_id: int,
        generation: int = 0,
        recover_from: Optional[BaseException] = None,
    ) -> threading.Thread:
        suffix = f"-r{generation}" if generation else ""
        return threading.Thread(
            target=self._worker_main,
            args=(shard_id,),
            kwargs={"recover_from": recover_from},
            name=f"octocache-shard-{shard_id}{suffix}",
            daemon=True,
        )

    # ------------------------------------------------------------------
    # Ingestion path (producers).
    # ------------------------------------------------------------------

    def submit(
        self,
        points,
        origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
        must_accept: bool = False,
        deadline: Union[None, float, Deadline] = None,
    ) -> IngestReceipt:
        """Trace one scan and enqueue its per-shard slices.

        Tracing runs on the caller's thread (it is the latency-critical
        stage and needs no shard lock); the octree-bound work is deferred
        to the shard workers.  Under ``reject`` backpressure a full shard
        queue drops that shard's slice and the receipt reports it —
        unless ``must_accept`` is set, in which case the submission is
        all-or-nothing: a :class:`BackpressureError` guarantees nothing
        was enqueued.  ``deadline`` (seconds, or a
        :class:`~repro.resilience.Deadline`) bounds how long a blocked
        submission may wait for queue space.

        The whole call runs under an ``ingest.request`` root span whose
        id and start stamp ride every enqueued slice, so the downstream
        queue-wait / apply / end-to-end spans all parent to the request
        that produced them (the latency waterfall).
        """
        self._check_open()
        self._raise_worker_errors()
        if isinstance(points, PointCloud):
            cloud = points
        else:
            cloud = PointCloud(points, origin)
        trace_fn = trace_scan_rt if self.config.rt else trace_scan
        with self.tracer.span(
            "ingest.request", category="service", points=len(cloud.points)
        ) as request_span:
            with self.tracer.span(
                "ingest.trace", category="service", points=len(cloud.points)
            ) as span:
                batch = trace_fn(
                    cloud,
                    self.config.resolution,
                    self.config.depth,
                    max_range=self.config.max_range,
                    kernel=self.config.kernel,
                )
                span.set(observations=len(batch))
            trace_seconds = span.duration
            receipt = self.submit_observations(
                batch.observations,
                trace_seconds=trace_seconds,
                must_accept=must_accept,
                deadline=deadline,
                request_context=(request_span.span_id, request_span.start),
            )
        self.tracer.count("ingest.scans", category="service")
        return receipt

    def submit_observations(
        self,
        observations: Sequence[Tuple[VoxelKey, bool]],
        trace_seconds: float = 0.0,
        must_accept: bool = False,
        deadline: Union[None, float, Deadline] = None,
        request_context: Optional[Tuple[int, float]] = None,
    ) -> IngestReceipt:
        """Enqueue pre-traced observations (the post-trace half of submit).

        Capacity is reserved on **every** target shard before anything is
        enqueued.  For ``must_accept`` submissions this makes rejection
        atomic: if any shard has no room (or the deadline expires, or a
        slice routes to a dead shard), every reservation is rolled back,
        nothing is enqueued, and the map state is untouched.

        ``request_context`` is ``(request_span_id, submitted_at)`` — the
        client-submit stamp that flows with every enqueued slice so the
        shard workers can attribute queue-wait and end-to-end latency
        back to the request.  Defaults to the caller's ambient span (or
        an anonymous stamp taken now).
        """
        self._check_open()
        if request_context is None:
            info = current_span_info()
            request_context = (info[0] if info else 0, time.perf_counter())
        if not isinstance(deadline, Deadline):
            timeout = (
                deadline if deadline is not None
                else self.config.default_deadline
            )
            deadline = Deadline(timeout)
        self.tracer.count("ingest.requests", category="service")
        enqueued = 0
        rejected = 0
        with self.tracer.span(
            "ingest.enqueue", category="service", observations=len(observations)
        ) as span:
            targets: List[Tuple[int, List[Tuple[VoxelKey, bool]]]] = []
            failed: List[Tuple[int, List[Tuple[VoxelKey, bool]]]] = []
            for shard_id, part in enumerate(
                self.map.router.partition(observations)
            ):
                if not part:
                    continue
                if self._health[shard_id] is ShardHealth.DEAD:
                    failed.append((shard_id, part))
                    self.tracer.count(
                        "ingest.dead_shard_observations",
                        len(part),
                        category="service",
                    )
                    continue
                targets.append((shard_id, part))
            # Phase 1: reserve a queue slot on every live target shard.
            reserved: List[Tuple[int, List[Tuple[VoxelKey, bool]]]] = []
            try:
                for shard_id, part in targets:
                    if (
                        self.fault_plan.check("queue.enqueue", shard=shard_id)
                        == "drop"
                    ):
                        failed.append((shard_id, part))
                        continue
                    if self._reserve_slot(shard_id, deadline):
                        reserved.append((shard_id, part))
                    else:
                        failed.append((shard_id, part))
                        if must_accept:
                            break  # all-or-nothing: stop reserving
            except BaseException as error:
                for shard_id, _part in reserved:
                    self._slots[shard_id].release()
                if isinstance(error, DeadlineExceeded):
                    self.tracer.count(
                        "ingest.deadline_exceeded", category="service"
                    )
                raise
            if failed and must_accept:
                # Roll back: not a single slice reaches a queue.
                for shard_id, _part in reserved:
                    self._slots[shard_id].release()
                rejected = sum(len(part) for _sid, part in failed)
                rejected += sum(len(part) for _sid, part in reserved)
                span.set(enqueued=0, rejected=rejected)
                self._count_rejected(len(observations), rejected)
                raise BackpressureError(
                    f"{rejected} observation(s) could not be accepted "
                    f"atomically ({len(failed)} shard slice(s) rejected); "
                    f"nothing was enqueued"
                )
            # Phase 2: enqueue the reserved slices (queues are unbounded;
            # the reservation *is* the capacity check, so this cannot fail).
            for shard_id, part in reserved:
                self._enqueue_reserved(shard_id, part, request_context)
                enqueued += len(part)
            rejected = sum(len(part) for _sid, part in failed)
            span.set(enqueued=enqueued, rejected=rejected)
        self._count_rejected(len(observations), rejected)
        return IngestReceipt(
            observations=len(observations),
            enqueued=enqueued,
            rejected=rejected,
            trace_seconds=trace_seconds,
        )

    def _count_rejected(self, observations: int, rejected: int) -> None:
        self.tracer.count(
            "ingest.observations", observations, category="service"
        )
        if rejected:
            self.tracer.count(
                "ingest.rejected_observations", rejected, category="service"
            )
            self.tracer.count("ingest.rejected_batches", category="service")

    def _reserve_slot(self, shard_id: int, deadline: Deadline) -> bool:
        """Claim one queue slot; False means the slice is rejected."""
        slot = self._slots[shard_id]
        if self.config.backpressure == "reject":
            return slot.acquire(blocking=False)
        remaining = deadline.remaining()
        if remaining is None:
            slot.acquire()
            return True
        if not slot.acquire(timeout=remaining):
            raise DeadlineExceeded(
                f"deadline exceeded waiting for queue space on shard {shard_id}"
            )
        return True

    def _enqueue_reserved(
        self,
        shard_id: int,
        part: List[Tuple[VoxelKey, bool]],
        request_context: Tuple[int, float],
    ) -> None:
        with self._outstanding_cv:
            self._outstanding += 1
            self._queued_obs[shard_id] += len(part)
        # Items carry their enqueue timestamp plus the request context
        # (span id + client-submit stamp) so the worker can emit the
        # slice's queue-wait and end-to-end spans parented to the
        # request that produced them.
        self._queues[shard_id].put(
            (part, time.perf_counter(), request_context)
        )
        self.metrics.gauge(f"queue_depth.shard{shard_id}").set(
            self._queues[shard_id].qsize()
        )

    # ------------------------------------------------------------------
    # Shard workers.
    # ------------------------------------------------------------------

    def _worker_main(
        self, shard_id: int, recover_from: Optional[BaseException] = None
    ) -> None:
        if recover_from is not None:
            try:
                self._recover_shard(shard_id, recover_from)
            except BaseException as error:  # rebuild itself failed
                with self._outstanding_cv:
                    self._errors.append(error)
                    self._outstanding_cv.notify_all()
                self._set_health(shard_id, ShardHealth.DEAD)
        try:
            self._worker_loop(shard_id)
        except InjectedCrash as error:
            # The worker thread dies with its shard; a replacement thread
            # rebuilds the shard from snapshot + journal, then takes over
            # the queue.
            self.tracer.count("shard.worker_restarts", category="service")
            _LOG.warning(
                "shard worker crashed; starting replacement",
                extra={"shard": shard_id, "cause": repr(error)},
            )
            replacement = self._make_worker(
                shard_id,
                generation=self._recoveries[shard_id] + 1,
                recover_from=error,
            )
            self._workers[shard_id] = replacement
            replacement.start()

    def _worker_loop(self, shard_id: int) -> None:
        shard_queue = self._queues[shard_id]
        depth_gauge = self.metrics.gauge(f"queue_depth.shard{shard_id}")
        freshness_gauge = self.metrics.gauge("ingest.freshness_lag")
        stop = False
        while not stop:
            item = shard_queue.get()
            if item is _STOP:
                return
            parts = [item]
            # Coalesce whatever else is already queued (up to the limit):
            # one lock acquisition and one eviction scan amortised over
            # several sub-batches.
            while len(parts) < self.config.coalesce:
                try:
                    extra = shard_queue.get_nowait()
                except queue.Empty:
                    break
                if extra is _STOP:
                    stop = True
                    break
                parts.append(extra)
            # Dequeued sub-batches free their reserved slots immediately:
            # queue_capacity bounds *queued* work, not in-flight work.
            self._slots[shard_id].release(len(parts))
            with self._outstanding_cv:
                self._queued_obs[shard_id] -= sum(
                    len(part) for part, _ts, _ctx in parts
                )
            depth_gauge.set(shard_queue.qsize())
            dequeued_at = time.perf_counter()
            for part, enqueued_at, (request_id, _submitted_at) in parts:
                self.tracer.record_span(
                    "shard.queue_wait",
                    "service",
                    start=enqueued_at,
                    duration=max(0.0, dequeued_at - enqueued_at),
                    parent_id=request_id or None,
                    shard=shard_id,
                    observations=len(part),
                )
            observations = (
                parts[0][0]
                if len(parts) == 1
                else [obs for part, _ts, _ctx in parts for obs in part]
            )
            try:
                if self._health[shard_id] is ShardHealth.DEAD:
                    self.tracer.count(
                        "shard.discarded_batches", category="service"
                    )
                    continue
                # Journal before applying: a crash mid-apply rebuilds
                # from the journal, so accepted work is never lost.
                self.store.append(shard_id, observations)
                with self.tracer.span(
                    "shard.apply",
                    category="service",
                    shard=shard_id,
                    parts=len(parts),
                    observations=len(observations),
                ):
                    self._apply_with_retry(shard_id, observations)
                self.tracer.count("shard.batches_applied", category="service")
                # The batch is visible to queries now: close each slice's
                # end-to-end latency (client submit -> applied) and its
                # ingest-freshness lag (accepted -> applied), both
                # parented to the originating request span.
                applied_at = time.perf_counter()
                for part, enqueued_at, (request_id, submitted_at) in parts:
                    self.tracer.record_span(
                        "ingest.e2e",
                        "service",
                        start=submitted_at,
                        duration=max(0.0, applied_at - submitted_at),
                        parent_id=request_id or None,
                        shard=shard_id,
                        observations=len(part),
                    )
                    self.tracer.record_span(
                        "ingest.freshness",
                        "service",
                        start=enqueued_at,
                        duration=max(0.0, applied_at - enqueued_at),
                        parent_id=request_id or None,
                        shard=shard_id,
                    )
                    freshness_gauge.set(max(0.0, applied_at - submitted_at))
                if len(parts) > 1:
                    self.tracer.count(
                        "shard.batches_coalesced",
                        len(parts) - 1,
                        category="service",
                    )
                self._applied_since_snapshot[shard_id] += 1
                interval = self.config.snapshot_interval
                if interval and self._applied_since_snapshot[shard_id] >= interval:
                    self._write_checkpoint(shard_id)
            except InjectedCrash:
                # Flag the shard *before* outstanding work is released so
                # flush() keeps waiting until the rebuilt shard is
                # swapped in; then let the crash kill this worker.  In
                # process mode the crash is made *real*: the shard's
                # worker process is SIGKILLed, so recovery rebuilds an
                # actually-empty process, not a pretend-crashed one.
                self._set_health(shard_id, ShardHealth.RECOVERING)
                self._kill_worker_process(shard_id)
                if stop:
                    # Don't lose the shutdown signal with the thread.
                    shard_queue.put(_STOP)
                raise
            except BaseException as error:
                with self._outstanding_cv:
                    self._errors.append(error)
                    self._outstanding_cv.notify_all()
                # Surface the error (flush raises) *and* repair the
                # shard in place: the failed batch is journaled, so the
                # rebuild re-applies it instead of silently dropping it.
                try:
                    self._recover_shard(shard_id, error)
                except BaseException as rebuild_error:
                    with self._outstanding_cv:
                        self._errors.append(rebuild_error)
                        self._outstanding_cv.notify_all()
                    self._set_health(shard_id, ShardHealth.DEAD)
            finally:
                with self._outstanding_cv:
                    self._outstanding -= len(parts)
                    self._outstanding_cv.notify_all()

    def _apply_with_retry(
        self, shard_id: int, observations: List[Tuple[VoxelKey, bool]]
    ) -> None:
        """Apply one batch, retrying transient failures with backoff.

        :class:`InjectedCrash` is never retried — it models a fatal
        worker failure and escalates straight to recovery.
        """
        policy = self._retry[shard_id]
        attempt = 0
        while True:
            try:
                if (
                    self.fault_plan.check("shard.apply", shard=shard_id)
                    == "drop"
                ):
                    self.tracer.count(
                        "shard.dropped_batches", category="service"
                    )
                    return
                self.map.apply_to_shard(shard_id, observations)
                return
            except InjectedCrash:
                raise
            except BaseException:
                attempt += 1
                if attempt >= policy.max_attempts:
                    raise
                self.tracer.count("shard.retries", category="service")
                policy.sleep(attempt - 1)

    def _kill_worker_process(self, shard_id: int) -> None:
        """SIGKILL a shard's worker process, if the backend has one.

        No-op for the thread backend and for a process that already
        died (a real death *is* the crash being handled).
        """
        kill = getattr(self.map, "kill_shard_process", None)
        if kill is None:
            return
        try:
            kill(shard_id)
        except Exception:  # pragma: no cover - racing a dying process
            pass

    def _write_checkpoint(self, shard_id: int) -> None:
        """Snapshot one shard's authoritative tree at a journal boundary.

        Runs on the shard's worker thread, which is the only appender to
        the shard's journal — so ``journal_length`` here equals exactly
        the entries already applied, and the snapshot is a precise prefix
        of the shard's history.  The snapshot is exported as serialize-v2
        bytes by the map backend (in the worker process, for the process
        backend) and stored verbatim.
        """
        upto = self.store.journal_length(shard_id)
        try:
            blob = self.map.shard_snapshot_blob(shard_id)
            with self.tracer.span(
                "shard.snapshot", category="service", shard=shard_id
            ):
                self.store.write_snapshot_blob(shard_id, blob, upto)
        except InjectedCrash:
            raise
        except BaseException as error:
            # A failed checkpoint is not fatal: the previous snapshot
            # stays valid and the journal keeps growing, so recovery just
            # replays a longer tail.
            self.tracer.count("shard.snapshot_failures", category="service")
            _LOG.warning(
                "shard checkpoint failed; journal keeps growing",
                extra={"shard": shard_id, "cause": repr(error)},
            )
            return
        self._applied_since_snapshot[shard_id] = 0
        self.tracer.count("shard.snapshots", category="service")

    def _recover_shard(self, shard_id: int, cause: BaseException) -> None:
        """Rebuild one shard exactly from snapshot + journal replay.

        The rebuild runs off-lock — the old pipeline keeps serving
        (stale) queries — and the finished replacement is swapped in
        atomically under the shard lock.  A shard that exceeds its
        recovery budget is declared dead instead.
        """
        self._set_health(shard_id, ShardHealth.RECOVERING)
        self._recoveries[shard_id] += 1
        self.tracer.count("shard.recoveries", category="service")
        if self._recoveries[shard_id] > self.config.max_recoveries:
            self.tracer.count("shard.deaths", category="service")
            _LOG.error(
                "shard exhausted its recovery budget; declaring it dead",
                extra={
                    "shard": shard_id,
                    "recoveries": self._recoveries[shard_id],
                    "max_recoveries": self.config.max_recoveries,
                },
            )
            self._set_health(shard_id, ShardHealth.DEAD)
            return
        with self.tracer.span(
            "shard.recover", category="service", shard=shard_id
        ) as span:
            checkpoint, tail = self.store.recovery_state(shard_id)
            self.map.restore_shard(shard_id, checkpoint, tail)
            span.set(
                replayed=len(tail),
                from_snapshot=checkpoint is not None,
                cause=type(cause).__name__,
            )
            _LOG.info(
                "shard rebuilt exactly from checkpoint + journal replay",
                extra={
                    "shard": shard_id,
                    "replayed": len(tail),
                    "from_snapshot": checkpoint is not None,
                    "cause": type(cause).__name__,
                },
            )
        self._applied_since_snapshot[shard_id] = 0
        self._set_health(shard_id, ShardHealth.HEALTHY)

    def _set_health(self, shard_id: int, health: ShardHealth) -> None:
        with self._outstanding_cv:
            self._health[shard_id] = health
            self._outstanding_cv.notify_all()
        self.metrics.state(f"shard_health.shard{shard_id}").set(health.value)

    def shard_health(self, shard_id: int) -> ShardHealth:
        """Current health of one shard."""
        return self._health[shard_id]

    def _raise_worker_errors(self) -> None:
        with self._outstanding_cv:
            if not self._errors:
                return
            errors, self._errors = self._errors, []
        raise RuntimeError(
            f"{len(errors)} shard worker error(s); first: {errors[0]!r}"
        ) from errors[0]

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError("service is closed")

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has run (the liveness signal)."""
        return self._closed

    def ready(self) -> bool:
        """True while every shard is ``healthy`` (the readiness signal).

        A recovering shard serves stale answers and a dead shard frozen
        ones, so a load balancer should stop routing here until recovery
        completes — this is what ``/readyz`` (:mod:`repro.obs.admin`)
        reports.
        """
        return all(
            health is ShardHealth.HEALTHY for health in self._health
        )

    def queue_depths(self) -> Dict[str, int]:
        """Current per-shard ingest queue depths (``shard<i> -> items``).

        The instantaneous backlog a scan accepted *now* would wait
        behind — the readiness detail ``/readyz`` reports next to shard
        health.
        """
        return {
            f"shard{shard_id}": shard_queue.qsize()
            for shard_id, shard_queue in enumerate(self._queues)
        }

    @property
    def uptime_seconds(self) -> float:
        """Wall-clock seconds since the service was constructed."""
        return max(0.0, time.time() - self.started_at)

    def slo_engine(self, objectives=None):
        """This service's SLO engine (built lazily, one per service).

        Evaluates the default ingest objectives (or ``objectives``, a
        sequence of :class:`repro.obs.slo.SLObjective`, on first call)
        against the service's own metrics registry.  The admin
        endpoint's ``/slo`` route and the load-bench knee detector both
        read through here, so they always agree.
        """
        from repro.obs.slo import SLOEngine, default_objectives

        with self._slo_lock:
            if self._slo is None:
                self._slo = SLOEngine(
                    self.metrics,
                    objectives
                    if objectives is not None
                    else default_objectives(),
                )
            return self._slo

    # ------------------------------------------------------------------
    # Barriers and shutdown.
    # ------------------------------------------------------------------

    def flush(self) -> None:
        """Block until every enqueued sub-batch has been applied and no
        shard is mid-recovery.

        Raises if any shard worker failed (the failed work is journaled
        and re-applied by recovery, so the error report never implies
        data loss — and the wait never hangs).
        """
        with self._outstanding_cv:
            while not self._errors and (
                self._outstanding > 0
                or any(
                    health is ShardHealth.RECOVERING
                    for health in self._health
                )
            ):
                self._outstanding_cv.wait()
        self._raise_worker_errors()

    def close(self) -> None:
        """Drain queues, stop workers, release the map backend.

        Idempotent, concurrency-safe, and teardown-safe: the winner of
        the close race does the work, every other caller returns
        immediately, and the version atexit runs (when the owner never
        closed) survives interpreter teardown — enqueueing the stop
        sentinels is wrapped so a torn-down queue cannot wedge the
        handler before the worker processes are reaped.
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
        atexit.unregister(self._close_at_exit)
        for shard_queue in self._queues:
            try:
                shard_queue.put(_STOP)
            except BaseException:  # pragma: no cover - teardown only
                pass
        # A crashing worker hands its queue to a replacement thread, so
        # join until the roster is stable.
        while True:
            current = list(self._workers)
            for worker in current:
                worker.join()
            if list(self._workers) == current:
                break
        self.map.close()
        self._raise_worker_errors()

    def _close_at_exit(self) -> None:
        """atexit fallback close; never raises into interpreter exit."""
        try:
            self.close()
        except BaseException:  # pragma: no cover - teardown only
            pass

    def __enter__(self) -> "OccupancyMapService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Query path (consumers): shard-consistent, metered.
    # ------------------------------------------------------------------

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        """Log-odds occupancy at a metric coordinate."""
        with self.tracer.span("query.point", category="service"):
            value = self.map.query(coord)
        self.tracer.count("query.points", category="service")
        return value

    def query_detailed(self, coord: Tuple[float, float, float]) -> QueryResult:
        """Point query that also reports shard health and staleness."""
        return self.query_key_detailed(self.map._key_of(coord))

    def query_key_detailed(self, key: VoxelKey) -> QueryResult:
        """Keyed query with the serving shard's health and staleness."""
        with self.tracer.span("query.point", category="service"):
            shard_id = self.map.router.shard_of(key)
            value = self.map.query_key(key)
        self.tracer.count("query.points", category="service")
        health = self._health[shard_id]
        if health is not ShardHealth.HEALTHY:
            self.tracer.count("query.stale", category="service")
        occupied = (
            None if value is None else self.map.params.is_occupied(value)
        )
        return QueryResult(
            value=value,
            occupied=occupied,
            shard=shard_id,
            health=health.value,
        )

    def is_occupied(self, coord: Tuple[float, float, float]) -> Optional[bool]:
        """Occupancy decision at a metric coordinate (``None`` = unknown)."""
        value = self.query(coord)
        if value is None:
            return None
        return self.map.params.is_occupied(value)

    def cast_ray(
        self,
        origin: Tuple[float, float, float],
        direction: Tuple[float, float, float],
        max_range: float,
        ignore_unknown: bool = True,
    ) -> RayHit:
        """Metered ray query across shards."""
        with self.tracer.span("query.ray", category="service"):
            hit = self.map.cast_ray(
                origin, direction, max_range, ignore_unknown=ignore_unknown
            )
        self.tracer.count("query.rays", category="service")
        return hit

    def occupied_in_box(
        self,
        min_coord: Tuple[float, float, float],
        max_coord: Tuple[float, float, float],
    ) -> List[VoxelKey]:
        """Metered bounding-box occupancy query."""
        with self.tracer.span("query.box", category="service"):
            keys = self.map.occupied_in_box(min_coord, max_coord)
        self.tracer.count("query.boxes", category="service")
        return keys

    def snapshot(self) -> OccupancyOctree:
        """Global-snapshot export (see :meth:`ShardedMap.snapshot`)."""
        with self.tracer.span("query.snapshot", category="service"):
            tree = self.map.snapshot()
        return tree

    @property
    def params(self) -> OccupancyParams:
        return self.map.params

    # ------------------------------------------------------------------
    # Observability.
    # ------------------------------------------------------------------

    def memory_report(
        self, exact: bool = False, deep: bool = False
    ) -> MemoryReport:
        """The service's hierarchical footprint (``docs/memory.md``).

        Components: the sharded ``map`` (per-shard, per-tenant-slot
        cache + octree), the ingest ``queues`` (buffered observations),
        ``durability`` (retained journal entries + snapshot blobs),
        ``telemetry`` (buffering tracer sinks), and — when a tenant
        registry is mounted — ``tenancy`` (change-log rings, per-tenant
        journals).  The default reads incrementally-maintained counters
        (O(shards + tenants)); ``exact=True`` recounts every component
        by walking its storage — the drift gate compares the two.
        ``deep=True`` adds the per-depth octree drill-down.
        """
        children = [self.map.memory_breakdown(exact=exact, deep=deep)]
        shard_reports = []
        for shard_id in range(self.config.num_shards):
            if exact:
                items = list(self._queues[shard_id].queue)
                obs = sum(
                    len(item[0]) for item in items if item is not _STOP
                )
            else:
                obs = max(0, self._queued_obs[shard_id])
            shard_reports.append(
                MemoryReport(f"shard{shard_id}", obs * OBS_BYTES, obs)
            )
        children.append(MemoryReport("queues", children=shard_reports))
        children.append(self.store.memory_breakdown(exact=exact))
        children.append(self.tracer.memory_breakdown(exact=exact))
        registry = getattr(self, "tenant_registry", None)
        if registry is not None and hasattr(registry, "memory_breakdown"):
            children.append(registry.memory_breakdown(exact=exact))
        return MemoryReport("service", children=children)

    def tenant_memory_bytes(self) -> Dict[str, int]:
        """Attributed footprint per tenant name (empty without tenancy)."""
        registry = getattr(self, "tenant_registry", None)
        if registry is None or not hasattr(registry, "tenant_memory_bytes"):
            return {}
        return registry.tenant_memory_bytes()

    def refresh_memory_metrics(
        self, exact: bool = False, deep: bool = False
    ):
        """Measure the footprint, publish ``mem.*`` gauges, evaluate
        pressure.

        Returns ``(report, decision)``.  Called by the ``/memory`` and
        ``/metrics`` admin routes (and the mem bench), so the gauges are
        fresh at every scrape while the ingest hot path pays only for
        counter increments.
        """
        report = self.memory_report(exact=exact, deep=deep)
        total = report.total_bytes
        self.metrics.gauge("mem.total_bytes").set(total)
        for component in report.children:
            self.metrics.gauge(f"mem.{component.name}_bytes").set(
                component.total_bytes
            )
        map_report = report.child("map")
        if map_report is not None:
            for shard in map_report.children:
                self.metrics.gauge(f"mem.shard_bytes.{shard.name}").set(
                    shard.total_bytes
                )
        rss = process_rss_bytes()
        if rss is not None:
            self.metrics.gauge("mem.process_rss_bytes").set(rss)
        tenant_bytes = self.tenant_memory_bytes()
        for name, nbytes in tenant_bytes.items():
            self.metrics.gauge(f"tenant.mem_bytes.{name}").set(nbytes)
        decision = self.pressure.evaluate(total, tenant_bytes)
        return report, decision

    def memory_dict(
        self, exact: bool = False, deep: bool = False
    ) -> Dict[str, object]:
        """The ``/memory`` route body: RSS, pressure, and the full tree."""
        report, decision = self.refresh_memory_metrics(
            exact=exact, deep=deep
        )
        out: Dict[str, object] = {
            "accounted_bytes": report.total_bytes,
            "process_rss_bytes": process_rss_bytes(),
            "peak_rss_bytes": peak_rss_bytes(),
            "pressure": decision.to_dict(),
            "report": report.to_dict(),
        }
        tenants = self.tenant_memory_bytes()
        if tenants:
            out["tenants"] = tenants
        return out

    def stats_dict(self) -> Dict[str, object]:
        """JSON-able service state: metrics plus per-shard map stats.

        Each shard entry embeds its voxel cache's full ``stats_dict()``
        (hits/misses/hit ratio, both paths, evictions, residency) so one
        scrape of ``/snapshot`` carries the paper's Fig-23 signal without
        a second call.
        """
        from repro.core.cache import aggregate_cache_stats

        shards = []
        for shard_id in range(self.config.num_shards):
            durability = self.store.stats(shard_id)
            shard_stats = self.map.shard_stats(shard_id)
            shards.append(
                {
                    "shard": shard_id,
                    "hit_ratio": shard_stats["hit_ratio"],
                    "resident_voxels": shard_stats["resident_voxels"],
                    "octree_nodes": shard_stats["octree_nodes"],
                    "batches": shard_stats["batches"],
                    "queue_depth": self._queues[shard_id].qsize(),
                    "health": self._health[shard_id].value,
                    "recoveries": self._recoveries[shard_id],
                    "cache": shard_stats["cache"],
                    **durability,
                }
            )
        report = self.memory_report()
        return {
            "metrics": self.metrics.to_dict(),
            "shards": shards,
            "cache_totals": aggregate_cache_stats(
                entry["cache"] for entry in shards
            ),
            "memory": {
                "accounted_bytes": report.total_bytes,
                "components": {
                    component.name: component.total_bytes
                    for component in report.children
                },
                "pressure": self.pressure.level,
            },
            "ready": self.ready(),
        }

    def serve_admin(
        self, host: str = "127.0.0.1", port: int = 0, namespace: str = "repro"
    ):
        """Mount the HTTP admin endpoint next to this service.

        Returns a started :class:`repro.obs.AdminServer` exposing
        ``/metrics`` (Prometheus text), ``/healthz``, ``/readyz``, and
        ``/snapshot``; the caller owns its lifetime (``close()`` or use
        it as a context manager).
        """
        from repro.obs.admin import AdminServer

        return AdminServer(self, host=host, port=port, namespace=namespace)

    def stats_report(self) -> str:
        """Human-readable report: metrics tables + per-shard table."""
        from repro.analysis.report import format_table

        stats = self.stats_dict()
        shard_rows = [
            [
                entry["shard"],
                f"{entry['hit_ratio']:.3f}",
                entry["resident_voxels"],
                entry["octree_nodes"],
                entry["batches"],
                entry["queue_depth"],
                entry["health"],
                entry["recoveries"],
            ]
            for entry in stats["shards"]
        ]
        shard_table = format_table(
            [
                "shard",
                "hit ratio",
                "resident",
                "octree nodes",
                "batches",
                "queue",
                "health",
                "recoveries",
            ],
            shard_rows,
        )
        return self.metrics.render() + "\n\n" + shard_table
