"""Tests for the OctoCache voxel cache: insertion, query, eviction."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig
from repro.core.morton import morton_encode3
from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree

keys = st.tuples(
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=31),
)


def make_cache(num_buckets=16, tau=2, morton=True, backend=None):
    return VoxelCache(
        CacheConfig(
            num_buckets=num_buckets,
            bucket_threshold=tau,
            use_morton_indexing=morton,
        ),
        backend=backend,
    )


class TestInsertion:
    def test_miss_then_hit(self):
        cache = make_cache()
        cache.insert((1, 1, 1), True)
        cache.insert((1, 1, 1), True)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.hit_ratio == 0.5

    def test_accumulates_like_octomap(self):
        cache = make_cache()
        params = cache.params
        value = params.threshold
        for occupied in (True, True, False, True):
            cache.insert((2, 3, 4), occupied)
            value = params.update(value, occupied)
        assert cache.lookup((2, 3, 4)) == pytest.approx(value)

    def test_miss_seeds_from_backend(self):
        backend = OccupancyOctree(resolution=0.1, depth=5)
        backend.update_node((1, 1, 1), True)
        octree_value = backend.search((1, 1, 1))
        cache = make_cache(backend=backend)
        cache.insert((1, 1, 1), True)
        expected = cache.params.update(octree_value, True)
        assert cache.lookup((1, 1, 1)) == pytest.approx(expected)
        assert cache.stats.octree_fills == 1

    def test_miss_without_backend_record_starts_at_threshold(self):
        cache = make_cache(backend=OccupancyOctree(resolution=0.1, depth=5))
        cache.insert((9, 9, 9), False)
        expected = cache.params.update(cache.params.threshold, False)
        assert cache.lookup((9, 9, 9)) == pytest.approx(expected)
        assert cache.stats.octree_fills == 0

    def test_bucket_can_exceed_tau_within_batch(self):
        cache = make_cache(num_buckets=1, tau=1)
        for i in range(5):
            cache.insert((i, 0, 0), True)
        assert cache.resident_voxels == 5  # growth allowed until eviction

    def test_insert_batch(self):
        cache = make_cache()
        cache.insert_batch([((1, 1, 1), True), ((2, 2, 2), False)])
        assert cache.resident_voxels == 2


class TestIndexing:
    def test_morton_indexing_uses_morton_code(self):
        cache = make_cache(num_buckets=16, morton=True)
        key = (3, 5, 7)
        assert cache.bucket_index(key) == morton_encode3(3, 5, 7) % 16

    def test_hash_indexing_within_range(self):
        cache = make_cache(num_buckets=16, morton=False)
        for key in [(1, 2, 3), (30, 20, 10), (0, 0, 0)]:
            assert 0 <= cache.bucket_index(key) < 16

    def test_morton_adjacent_voxels_share_buckets_more(self):
        """Morton indexing clusters near voxels; generic hashing scatters."""
        near = [(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        morton_cache = make_cache(num_buckets=1024, morton=True)
        morton_buckets = {morton_cache.bucket_index(k) for k in near}
        # The 8 voxels of one octant span 8 consecutive Morton codes.
        assert max(morton_buckets) - min(morton_buckets) == 7


class TestQuery:
    def test_query_hit_from_cache(self):
        cache = make_cache()
        cache.insert((1, 1, 1), True)
        assert cache.query((1, 1, 1)) is not None
        assert cache.stats.query_hits == 1

    def test_query_miss_falls_through_to_octree(self):
        backend = OccupancyOctree(resolution=0.1, depth=5)
        backend.update_node((7, 7, 7), True)
        cache = make_cache(backend=backend)
        assert cache.query((7, 7, 7)) == pytest.approx(backend.search((7, 7, 7)))
        assert cache.stats.query_misses == 1

    def test_query_unknown_returns_none(self):
        cache = make_cache(backend=OccupancyOctree(resolution=0.1, depth=5))
        assert cache.query((9, 9, 9)) is None

    def test_is_occupied(self):
        cache = make_cache()
        cache.insert((1, 1, 1), True)
        cache.insert((2, 2, 2), False)
        assert cache.is_occupied((1, 1, 1)) is True
        assert cache.is_occupied((2, 2, 2)) is False
        assert cache.is_occupied((3, 3, 3)) is None

    def test_contains(self):
        cache = make_cache()
        cache.insert((1, 1, 1), True)
        assert (1, 1, 1) in cache
        assert (2, 2, 2) not in cache


class TestEviction:
    def test_trims_to_tau(self):
        cache = make_cache(num_buckets=1, tau=2)
        for i in range(5):
            cache.insert((i, 0, 0), True)
        evicted = cache.evict()
        assert len(evicted) == 3
        assert cache.resident_voxels == 2

    def test_evicts_earliest_inserted(self):
        cache = make_cache(num_buckets=1, tau=1)
        cache.insert((0, 0, 0), True)
        cache.insert((1, 0, 0), True)
        evicted = cache.evict()
        assert [key for key, _v in evicted] == [(0, 0, 0)]
        assert (1, 0, 0) in cache

    def test_eviction_carries_accumulated_value(self):
        cache = make_cache(num_buckets=1, tau=0 + 1)
        for _ in range(3):
            cache.insert((0, 0, 0), True)
        cache.insert((1, 0, 0), True)  # force overflow
        evicted = dict(cache.evict())
        expected = cache.params.threshold
        for _ in range(3):
            expected = cache.params.update(expected, True)
        assert evicted[(0, 0, 0)] == pytest.approx(expected)

    def test_underfull_buckets_untouched(self):
        cache = make_cache(num_buckets=16, tau=4)
        cache.insert((1, 1, 1), True)
        assert cache.evict() == []
        assert cache.resident_voxels == 1

    def test_morton_eviction_order_within_window(self):
        """With Morton indexing, evicted voxels of one Morton window come
        out in Morton order (the §4.3 property)."""
        cache = make_cache(num_buckets=64, tau=1, morton=True)
        voxels = [(x, y, z) for x in range(2) for y in range(2) for z in range(2)]
        # Insert twice so every bucket holds 2 > tau cells.
        for v in voxels:
            cache.insert(v, True)
        for v in reversed(voxels):
            # Re-insert hits the same cells; add a neighbour to overflow.
            cache.insert((v[0] + 2, v[1], v[2]), True)
        evicted_codes = [morton_encode3(*key) % 64 for key, _v in cache.evict()]
        assert evicted_codes == sorted(evicted_codes)

    def test_flush_empties_cache(self):
        cache = make_cache()
        for i in range(10):
            cache.insert((i, 0, 0), True)
        evicted = cache.flush()
        assert len(evicted) == 10
        assert cache.resident_voxels == 0
        assert len(cache) == 0

    def test_memory_bound_after_eviction(self):
        config = CacheConfig(num_buckets=8, bucket_threshold=2)
        cache = VoxelCache(config)
        for x in range(16):
            for y in range(8):
                cache.insert((x, y, 0), True)
        cache.evict()
        assert cache.resident_voxels <= config.capacity
        assert cache.memory_bytes() <= config.memory_bytes


class TestStatsProperties:
    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_counters_consistent(self, items):
        cache = make_cache(num_buckets=8, tau=2)
        for key, occupied in items:
            cache.insert(key, occupied)
        stats = cache.stats
        assert stats.insertions == len(items)
        assert stats.misses == cache.resident_voxels  # nothing evicted yet
        assert 0.0 <= stats.hit_ratio <= 1.0

    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=100))
    @settings(max_examples=30, deadline=None)
    def test_eviction_conserves_cells(self, items):
        cache = make_cache(num_buckets=4, tau=1)
        for key, occupied in items:
            cache.insert(key, occupied)
        resident_before = cache.resident_voxels
        evicted = cache.evict()
        assert cache.resident_voxels + len(evicted) == resident_before
