"""Procedural 3D-scan datasets mirroring the paper's three public datasets.

The paper evaluates construction on the OctoMap project's FR-079 corridor,
Freiburg campus, and New College scans (Table 2).  Those LiDAR files are
not shippable here, so this package procedurally generates scenes with the
same statistical character — an indoor corridor, a large sparse outdoor
campus, and a medium outdoor quad loop — and scans them along continuous
trajectories with an analytic ray-casting depth sensor.  The two
properties OctoCache feeds on arise by construction, from the same causes
as in the real data: intra-batch duplication (conical ray fans densely
sampling nearby surfaces) and inter-batch overlap (consecutive poses see
mostly the same volume).
"""

from repro.datasets.scenes import Box, Scene, corridor_scene, campus_scene, college_scene
from repro.datasets.sensor_model import SensorModel
from repro.datasets.trajectories import Pose, line_trajectory, loop_trajectory
from repro.datasets.generator import ScanDataset, make_dataset, DATASET_NAMES
from repro.datasets.io import load_scan_log, load_xyz, save_scan_log, save_xyz
from repro.datasets.lidar import LidarModel
from repro.datasets.stats import DatasetStats, dataset_statistics, batch_duplication_ratios
from repro.datasets.overlap import overlap_ratios, overlap_cdf

__all__ = [
    "Box",
    "DATASET_NAMES",
    "DatasetStats",
    "LidarModel",
    "Pose",
    "ScanDataset",
    "Scene",
    "SensorModel",
    "batch_duplication_ratios",
    "campus_scene",
    "college_scene",
    "corridor_scene",
    "dataset_statistics",
    "line_trajectory",
    "loop_trajectory",
    "make_dataset",
    "load_scan_log",
    "load_xyz",
    "save_scan_log",
    "save_xyz",
    "overlap_cdf",
    "overlap_ratios",
]
