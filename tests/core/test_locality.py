"""Tests of the locality functional F(S) and the Morton-optimality theorem.

The property tests check the paper's main theorem (§4.3) exhaustively on
small random instances: no permutation of a leaf set achieves a smaller
F than the Morton order.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.locality import (
    ancestor_depth,
    brute_force_min_cost,
    lemma_a2_distinct_ancestors,
    lemma_a3_distinct_distances,
    locality_cost,
    locality_cost_keys,
    morton_order_cost,
    tree_distance,
)
from repro.core.morton import morton_encode3

LEVELS = 3  # 8^3 = 512 leaves: plenty of structure, cheap to explore
leaf_codes = st.integers(min_value=0, max_value=(1 << (3 * LEVELS)) - 1)


class TestTreeDistance:
    def test_identical_leaf(self):
        assert tree_distance(5, 5, LEVELS) == 0

    def test_siblings(self):
        # Codes 0 and 1 differ only in the last 3-bit group.
        assert tree_distance(0, 1, LEVELS) == 2

    def test_root_separated(self):
        a = 0
        b = 0b111 << (3 * (LEVELS - 1))
        assert tree_distance(a, b, LEVELS) == 2 * LEVELS

    @given(leaf_codes, leaf_codes)
    def test_symmetry(self, a, b):
        assert tree_distance(a, b, LEVELS) == tree_distance(b, a, LEVELS)

    @given(leaf_codes, leaf_codes, leaf_codes)
    def test_triangle_inequality(self, a, b, c):
        assert tree_distance(a, c, LEVELS) <= (
            tree_distance(a, b, LEVELS) + tree_distance(b, c, LEVELS)
        )

    @given(leaf_codes, leaf_codes)
    def test_distance_is_twice_climb(self, a, b):
        assert tree_distance(a, b, LEVELS) == 2 * (
            LEVELS - ancestor_depth(a, b, LEVELS)
        )


class TestLocalityCost:
    def test_empty_and_singleton(self):
        assert locality_cost([], LEVELS) == 0
        assert locality_cost([7], LEVELS) == 0

    def test_two_elements(self):
        assert locality_cost([0, 1], LEVELS) == tree_distance(0, 1, LEVELS)

    def test_keys_variant_matches_codes(self):
        keys = [(0, 0, 0), (1, 1, 1), (2, 0, 1)]
        codes = [morton_encode3(*k) for k in keys]
        assert locality_cost_keys(keys, LEVELS) == locality_cost(codes, LEVELS)

    @given(st.lists(leaf_codes, min_size=2, max_size=20))
    def test_reversal_invariance(self, codes):
        assert locality_cost(codes, LEVELS) == locality_cost(codes[::-1], LEVELS)

    @given(st.lists(leaf_codes, min_size=2, max_size=20))
    def test_nonnegative(self, codes):
        assert locality_cost(codes, LEVELS) >= 0


class TestMortonOptimality:
    """The main theorem: Morton order minimises F over all permutations."""

    @settings(max_examples=60, deadline=None)
    @given(st.lists(leaf_codes, min_size=2, max_size=7, unique=True))
    def test_morton_order_achieves_brute_force_minimum(self, codes):
        assert morton_order_cost(codes, LEVELS) == brute_force_min_cost(
            codes, LEVELS
        )

    @settings(max_examples=60, deadline=None)
    @given(
        st.lists(leaf_codes, min_size=2, max_size=40, unique=True),
        st.randoms(use_true_random=False),
    )
    def test_no_random_permutation_beats_morton(self, codes, rnd):
        morton_cost = morton_order_cost(codes, LEVELS)
        shuffled = list(codes)
        for _ in range(20):
            rnd.shuffle(shuffled)
            assert locality_cost(shuffled, LEVELS) >= morton_cost

    def test_brute_force_guardrail(self):
        with pytest.raises(ValueError):
            brute_force_min_cost(list(range(10)), LEVELS)

    def test_example_from_paper_figure9(self):
        # Binary-tree example mapped to an octree: leaves with small code
        # difference share more ancestors, so grouping them wins.
        close_pair = [0b000000, 0b000001]
        far_pair = [0b000000, 0b111000]
        assert locality_cost(close_pair, 2) < locality_cost(far_pair, 2)


class TestLemmas:
    @given(leaf_codes, leaf_codes, leaf_codes)
    def test_lemma_a2(self, a, b, c):
        assert lemma_a2_distinct_ancestors(a, b, c, LEVELS)

    @given(leaf_codes, leaf_codes, leaf_codes)
    def test_lemma_a3(self, a, b, c):
        assert lemma_a3_distinct_distances(a, b, c, LEVELS)

    def test_lemma_a6_contiguity_of_optimal_orders(self):
        # Any subtree-contiguous order has the same F as Morton order:
        # check by swapping whole sibling blocks (still contiguous).
        codes = list(range(16))  # two complete level-1 subtrees (8 leaves each)
        morton = sorted(codes)
        swapped = morton[8:] + morton[:8]  # swap the two subtree blocks
        assert locality_cost(swapped, LEVELS) == locality_cost(morton, LEVELS)

    def test_breaking_contiguity_increases_cost(self):
        codes = list(range(16))
        interleaved = [c for pair in zip(codes[:8], codes[8:]) for c in pair]
        assert locality_cost(interleaved, LEVELS) > morton_order_cost(
            codes, LEVELS
        )
