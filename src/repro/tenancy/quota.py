"""Per-tenant admission control: token buckets and quota shapes.

A tenant's quota has two axes, matching the two ways one tenant can
crowd out another on a shared shard pool:

- **queue slots** bound how much *accepted-but-unapplied* work a tenant
  may have in flight (one slot per enqueued shard slice), mirroring the
  service's own per-shard capacity reservation; and
- **scans per second** bound the tenant's *admission rate* with a token
  bucket, so a tenant replaying a log at memory speed is throttled to
  its contracted rate instead of monopolising the dispatchers.

Both checks happen at submit time and both are all-or-nothing: a
rejected submission leaves the tenant's map byte-identical.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable

__all__ = ["TenantQuota", "TokenBucket"]


class TokenBucket:
    """A classic token bucket: ``rate`` tokens/second, ``burst`` capacity.

    ``rate <= 0`` disables the bucket (every acquire succeeds) — the
    "unlimited" quota.  The clock is injectable so tests can drive the
    refill deterministically.

    Thread-safe; ``try_acquire`` never blocks (admission control rejects,
    it does not queue — queueing is the slots semaphore's job).
    """

    def __init__(
        self,
        rate: float,
        burst: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate > 0 and burst <= 0:
            raise ValueError(f"burst must be positive, got {burst}")
        self.rate = rate
        self.burst = burst
        self._clock = clock
        self._tokens = burst
        self._stamp = clock()
        self._lock = threading.Lock()

    def _refill(self) -> None:
        now = self._clock()
        elapsed = max(0.0, now - self._stamp)
        self._stamp = now
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)

    def try_acquire(self, tokens: float = 1.0) -> bool:
        """Take ``tokens`` if available right now; never blocks."""
        if self.rate <= 0:
            return True
        with self._lock:
            self._refill()
            if self._tokens + 1e-9 >= tokens:
                self._tokens -= tokens
                return True
            return False

    @property
    def available(self) -> float:
        """Tokens available right now (after refill)."""
        if self.rate <= 0:
            return float("inf")
        with self._lock:
            self._refill()
            return self._tokens


@dataclass(frozen=True)
class TenantQuota:
    """One tenant's admission-control contract.

    Attributes:
        queue_slots: max enqueued-but-unapplied shard slices the tenant
            may hold at once (the fleet analogue of the service's
            ``queue_capacity``).
        scans_per_sec: sustained scan admission rate; ``0`` means
            unlimited.
        burst: token-bucket capacity — scans the tenant may submit
            back-to-back before the rate limit bites (defaults to the
            per-second rate, minimum 1).
    """

    queue_slots: int = 16
    scans_per_sec: float = 0.0
    burst: float = 0.0

    def __post_init__(self) -> None:
        if self.queue_slots < 1:
            raise ValueError(
                f"queue_slots must be >= 1, got {self.queue_slots}"
            )
        if self.scans_per_sec < 0:
            raise ValueError(
                f"scans_per_sec must be >= 0, got {self.scans_per_sec}"
            )
        if self.burst < 0:
            raise ValueError(f"burst must be >= 0, got {self.burst}")

    def make_bucket(
        self, clock: Callable[[], float] = time.monotonic
    ) -> TokenBucket:
        burst = self.burst or max(1.0, self.scans_per_sec)
        return TokenBucket(self.scans_per_sec, burst, clock=clock)

    def to_dict(self) -> dict:
        return {
            "queue_slots": self.queue_slots,
            "scans_per_sec": self.scans_per_sec,
            "burst": self.burst or max(1.0, self.scans_per_sec),
        }
