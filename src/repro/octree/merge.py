"""Merging and comparing occupancy octrees.

Multi-session and multi-robot mapping combine maps of the same space:
``merge_tree`` folds a source tree into a destination, either by
accumulating log-odds evidence (two independent observation sets) or by
overwriting (the source is newer).  ``map_agreement`` measures how far
two maps agree, used by the test-suite and handy for regression checks
on serialised maps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.octree.tree import OccupancyOctree

__all__ = ["merge_tree", "merge_many", "map_agreement", "AgreementReport"]

_STRATEGIES = ("accumulate", "overwrite")


def merge_tree(
    destination: OccupancyOctree,
    source: OccupancyOctree,
    strategy: str = "accumulate",
) -> int:
    """Fold ``source`` into ``destination``; returns voxels transferred.

    Args:
        destination: tree receiving the data (modified in place).
        source: tree to read (unchanged).  Must share resolution/depth
            with the destination.
        strategy: ``"accumulate"`` treats the source as independent
            evidence and adds its log-odds (clamped) onto the
            destination's; ``"overwrite"`` replaces destination values —
            appropriate when the source supersedes (e.g. a cache flush).
    """
    if strategy not in _STRATEGIES:
        raise ValueError(f"strategy must be one of {_STRATEGIES}, got {strategy!r}")
    if source.resolution != destination.resolution:
        raise ValueError(
            f"resolution mismatch: {source.resolution} vs {destination.resolution}"
        )
    if source.depth != destination.depth:
        raise ValueError(f"depth mismatch: {source.depth} vs {destination.depth}")
    transferred = 0
    params = destination.params
    for key, value in source.iter_finest_leaves():
        if strategy == "overwrite":
            destination.set_leaf(key, value)
        else:
            existing = destination.search(key)
            if existing is None:
                destination.set_leaf(key, value)
            else:
                destination.set_leaf(key, params.accumulate(existing, value))
        transferred += 1
    return transferred


def merge_many(
    destination: OccupancyOctree,
    sources: Iterable[OccupancyOctree],
    strategy: str = "accumulate",
) -> int:
    """Fold several source trees into ``destination``; returns total voxels.

    Sources are merged in iteration order, so with ``"overwrite"`` a later
    source wins where sources overlap.  The sharded service exports its
    global snapshot this way: per-shard octrees cover disjoint Morton
    prefixes, making the order immaterial there.
    """
    transferred = 0
    for source in sources:
        transferred += merge_tree(destination, source, strategy)
    return transferred


@dataclass(frozen=True)
class AgreementReport:
    """Outcome of comparing two maps voxel by voxel.

    Attributes:
        compared: voxels known to the reference map.
        matching: voxels with identical occupancy *decisions*.
        missing: reference voxels unknown to the other map.
        decision_agreement: ``matching / compared`` (1.0 when empty).
    """

    compared: int
    matching: int
    missing: int

    @property
    def decision_agreement(self) -> float:
        if self.compared == 0:
            return 1.0
        return self.matching / self.compared


def map_agreement(
    reference: OccupancyOctree, other: OccupancyOctree
) -> AgreementReport:
    """Compare occupancy decisions of ``other`` against ``reference``.

    Iterates the reference's finest leaves; a voxel matches when both
    maps make the same occupied/free decision.
    """
    compared = 0
    matching = 0
    missing = 0
    params = reference.params
    for key, value in reference.iter_finest_leaves():
        compared += 1
        other_value = other.search(key)
        if other_value is None:
            missing += 1
            continue
        if params.is_occupied(value) == other.params.is_occupied(other_value):
            matching += 1
    return AgreementReport(compared=compared, matching=matching, missing=missing)
