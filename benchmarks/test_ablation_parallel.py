"""Ablation: serial vs real-two-thread vs modeled-two-thread OctoCache.

Three views of §4.4's parallelisation on identical workloads:

- **serial** — the single-thread pipeline (ground truth for stage costs);
- **threaded** — the real two-thread implementation.  Under CPython's GIL
  it cannot gain throughput, but it must stay functionally identical,
  keep queue overheads negligible (Table 3), and not collapse under
  synchronisation cost;
- **modeled** — the analytic timeline fed with the serial run's measured
  stage times (the projection DESIGN.md §1 uses for two-core speedup),
  which must respect the paper's bound
  ``gain ≤ min(T_raytrace + T_evict, T_octree)``.
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config
from repro.core.pipeline_model import PipelineModel

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

RESOLUTION = 0.15


def test_ablation_parallel_designs(benchmark, corridor, emit):
    config = suggest_cache_config(corridor, RESOLUTION, BENCH_DEPTH)

    def run():
        serial = run_construction(
            corridor,
            RESOLUTION,
            pipeline_factory("octocache", corridor, cache_config=config),
            depth=BENCH_DEPTH,
            max_batches=BENCH_MAX_BATCHES,
        )
        threaded = run_construction(
            corridor,
            RESOLUTION,
            pipeline_factory("octocache_parallel", corridor, cache_config=config),
            depth=BENCH_DEPTH,
            max_batches=BENCH_MAX_BATCHES,
        )
        return serial, threaded

    serial, threaded = benchmark.pedantic(run, rounds=1, iterations=1)

    timeline = serial.timeline
    rows = [
        ["serial (measured)", f"{serial.total_seconds:.2f}", "-"],
        [
            "threaded (measured, GIL)",
            f"{threaded.total_seconds:.2f}",
            f"{serial.total_seconds / threaded.total_seconds:.2f}x",
        ],
        [
            "two-core (modeled)",
            f"{timeline.parallel_seconds:.2f}",
            f"{timeline.speedup:.2f}x",
        ],
    ]
    emit(
        "ablation_parallel_designs",
        format_table(["design", "generation time(s)", "vs serial"], rows),
    )

    # Functional equivalence: identical final maps and hit ratios.
    assert threaded.octree_nodes == serial.octree_nodes
    assert abs(threaded.cache_hit_ratio - serial.cache_hit_ratio) < 1e-9

    # Modeled two-core timeline: faster than serial, within the bound.
    assert timeline.parallel_seconds <= timeline.serial_seconds + 1e-9
    model = PipelineModel.from_records([])
    gain = timeline.serial_seconds - timeline.parallel_seconds
    hideable = serial.stage_seconds.get("ray_tracing", 0.0) + serial.stage_seconds.get(
        "cache_eviction", 0.0
    )
    octree = serial.stage_seconds.get("octree_update", 0.0)
    assert gain <= min(hideable, octree) + 1e-6

    # The GIL-bound threaded run stays within 2x of serial (scheduling
    # and queue overhead do not blow up), and Table 3's point holds:
    # enqueue overhead is a negligible slice.
    assert threaded.total_seconds < 2.0 * serial.total_seconds
    assert (
        threaded.stage_seconds.get("enqueue", 0.0)
        < 0.05 * threaded.total_seconds
    )
