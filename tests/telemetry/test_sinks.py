"""Sink behaviour: ring buffer, JSON-lines, Chrome trace, metrics bridge."""

import json

from repro.service.metrics import MetricsRegistry
from repro.telemetry import (
    ChromeTraceSink,
    ForwardSink,
    JsonLinesSink,
    MetricsSink,
    RingBufferSink,
    Tracer,
)

import pytest


def emit(tracer):
    with tracer.span("outer", category="cache", size=2):
        with tracer.span("inner", category="octree"):
            pass
    tracer.count("cache.hits", 7, category="cache")


class TestRingBufferSink:
    def test_capacity_evicts_oldest_and_counts_drops(self):
        ring = RingBufferSink(capacity=2)
        tracer = Tracer(sinks=[ring])
        for i in range(4):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in ring.spans] == ["s2", "s3"]
        assert ring.dropped == 2

    def test_counts_exact_despite_span_eviction(self):
        ring = RingBufferSink(capacity=1)
        tracer = Tracer(sinks=[ring])
        for _ in range(5):
            tracer.count("n", 2)
        assert ring.counts[("default", "n")] == 10

    def test_clear(self):
        ring = RingBufferSink()
        emit(Tracer(sinks=[ring]))
        ring.clear()
        assert len(ring) == 0
        assert ring.counts == {}

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            RingBufferSink(capacity=0)


class TestJsonLinesSink:
    def test_writes_one_json_object_per_line(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with JsonLinesSink(path) as sink:
            emit(Tracer(sinks=[sink]))
        lines = path.read_text().strip().splitlines()
        records = [json.loads(line) for line in lines]
        assert len(records) == 3
        assert sink.records == 3
        kinds = [r["type"] for r in records]
        assert kinds == ["span", "span", "count"]
        # Inner dispatches first and carries its parent id.
        assert records[0]["name"] == "inner"
        assert records[0]["parent"] == records[1]["id"]
        assert records[2]["value"] == 7

    def test_borrowed_handle_stays_open(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        with open(path, "w") as handle:
            sink = JsonLinesSink(handle)
            emit(Tracer(sinks=[sink]))
            sink.close()  # flushes, must not close the borrowed handle
            assert not handle.closed


class TestChromeTraceSink:
    def test_events_are_well_formed(self, tmp_path):
        chrome = ChromeTraceSink()
        emit(Tracer(sinks=[chrome]))
        path = tmp_path / "out.trace.json"
        chrome.write(path)
        data = json.loads(path.read_text())
        events = data["traceEvents"]
        assert len(events) == 3
        phases = sorted(e["ph"] for e in events)
        assert phases == ["C", "X", "X"]
        for event in events:
            assert {"name", "cat", "ph", "ts", "pid", "tid"} <= set(event)
        # Sorted by timestamp: outer span starts before inner.
        spans = [e for e in events if e["ph"] == "X"]
        assert spans[0]["name"] == "outer"
        assert spans[0]["ts"] <= spans[1]["ts"]

    def test_timestamps_are_microseconds(self):
        chrome = ChromeTraceSink()
        tracer = Tracer(sinks=[chrome])
        tracer.record_span("x", "c", start=2.0, duration=0.25)
        (event,) = chrome.events
        assert event["ts"] == pytest.approx(2e6)
        assert event["dur"] == pytest.approx(0.25e6)

    def test_span_args_carry_attributes_and_parentage(self):
        chrome = ChromeTraceSink()
        tracer = Tracer(sinks=[chrome])
        with tracer.span("outer") as outer:
            with tracer.span("inner", voxels=5):
                pass
        inner_event = next(e for e in chrome.events if e["name"] == "inner")
        assert inner_event["args"]["voxels"] == 5
        assert inner_event["args"]["parent"] == outer.span_id


class TestMetricsSink:
    def test_span_feeds_histogram_count_feeds_counter(self):
        registry = MetricsRegistry()
        tracer = Tracer(sinks=[MetricsSink(registry)])
        emit(tracer)
        assert registry.histogram("outer_seconds").count == 1
        assert registry.histogram("inner_seconds").count == 1
        assert registry.counter("cache.hits").value == 7

    def test_name_map_override(self):
        registry = MetricsRegistry()
        sink = MetricsSink(registry, name_map={"outer": "custom_latency"})
        tracer = Tracer(sinks=[sink])
        with tracer.span("outer"):
            pass
        assert registry.histogram("custom_latency").count == 1


class TestForwardSink:
    def test_forwards_only_while_target_enabled(self):
        ring = RingBufferSink()
        target = Tracer(enabled=False, sinks=[ring])
        source = Tracer(sinks=[ForwardSink(target)])
        with source.span("dropped"):
            pass
        target.enable()
        with source.span("mirrored"):
            pass
        source.count("n", 1)
        assert [s.name for s in ring.spans] == ["mirrored"]
        assert ring.counts[("default", "n")] == 1
