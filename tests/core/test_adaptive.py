"""Tests for the adaptive cache-sizing extension."""

import numpy as np
import pytest

from repro.baselines.octomap import OctoMapPipeline
from repro.core.adaptive import AdaptiveOctoCacheMap
from repro.core.config import CacheConfig
from repro.sensor.pointcloud import PointCloud

RES = 0.1
DEPTH = 10


def dense_scan(seed=0, n=300):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [rng.uniform(2, 5, n), rng.uniform(-3, 3, n), rng.uniform(0, 2, n)]
    )
    return PointCloud(points, origin=(0.0, 0.0, 1.0))


class TestValidation:
    def test_rejects_bad_target(self):
        with pytest.raises(ValueError):
            AdaptiveOctoCacheMap(resolution=RES, depth=DEPTH, target_hit_ratio=0.0)

    def test_rejects_negative_gain(self):
        with pytest.raises(ValueError):
            AdaptiveOctoCacheMap(resolution=RES, depth=DEPTH, min_gain=-0.1)


class TestGrowth:
    def test_grows_under_pressure(self):
        mapping = AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=8, bucket_threshold=1),
            target_hit_ratio=0.99,
        )
        for seed in range(6):
            mapping.insert_point_cloud(dense_scan(seed))
        assert mapping.resize_events  # the tiny cache had to grow
        sizes = mapping.resize_events
        assert all(b == a * 2 for a, b in zip([8] + sizes, sizes))

    def test_growth_preserves_consistency(self):
        reference = OctoMapPipeline(resolution=RES, depth=DEPTH)
        adaptive = AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=8, bucket_threshold=1),
            target_hit_ratio=0.99,
        )
        for seed in range(5):
            cloud = dense_scan(seed)
            reference.insert_point_cloud(cloud)
            adaptive.insert_point_cloud(cloud)
        assert adaptive.resize_events, "test needs at least one resize"
        for key, value in reference.octree.iter_finest_leaves():
            assert adaptive.query_key(key) == pytest.approx(value), key

    def test_memory_cap_respected(self):
        cap = CacheConfig(num_buckets=32, bucket_threshold=1).memory_bytes
        mapping = AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=8, bucket_threshold=1),
            target_hit_ratio=0.999,
            max_memory_bytes=cap,
        )
        for seed in range(8):
            mapping.insert_point_cloud(dense_scan(seed))
        assert mapping.cache.config.memory_bytes <= cap
        assert mapping.saturated

    def test_stops_at_target(self):
        mapping = AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=4096, bucket_threshold=4),
            target_hit_ratio=0.3,
        )
        cloud = dense_scan(0)
        for _ in range(4):
            mapping.insert_point_cloud(cloud)  # identical scans: hits soar
        assert mapping.saturated
        assert mapping.resize_events == []  # big enough from the start

    def test_stops_at_knee(self):
        """When a doubling stops paying, growth halts even below target."""
        mapping = AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=8, bucket_threshold=1),
            target_hit_ratio=1.0,  # unreachable: knee must stop growth
            min_gain=0.5,  # absurdly demanding gain threshold
        )
        for seed in range(6):
            mapping.insert_point_cloud(dense_scan(seed))
        assert mapping.saturated
        # Growth stopped after at most two measured (per-batch) rounds of
        # doubling; pressure-scaled growth allows up to 3 doublings each.
        assert len(mapping.resize_events) <= 6
        final_buckets = mapping.cache.config.num_buckets
        mapping.insert_point_cloud(dense_scan(99))
        assert mapping.cache.config.num_buckets == final_buckets  # frozen
