#!/usr/bin/env python3
"""Search-and-rescue patrol: the time-sensitive mission the paper motivates.

A UAV sweeps the Factory environment through a serpentine waypoint
pattern — the kind of coverage flight search-and-rescue performs — with
OctoMap and with OctoCache.  Mission time *is* the rescue metric, and it
also bounds battery use (95% of UAV energy goes to the rotors, §5.1), so
the faster mapping system translates straight into more area searched per
battery.

Run:  python examples/search_and_rescue.py
"""

from repro import OctoCacheMap, OctoMapPipeline
from repro.analysis.report import format_table
from repro.uav import ASCTEC_PELICAN, MissionConfig, make_environment
from repro.uav.waypoints import run_waypoint_mission

PATROL = [
    (30.0, 0.0, 1.5),   # through the hall
    (45.0, 6.0, 2.0),   # sweep north yard
    (55.0, -5.0, 2.0),  # sweep south yard
    (70.0, 0.0, 1.5),   # far end
]


def main() -> None:
    env = make_environment("factory")
    rows = []
    results = {}
    for name, cls in (("OctoMap", OctoMapPipeline), ("OctoCache", OctoCacheMap)):
        config = MissionConfig(
            environment=env,
            uav=ASCTEC_PELICAN,
            max_cycles=900,
            model_octree_offload=True,
        )
        result = run_waypoint_mission(
            config,
            lambda res: cls(
                resolution=res, depth=12, max_range=config.sensing_range
            ),
            PATROL,
        )
        results[name] = result
        rows.append(
            [
                name,
                f"{len(result.legs)}/{len(PATROL)}",
                "yes" if result.success else "no",
                f"{result.total_time:.1f}s",
                f"{result.total_distance:.0f}m",
                f"{result.total_energy / 1000:.1f}kJ",
            ]
        )

    print(f"patrol over {env.name}: {len(PATROL)} waypoints\n")
    print(
        format_table(
            ["mapping system", "legs", "completed", "patrol time", "distance", "energy"],
            rows,
        )
    )

    octomap = results["OctoMap"]
    octocache = results["OctoCache"]
    if octomap.success and octocache.success:
        saving = 1.0 - octocache.total_time / octomap.total_time
        print(
            f"\nOctoCache finishes the patrol {saving * 100:.0f}% sooner "
            f"({octomap.total_time:.0f}s -> {octocache.total_time:.0f}s), "
            f"saving {(octomap.total_energy - octocache.total_energy) / 1000:.1f}kJ "
            "of battery."
        )


if __name__ == "__main__":
    main()
