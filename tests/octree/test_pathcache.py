"""Tests for the path-caching batch inserter."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.morton import morton_encode3
from repro.octree.pathcache import PathCachingInserter
from repro.octree.tree import OccupancyOctree

DEPTH = 6
SIDE = 1 << DEPTH

keys = st.tuples(
    st.integers(min_value=0, max_value=SIDE - 1),
    st.integers(min_value=0, max_value=SIDE - 1),
    st.integers(min_value=0, max_value=SIDE - 1),
)


def plain_tree(updates):
    tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
    for key, occupied in updates:
        tree.update_node(key, occupied)
    return tree


def cached_tree(updates):
    tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
    with PathCachingInserter(tree) as inserter:
        inserter.insert_batch(updates)
    return tree


class TestEquivalence:
    @given(st.lists(st.tuples(keys, st.booleans()), min_size=1, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_identical_final_maps(self, updates):
        reference = plain_tree(updates)
        cached = cached_tree(updates)
        assert cached.num_nodes == reference.num_nodes
        reference_leaves = sorted(reference.iter_finest_leaves())
        cached_leaves = sorted(cached.iter_finest_leaves())
        assert len(reference_leaves) == len(cached_leaves)
        for (rk, rv), (ck, cv) in zip(reference_leaves, cached_leaves):
            assert rk == ck
            assert cv == pytest.approx(rv)

    def test_repeated_same_key(self):
        updates = [((3, 3, 3), True)] * 5
        reference = plain_tree(updates)
        cached = cached_tree(updates)
        assert cached.search((3, 3, 3)) == pytest.approx(
            reference.search((3, 3, 3))
        )

    def test_pruning_preserved(self):
        updates = [
            ((x, y, z), True)
            for _ in range(20)
            for x in range(2)
            for y in range(2)
            for z in range(2)
        ]
        reference = plain_tree(updates)
        cached = cached_tree(updates)
        assert cached.num_nodes == reference.num_nodes  # pruned identically

    def test_expansion_inherits_values(self):
        # Build a pruned block, then poke one voxel through the inserter.
        tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
        for _ in range(20):
            for x in range(2):
                for y in range(2):
                    for z in range(2):
                        tree.update_node((x, y, z), True)
        with PathCachingInserter(tree) as inserter:
            inserter.insert((0, 0, 0), False)
        assert tree.search((1, 1, 1)) == pytest.approx(tree.params.max_occ)
        expected = tree.params.update(tree.params.max_occ, False)
        assert tree.search((0, 0, 0)) == pytest.approx(expected)

    def test_inner_values_current_after_finish(self):
        updates = [((0, 0, 0), True), ((SIDE - 1, SIDE - 1, SIDE - 1), False)]
        cached = cached_tree(updates)
        # Root must reflect the max over both leaves.
        assert cached._root.value == pytest.approx(
            cached.params.delta_occupied
        )


class TestWorkSaving:
    def test_morton_order_descends_less(self):
        """F(S) predicts descent work: Morton order saves real steps."""
        import random

        all_keys = [
            (x, y, z) for x in range(8) for y in range(8) for z in range(8)
        ]
        shuffled = list(all_keys)
        random.Random(0).shuffle(shuffled)
        morton = sorted(all_keys, key=lambda k: morton_encode3(*k))

        def steps(ordering):
            tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
            inserter = PathCachingInserter(tree)
            inserter.insert_batch((key, True) for key in ordering)
            inserter.finish()
            return inserter.descent_steps

        assert steps(morton) < 0.6 * steps(shuffled)

    def test_same_key_run_costs_one_descent(self):
        tree = OccupancyOctree(resolution=0.1, depth=DEPTH)
        inserter = PathCachingInserter(tree)
        inserter.insert((5, 5, 5), True)
        first = inserter.descent_steps
        for _ in range(10):
            inserter.insert((5, 5, 5), True)
        inserter.finish()
        assert inserter.descent_steps == first  # zero extra descent
