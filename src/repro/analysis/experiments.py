"""One-shot experiment report: the paper's headline results in one run.

``quick_report`` executes compact versions of the headline experiments —
dataset duplication, the OctoMap bottleneck decomposition, the
voxel-ordering study, the construction comparison, and query-wait
latency — and renders a single markdown report.  The full benchmark
harness (``pytest benchmarks/``) remains the authoritative reproduction;
this is the two-minute tour (also exposed as ``python -m repro report``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List

from repro.analysis.orderings import (
    locality_cost_correlation,
    run_ordering_experiment,
)
from repro.analysis.report import format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config
from repro.baselines.octomap import OctoMapPipeline
from repro.core.octocache import OctoCacheMap
from repro.datasets.generator import make_dataset
from repro.datasets.stats import dataset_statistics
from repro.sensor.scaninsert import trace_scan

__all__ = ["quick_report", "ReportSection"]


@dataclass
class ReportSection:
    """One rendered block of the report."""

    title: str
    body: str
    seconds: float


def quick_report(
    dataset_name: str = "fr079_corridor",
    resolution: float = 0.2,
    depth: int = 12,
    max_batches: int = 8,
    ray_scale: float = 0.6,
) -> List[ReportSection]:
    """Run the compact experiment tour; returns the rendered sections."""
    dataset = make_dataset(dataset_name, pose_scale=1.0, ray_scale=ray_scale)
    sections: List[ReportSection] = []

    def add(title: str, body: str, start: float) -> None:
        sections.append(
            ReportSection(title=title, body=body, seconds=time.perf_counter() - start)
        )

    # 1. Duplication (Table 2 / §3.1).
    start = time.perf_counter()
    stats = dataset_statistics(dataset, resolution, depth)
    body = format_table(
        ["metric", "value"],
        [
            ["scans", stats.num_point_clouds],
            ["distinct voxels", stats.distinct_voxels],
            ["voxel observations", stats.total_observations],
            ["duplication ratio", f"{stats.duplication_ratio:.2f}x"],
            [
                "per-batch duplication",
                f"{stats.min_batch_duplication:.2f}-{stats.max_batch_duplication:.2f}x",
            ],
        ],
    )
    add("Workload duplication (Table 2, §3.1)", body, start)

    # 2. The OctoMap bottleneck (Figure 6).
    start = time.perf_counter()
    vanilla = run_construction(
        dataset,
        resolution,
        lambda res: OctoMapPipeline(
            resolution=res, depth=depth, max_range=dataset.sensor.max_range
        ),
        depth=depth,
        max_batches=max_batches,
    )
    octree_share = vanilla.stage_seconds.get("octree_update", 0.0) / max(
        vanilla.total_seconds, 1e-12
    )
    body = format_table(
        ["metric", "value"],
        [
            ["OctoMap generation", f"{vanilla.total_seconds:.2f}s"],
            ["octree update share", f"{octree_share * 100:.1f}%"],
            ["octree voxel writes", vanilla.octree_voxels_written],
        ],
    )
    add("OctoMap bottleneck (Figure 6)", body, start)

    # 3. OctoCache construction speedup (Figures 20/22).
    start = time.perf_counter()
    config = suggest_cache_config(dataset, resolution, depth)
    cached = run_construction(
        dataset,
        resolution,
        lambda res: OctoCacheMap(
            resolution=res,
            depth=depth,
            max_range=dataset.sensor.max_range,
            cache_config=config,
        ),
        depth=depth,
        max_batches=max_batches,
    )
    body = format_table(
        ["metric", "OctoMap", "OctoCache"],
        [
            ["generation time", f"{vanilla.total_seconds:.2f}s", f"{cached.total_seconds:.2f}s"],
            [
                "time to first query",
                f"{vanilla.critical_seconds:.2f}s",
                f"{cached.critical_seconds:.2f}s",
            ],
            ["octree voxel writes", vanilla.octree_voxels_written, cached.octree_voxels_written],
            ["cache hit ratio", "-", f"{cached.cache_hit_ratio:.3f}"],
            [
                "modeled two-core time",
                "-",
                f"{cached.timeline.parallel_seconds:.2f}s",
            ],
        ],
    )
    speedup = vanilla.total_seconds / max(cached.total_seconds, 1e-12)
    body += f"\n\nserial speedup: {speedup:.2f}x (paper: 1.03-2.06x at 0.1m)"
    add("OctoCache vs OctoMap (Figures 20/22)", body, start)

    # 4. Voxel ordering (Figure 10).
    start = time.perf_counter()
    keys = []
    for cloud in dataset.scans():
        batch = trace_scan(
            cloud, resolution, depth, max_range=dataset.sensor.max_range
        )
        keys.extend(key for key, _occ in batch.observations)
        if len(keys) >= 15_000:
            break
    results = run_ordering_experiment(keys[:15_000], resolution=resolution, depth=depth)
    by_name = {r.name: r for r in results}
    rows = [
        [r.name, r.locality, f"{r.modeled_cycles_per_voxel:.1f}"]
        for r in sorted(results, key=lambda r: r.locality)
    ]
    body = format_table(["ordering", "F(S)", "modeled cycles/voxel"], rows)
    body += (
        f"\n\nrandom/morton = "
        f"{by_name['random'].modeled_cycles_per_voxel / by_name['morton'].modeled_cycles_per_voxel:.2f}x"
        f" (paper: 1.97-3.32x); Spearman(F, cost) = "
        f"{locality_cost_correlation(results):.2f}"
    )
    add("Morton ordering (Figure 10, §4.3)", body, start)

    return sections


def render_markdown(
    sections: List[ReportSection], title: str = "OctoCache quick report"
) -> str:
    """Render sections as a standalone markdown document."""
    lines = [f"# {title}", ""]
    total = sum(section.seconds for section in sections)
    lines.append(
        f"_Compact tour of the headline experiments ({total:.0f}s; the full "
        "reproduction is `pytest benchmarks/ --benchmark-only`)._"
    )
    for section in sections:
        lines.extend(
            ["", f"## {section.title}", "", "```", section.body, "```"]
        )
    lines.append("")
    return "\n".join(lines)
