"""OctoCache reproduction: caching voxels for accelerating 3D occupancy mapping.

This package is a from-scratch Python reproduction of *OctoCache: Caching
Voxels for Accelerating 3D Occupancy Mapping in Autonomous Systems*
(ASPLOS '25), together with every substrate the paper depends on:

- :mod:`repro.octree` — an OctoMap-style probabilistic occupancy octree.
- :mod:`repro.sensor` — point clouds and ray tracing (scan insertion).
- :mod:`repro.simcache` — a memory-hierarchy simulator standing in for the
  Jetson TX2 CPU caches (see ``DESIGN.md`` for the substitution argument).
- :mod:`repro.datasets` — procedural 3D-scan datasets mirroring the paper's
  three public datasets.
- :mod:`repro.core` — OctoCache itself: the bucketed voxel cache, Morton
  ordering, and the serial/parallel mapping pipelines.
- :mod:`repro.baselines` — the vanilla OctoMap and OctoMap-RT pipelines.
- :mod:`repro.uav` — a MAVBench-like closed-loop UAV navigation simulator.
- :mod:`repro.analysis` — experiment harnesses regenerating every table and
  figure of the paper's evaluation.
- :mod:`repro.telemetry` — structured tracing across every layer, with
  exportable pipeline profiles (``docs/observability.md``).

Quickstart::

    from repro import OctoCacheMap
    m = OctoCacheMap(resolution=0.1)
    m.insert_point_cloud(points, origin=(0.0, 0.0, 0.0))
    assert m.is_occupied((1.0, 2.0, 0.5)) in (True, False, None)
"""

from repro.core.config import CacheConfig, OccupancyConfig
from repro.core.morton import morton_decode3, morton_encode3
from repro.core.adaptive import AdaptiveOctoCacheMap
from repro.core.octocache import OctoCacheMap, OctoCacheRTMap
from repro.core.parallel import ParallelOctoCacheMap
from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.octomap_rt import OctoMapRTPipeline
from repro.octree.tree import OccupancyOctree
from repro.telemetry import (
    PipelineProfile,
    RingBufferSink,
    Tracer,
    get_tracer,
    tracing,
)

__version__ = "1.0.0"

__all__ = [
    "CacheConfig",
    "OccupancyConfig",
    "AdaptiveOctoCacheMap",
    "OctoCacheMap",
    "OctoCacheRTMap",
    "ParallelOctoCacheMap",
    "OctoMapPipeline",
    "OctoMapRTPipeline",
    "OccupancyOctree",
    "PipelineProfile",
    "RingBufferSink",
    "Tracer",
    "get_tracer",
    "morton_encode3",
    "morton_decode3",
    "tracing",
    "__version__",
]
