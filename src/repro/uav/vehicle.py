"""UAV models (paper §5.1).

The paper flies two UAVs: the AscTec Pelican (1872 g, strong rotors) and
the DJI Spark (350 g, weak rotors), both with 50 Hz sensors.  What the
velocity bound needs from a vehicle is its braking acceleration and its
rotor-limited top speed; both are derived from the paper's weight /
rotor-pull specs via a fixed thrust-to-weight mapping so the *relationship*
between the two vehicles is preserved (the Spark is rotor-limited, which
is why the paper sees no completion-time gain for it in easy
environments).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["UAVModel", "ASCTEC_PELICAN", "DJI_SPARK"]

_GRAVITY = 9.81


@dataclass(frozen=True)
class UAVModel:
    """A quadrotor's physics envelope for the safe-velocity bound.

    Attributes:
        name: vehicle label.
        mass_kg: take-off mass.
        rotor_pull_n: maximum total rotor thrust (paper's "rotor pull").
        sensor_fps: depth-sensor frame rate (Hz).
        max_velocity: rotor-limited top speed (m/s) — the hard cap that
            dominates when compute is fast relative to vehicle dynamics.
        hover_power_w: electrical power while airborne.  The paper notes
            95% of UAV energy is consumed by the rotors over the whole
            flight, so mission energy ≈ this power × mission time.
    """

    name: str
    mass_kg: float
    rotor_pull_n: float
    sensor_fps: float
    max_velocity: float
    hover_power_w: float = 100.0

    def __post_init__(self) -> None:
        if self.mass_kg <= 0 or self.rotor_pull_n <= 0:
            raise ValueError("mass and rotor pull must be positive")
        if self.sensor_fps <= 0:
            raise ValueError(f"sensor_fps must be positive, got {self.sensor_fps}")
        if self.max_velocity <= 0:
            raise ValueError(f"max_velocity must be positive, got {self.max_velocity}")

    @property
    def thrust_to_weight(self) -> float:
        """Rotor pull over weight; >1 is required to fly."""
        return self.rotor_pull_n / (self.mass_kg * _GRAVITY)

    @property
    def braking_acceleration(self) -> float:
        """Deceleration available for emergency stops (m/s²).

        Modelled as the surplus thrust-to-weight, capped at a plausible
        aggressive-braking ceiling; the cap binds for both paper UAVs
        (their quoted thrust figures are far above hover), preserving the
        spec ordering without producing absurd accelerations.
        """
        surplus = max(self.thrust_to_weight - 1.0, 0.1)
        return min(surplus * _GRAVITY, 12.0 if self.mass_kg > 1.0 else 6.0)

    @property
    def frame_period(self) -> float:
        """Seconds between sensor frames."""
        return 1.0 / self.sensor_fps


#: AscTec Pelican: 1872 g, 3600 N rotor pull, 50 Hz sensor (paper §5.1).
ASCTEC_PELICAN = UAVModel(
    name="AscTec Pelican",
    mass_kg=1.872,
    rotor_pull_n=3600.0,
    sensor_fps=50.0,
    max_velocity=16.0,
    hover_power_w=250.0,
)

#: DJI Spark: 350 g, 588 N rotor pull, 50 Hz sensor (paper §5.1).
DJI_SPARK = UAVModel(
    name="DJI Spark",
    mass_kg=0.350,
    rotor_pull_n=588.0,
    sensor_fps=50.0,
    max_velocity=6.0,
    hover_power_w=45.0,
)
