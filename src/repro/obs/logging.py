"""Structured JSON logging correlated with the telemetry span stream.

Every record a :class:`JsonLogFormatter` renders is one JSON object per
line — machine-parseable, greppable — and is stamped with the innermost
open telemetry span on the emitting thread
(:func:`repro.telemetry.current_span_info`): ``span_id``, ``span_name``,
``span_category``.  Because span ids are process-unique and exported by
every trace sink (JSON-lines records, Chrome-trace ``args``), a slow span
spotted in a Perfetto timeline can be joined *by id* against the log
lines emitted inside it — and, through the
:class:`~repro.telemetry.MetricsSink` bridge, against the metric deltas
the same batch produced.

Usage::

    from repro.obs import configure_json_logging

    configure_json_logging()                      # stderr, INFO
    log = logging.getLogger("repro.service")
    log.info("shard recovered", extra={"shard": 3, "replayed": 17})

emits::

    {"ts": ..., "level": "INFO", "logger": "repro.service",
     "message": "shard recovered", "shard": 3, "replayed": 17,
     "span_id": 91, "span_name": "shard.recover", "span_category": "service"}

The service layer logs its rare, operator-relevant events (worker
crashes, recoveries, shard deaths, checkpoint failures) through
``logging.getLogger("repro.service")`` — silent until a handler is
configured, so the hot path never pays for formatting.
"""

from __future__ import annotations

import io
import json
import logging
import sys
import time
from typing import Any, Dict, Optional

from repro.telemetry.tracer import current_span_info

__all__ = [
    "JsonLogFormatter",
    "SpanContextFilter",
    "configure_json_logging",
    "service_logger",
]

#: ``logging.LogRecord`` attributes that are plumbing, not payload.
_RESERVED = frozenset(
    (
        "args", "asctime", "created", "exc_info", "exc_text", "filename",
        "funcName", "levelname", "levelno", "lineno", "message", "module",
        "msecs", "msg", "name", "pathname", "process", "processName",
        "relativeCreated", "stack_info", "taskName", "thread", "threadName",
    )
)


class SpanContextFilter(logging.Filter):
    """Stamps records with the active telemetry span (id/name/category).

    Attached as a *filter* so the stamp happens on the emitting thread —
    a handler running on another thread (``QueueHandler``) would read the
    wrong thread-local.
    """

    def filter(self, record: logging.LogRecord) -> bool:
        info = current_span_info()
        if info is not None:
            record.span_id, record.span_name, record.span_category = info
        return True


class JsonLogFormatter(logging.Formatter):
    """Formats each record as one JSON object on one line.

    The payload carries ``ts`` (epoch seconds), ``level``, ``logger``,
    ``message``, ``thread``, every ``extra=`` field the call site
    attached, the span stamp added by :class:`SpanContextFilter`, and —
    for records logged with ``exc_info`` — a rendered ``exc`` traceback.
    """

    def format(self, record: logging.LogRecord) -> str:
        payload: Dict[str, Any] = {
            "ts": record.created,
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
            "thread": record.threadName,
        }
        for key, value in record.__dict__.items():
            if key in _RESERVED or key in payload or key.startswith("_"):
                continue
            try:
                json.dumps(value)
            except (TypeError, ValueError):
                value = repr(value)
            payload[key] = value
        if record.exc_info:
            payload["exc"] = self.formatException(record.exc_info)
        return json.dumps(payload, separators=(", ", ": "))


def configure_json_logging(
    stream: Optional[io.TextIOBase] = None,
    level: int = logging.INFO,
    logger: Optional[logging.Logger] = None,
) -> logging.Handler:
    """Attach a span-correlated JSON handler; returns it (for removal).

    Configures the ``"repro"`` logger by default so application logging
    is untouched; pass ``logger=logging.getLogger()`` to take over the
    root.  Calling it twice replaces the previous handler rather than
    duplicating output.
    """
    target = logger if logger is not None else logging.getLogger("repro")
    handler = logging.StreamHandler(stream if stream is not None else sys.stderr)
    handler.setFormatter(JsonLogFormatter())
    handler.addFilter(SpanContextFilter())
    handler.set_name("repro-json")
    for existing in list(target.handlers):
        if existing.get_name() == "repro-json":
            target.removeHandler(existing)
    target.addHandler(handler)
    target.setLevel(level)
    return handler


def service_logger() -> logging.Logger:
    """The logger the service layer emits its lifecycle events through."""
    return logging.getLogger("repro.service")


def _utc_stamp() -> str:  # pragma: no cover - debugging aid
    """Human-readable UTC timestamp (log file naming)."""
    return time.strftime("%Y%m%dT%H%M%SZ", time.gmtime())
