"""Tests for the UAV sweep drivers (structure, not mission outcomes)."""

from repro.baselines.octomap import OctoMapPipeline
from repro.uav.environments import make_environment
from repro.uav.sweeps import resolution_sweep, sensing_range_sweep


def tiny_factory(res, srange):
    return OctoMapPipeline(resolution=res, depth=9, max_range=srange)


class TestSweepStructure:
    def test_resolution_sweep_points(self):
        env = make_environment("room")
        points = resolution_sweep(
            env, [0.3, 0.2], tiny_factory, max_cycles=3
        )
        assert [p.resolution for p in points] == [0.3, 0.2]
        assert all(p.sensing_range == env.sensing_range for p in points)
        assert all(p.result.cycles <= 3 for p in points)

    def test_sensing_range_sweep_points(self):
        env = make_environment("room")
        points = sensing_range_sweep(
            env, [2.0, 3.0], tiny_factory, max_cycles=3
        )
        assert [p.sensing_range for p in points] == [2.0, 3.0]
        assert all(p.resolution == env.resolution for p in points)

    def test_overrides_respected(self):
        env = make_environment("room")
        points = resolution_sweep(
            env, [0.3], tiny_factory, sensing_range=2.5, max_cycles=2
        )
        assert points[0].sensing_range == 2.5

    def test_offload_flag_passes_through(self):
        env = make_environment("room")
        # With the flag on, octomap pipelines are unaffected (isinstance
        # gate); the run must still work end to end.
        points = resolution_sweep(
            env, [0.3], tiny_factory, max_cycles=2, model_octree_offload=True
        )
        assert points[0].result.cycles <= 2
