"""``repro.mp``: the multiprocess shard execution engine.

The service's thread-backed shard workers share one GIL, so their
"parallelism" is concurrency, not speedup.  This package moves the
compute — the cache-insert → evict → octree-update cycle — into child
processes, one private :class:`~repro.core.octocache.OctoCacheMap` per
shard, fed over a versioned pickle-free IPC protocol:

- :mod:`repro.mp.codec` — the CRC-32-framed wire format (observations,
  queries, snapshot blobs, telemetry relay events);
- :mod:`repro.mp.worker` — the child-process command loop;
- :mod:`repro.mp.supervisor` — :class:`ShardProcessSupervisor`:
  spawn / health / heartbeat / kill / restart of worker processes;
- :mod:`repro.mp.backend` — :class:`ProcessShardedMap`, the drop-in
  replacement for :class:`~repro.service.sharded_map.ShardedMap` behind
  ``OccupancyMapService(workers="process")``.

See ``docs/parallelism.md`` for the backend seam, the protocol, and the
recovery path.
"""

from repro.mp.backend import ProcessShardedMap
from repro.mp.supervisor import (
    ShardProcessDied,
    ShardProcessSupervisor,
    WorkerCommandError,
)

__all__ = [
    "ProcessShardedMap",
    "ShardProcessDied",
    "ShardProcessSupervisor",
    "WorkerCommandError",
]
