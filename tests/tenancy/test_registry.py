"""Tenant lifecycle: isolation, quotas, and bit-exact evict/restore.

The property under test throughout: a tenant's map must answer exactly
as a dedicated single-tenant map would — across backend choice, across
evict/restore round trips, and across worker-process death — and a
quota rejection must leave it byte-identical.
"""

import random

import pytest

from repro.octree.serialize import tree_to_bytes
from repro.service.server import OccupancyMapService, ServiceConfig
from repro.service.sharding import ShardRouter
from repro.tenancy import (
    TenantQuota,
    TenantQuotaExceeded,
    TenantRegistry,
    TenantState,
    tenant_salt,
)

BACKENDS = ("thread", "process")


def make_service(workers: str, **overrides) -> OccupancyMapService:
    config = ServiceConfig(
        resolution=0.2,
        depth=8,
        num_shards=2,
        workers=workers,
        snapshot_interval=0,
        **overrides,
    )
    return OccupancyMapService(config)


def random_batches(seed: int, batches: int = 5, size: int = 40):
    rng = random.Random(seed)
    out = []
    for _ in range(batches):
        out.append(
            [
                (
                    (rng.randrange(256), rng.randrange(256), rng.randrange(256)),
                    rng.random() < 0.7,
                )
                for _ in range(size)
            ]
        )
    return out


class TestRoutingSalt:
    def test_distinct_tenants_place_blocks_differently(self):
        base = ShardRouter(4, 10)
        salted = ShardRouter(4, 10, salt=tenant_salt("robot-7"))
        keys = [(i * 13 % 1024, i * 7 % 1024, i * 3 % 1024) for i in range(200)]
        assert any(base.shard_of(k) != salted.shard_of(k) for k in keys)

    def test_salt_is_stable_and_deterministic(self):
        assert tenant_salt("robot-7") == tenant_salt("robot-7")
        assert tenant_salt("robot-7") != tenant_salt("robot-8")
        a = ShardRouter(4, 10, salt=tenant_salt("x"))
        b = ShardRouter(4, 10, salt=tenant_salt("x"))
        keys = [(i, i, i) for i in range(100)]
        assert [a.shard_of(k) for k in keys] == [b.shard_of(k) for k in keys]


@pytest.mark.parametrize("workers", BACKENDS)
class TestLifecycle:
    def test_evict_restore_is_bit_exact(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                for batch in random_batches(seed=1):
                    receipt = registry.submit_observations("robot-a", batch)
                    assert receipt.accepted
                registry.flush("robot-a")
                expected = tree_to_bytes(registry.snapshot("robot-a"))

                registry.evict("robot-a")
                assert registry.get("robot-a").state is TenantState.EVICTED
                with pytest.raises(RuntimeError):
                    registry.query_key("robot-a", (1, 1, 1))

                registry.restore("robot-a")
                assert tree_to_bytes(registry.snapshot("robot-a")) == expected

    def test_restore_survives_more_traffic_after(self, workers):
        # The restored slots must be live pipelines, not frozen copies.
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                first, second = random_batches(seed=2, batches=2)
                registry.submit_observations("robot-a", first)
                registry.flush("robot-a")
                registry.evict("robot-a")
                registry.restore("robot-a")
                registry.submit_observations("robot-a", second)
                registry.flush("robot-a")

                # Reference: the same two batches through a dedicated map.
                with make_service(workers) as ref_service:
                    with TenantRegistry(ref_service) as ref_registry:
                        ref_registry.create("robot-a")
                        ref_registry.submit_observations("robot-a", first)
                        ref_registry.submit_observations("robot-a", second)
                        ref_registry.flush("robot-a")
                        expected = tree_to_bytes(
                            ref_registry.snapshot("robot-a")
                        )
                assert (
                    tree_to_bytes(registry.snapshot("robot-a")) == expected
                )

    def test_tenants_are_isolated(self, workers):
        # Same voxel keys, opposite occupancy: each tenant must see only
        # its own accumulated values.
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                registry.create("robot-b")
                keys = [(i, 2 * i % 256, 3 * i % 256) for i in range(50)]
                registry.submit_observations(
                    "robot-a", [(key, True) for key in keys]
                )
                registry.submit_observations(
                    "robot-b", [(key, False) for key in keys]
                )
                registry.flush()
                values_a = registry.query_keys("robot-a", keys)
                values_b = registry.query_keys("robot-b", keys)
                assert all(value > 0 for value in values_a)
                assert all(value < 0 for value in values_b)

    def test_evicted_tenant_frees_slots_without_touching_others(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                registry.create("robot-b")
                batch = random_batches(seed=3, batches=1)[0]
                registry.submit_observations("robot-a", batch)
                registry.submit_observations("robot-b", batch)
                registry.flush()
                expected_b = tree_to_bytes(registry.snapshot("robot-b"))
                registry.evict("robot-a")
                assert (
                    tree_to_bytes(registry.snapshot("robot-b")) == expected_b
                )


@pytest.mark.parametrize("workers", BACKENDS)
class TestQuota:
    def test_slot_rejection_is_all_or_nothing(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create(
                    "constrained", quota=TenantQuota(queue_slots=1)
                )
                keys = [(i, i, i) for i in range(64)]
                batch = [(key, True) for key in keys]
                tenant = registry.get("constrained")
                # The batch spans both shards, so it needs 2 slots and
                # the 1-slot quota must reject it atomically.
                assert (
                    sum(
                        1
                        for part in tenant.router.partition(batch)
                        if part
                    )
                    > 1
                )
                receipt = registry.submit_observations("constrained", batch)
                assert not receipt.accepted
                assert receipt.reason == "slots"
                assert receipt.enqueued == 0
                registry.flush()
                # Nothing reached the map or the journal.
                assert all(
                    value is None
                    for value in registry.query_keys("constrained", keys)
                )
                assert all(
                    tenant.store.journal_length(shard) == 0
                    for shard in range(registry.num_shards)
                )

    def test_must_accept_rejection_raises_and_leaves_map_untouched(
        self, workers
    ):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create(
                    "constrained", quota=TenantQuota(queue_slots=1)
                )
                batch = [((i, i, i), True) for i in range(64)]
                with pytest.raises(TenantQuotaExceeded):
                    registry.submit_observations(
                        "constrained", batch, must_accept=True
                    )
                registry.flush()
                assert registry.get("constrained").served_observations == 0

    def test_rate_quota_rejects_burst_overflow(self, workers):
        with make_service(workers) as service:
            with TenantRegistry(service) as registry:
                registry.create(
                    "metered",
                    quota=TenantQuota(scans_per_sec=1.0, burst=2.0),
                )
                batch = [((1, 2, 3), True)]
                assert registry.submit_observations("metered", batch).accepted
                assert registry.submit_observations("metered", batch).accepted
                third = registry.submit_observations("metered", batch)
                assert not third.accepted
                assert third.reason == "rate"


class TestProcessCrashRecovery:
    def test_sigkill_mid_evict_is_recoverable_from_the_journal(self):
        # Kill a worker process after the tenant's batches were applied
        # but before evict snapshots it: persist degrades to
        # journal-only durability and restore still rebuilds the exact
        # map by replaying the journal.
        with make_service("process") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                for batch in random_batches(seed=4, batches=3):
                    registry.submit_observations("robot-a", batch)
                registry.flush("robot-a")
                expected = tree_to_bytes(registry.snapshot("robot-a"))

                for shard_id in range(service.config.num_shards):
                    service.map.kill_shard_process(shard_id)
                registry.evict("robot-a")
                registry.restore("robot-a")
                assert tree_to_bytes(registry.snapshot("robot-a")) == expected

    def test_process_death_lazily_restores_tenant_slots(self):
        # No evict at all: a SIGKILLed worker must transparently rebuild
        # the tenant slots it hosted (tenant_recovery_source) before
        # serving the next request.
        with make_service("process") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                batch = random_batches(seed=5, batches=1, size=60)[0]
                registry.submit_observations("robot-a", batch)
                registry.flush("robot-a")
                expected = tree_to_bytes(registry.snapshot("robot-a"))
                for shard_id in range(service.config.num_shards):
                    service.map.kill_shard_process(shard_id)
                assert tree_to_bytes(registry.snapshot("robot-a")) == expected


class TestIntrospection:
    def test_tenants_dict_shape(self):
        with make_service("thread") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                batch = [((1, 2, 3), True), ((4, 5, 6), False)]
                registry.submit_observations("robot-a", batch)
                registry.flush()
                payload = registry.tenants_dict()
                assert payload["enabled"] is True
                assert payload["count"] == 1
                entry = payload["tenants"]["robot-a"]
                assert entry["state"] == "active"
                assert entry["submitted_observations"] == 2
                assert entry["served_observations"] == 2
                assert entry["quota"]["queue_slots"] >= 1
                assert entry["journal_entries"] >= 1

    def test_per_tenant_metrics_land_in_the_service_registry(self):
        with make_service("thread") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                registry.submit_observations(
                    "robot-a", [((1, 2, 3), True)]
                )
                registry.flush()
                metrics = service.metrics.to_dict()
                assert metrics["counters"]["tenant.submitted.robot-a"] == 1
                assert metrics["counters"]["tenant.served.robot-a"] == 1
                assert (
                    metrics["states"]["tenant_state.robot-a"]["state"]
                    == "active"
                )

    def test_admin_tenants_route_serves_fleet_state(self):
        import json
        import urllib.request

        with make_service("thread") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                registry.submit_observations("robot-a", [((1, 2, 3), True)])
                registry.flush()
                admin = service.serve_admin(port=0)
                try:
                    with urllib.request.urlopen(admin.url + "/tenants") as resp:
                        payload = json.loads(resp.read())
                finally:
                    admin.close()
                assert payload["enabled"] is True
                assert payload["tenants"]["robot-a"]["state"] == "active"

    def test_duplicate_and_unknown_tenants(self):
        with make_service("thread") as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                with pytest.raises(ValueError):
                    registry.create("robot-a")
                with pytest.raises(KeyError):
                    registry.get("nope")
