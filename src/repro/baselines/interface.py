"""The mapping-system interface shared by all pipelines.

The paper requires OctoCache to keep OctoMap's query API and results
(query consistency, §4.1); encoding the API as an abstract base makes that
a structural guarantee — the UAV simulator, harnesses, and examples are
written once against :class:`MappingSystem`.
"""

from __future__ import annotations

import abc
from typing import List, Optional, Tuple

from repro.analysis.decomposition import StageTimings
from repro.kernels import validate_kernel
from repro.telemetry import get_tracer
from repro.octree.key import VoxelKey
from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree
from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import ScanBatch, trace_scan, trace_scan_rt

__all__ = ["MappingSystem", "BatchRecord"]


class BatchRecord:
    """Per-batch stage durations, kept for pipeline modelling (Fig. 13).

    Attributes mirror the workflow stages; absent stages stay 0.0.
    """

    __slots__ = (
        "ray_tracing",
        "cache_insertion",
        "cache_eviction",
        "octree_update",
        "enqueue",
        "dequeue",
        "wait",
        "observations",
        "evicted",
    )

    def __init__(self) -> None:
        self.ray_tracing = 0.0
        self.cache_insertion = 0.0
        self.cache_eviction = 0.0
        self.octree_update = 0.0
        self.enqueue = 0.0
        self.dequeue = 0.0
        self.wait = 0.0
        self.observations = 0
        self.evicted = 0


class MappingSystem(abc.ABC):
    """Abstract occupancy mapping pipeline (Figure 4 workflow).

    Concrete pipelines differ in what happens between ray tracing and the
    octree; the sensing front-end and the query API are common.

    Args:
        resolution: finest voxel edge length (metres).
        depth: octree depth (mapping boundary = ``resolution * 2**depth``).
        params: occupancy-update parameters.
        max_range: sensor range clamp applied during ray tracing.
        rt: use duplicate-free (OctoMap-RT style) ray tracing.
        kernel: ``"scalar"`` (per-ray Python reference) or ``"vector"``
            (the batched numpy kernels of :mod:`repro.kernels` — same
            map, bit for bit).  Selects both the tracer variant and, for
            pipelines that support it, the bulk apply path.
    """

    #: Human-readable pipeline name, set by subclasses.
    name: str = "abstract"

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        rt: bool = False,
        kernel: str = "scalar",
    ) -> None:
        validate_kernel(kernel)
        self.resolution = resolution
        self.depth = depth
        self.params = params or OccupancyParams()
        self.max_range = max_range
        self.rt = rt
        self.kernel = kernel
        self.timings = StageTimings()
        #: Telemetry tracer stage spans report to.  Defaults to the
        #: process-global tracer (disabled unless someone opts in, e.g.
        #: ``repro.telemetry.tracing`` or the ``trace-bench`` CLI);
        #: assign a private :class:`~repro.telemetry.Tracer` to isolate
        #: one pipeline's spans.
        self.tracer = get_tracer()
        self.batches: List[BatchRecord] = []
        #: When true, :meth:`insert_point_cloud` keeps the traced
        #: :class:`~repro.sensor.scaninsert.ScanBatch` in
        #: :attr:`last_batch` — incremental consumers (frontier
        #: exploration, change feeds) read the touched voxels from it
        #: without re-tracing the cloud.
        self.keep_last_batch = False
        self.last_batch: Optional[ScanBatch] = None
        self._tree = OccupancyOctree(
            resolution=resolution, depth=depth, params=self.params
        )

    # ------------------------------------------------------------------
    # Sensing front-end (shared).
    # ------------------------------------------------------------------

    def trace(self, cloud: PointCloud) -> ScanBatch:
        """Ray-trace one point cloud into a voxel observation batch."""
        tracer = trace_scan_rt if self.rt else trace_scan
        return tracer(
            cloud,
            self.resolution,
            self.depth,
            max_range=self.max_range,
            kernel=self.kernel,
        )

    # ------------------------------------------------------------------
    # Update path.
    # ------------------------------------------------------------------

    def insert_point_cloud(
        self,
        points,
        origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> BatchRecord:
        """Run the full per-batch workflow for one scan.

        ``points`` may be a :class:`PointCloud` (its own origin is used) or
        an ``(N, 3)`` array-like with ``origin`` supplied separately.
        Returns the batch's stage-duration record.
        """
        if isinstance(points, PointCloud):
            cloud = points
        else:
            cloud = PointCloud(points, origin)
        record = BatchRecord()
        with self.timings.stage("ray_tracing") as watch, self.tracer.span(
            "ray_tracing", category="sensor", points=len(cloud.points)
        ) as span:
            batch = self.trace(cloud)
            span.set(rays=batch.num_rays, observations=len(batch))
        record.ray_tracing = watch.elapsed
        return self.insert_batch(batch, record=record)

    def insert_batch(
        self, batch: ScanBatch, record: Optional[BatchRecord] = None
    ) -> BatchRecord:
        """Apply one already-traced batch to the map.

        The sharded service traces a scan once, partitions the
        observations by shard, and feeds each shard its slice through this
        entry point — re-tracing per shard would multiply the front-end
        cost by the shard count.  ``record`` carries stage times accrued so
        far (ray tracing when the caller traced); a fresh record is created
        otherwise.  Returns the batch's stage-duration record.
        """
        if record is None:
            record = BatchRecord()
        record.observations = len(batch)
        if self.keep_last_batch:
            self.last_batch = batch
        with self.tracer.span(
            "insert_batch",
            category="pipeline",
            pipeline=self.name,
            observations=record.observations,
        ):
            self._process_batch(batch, record)
        self.batches.append(record)
        return record

    @abc.abstractmethod
    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        """Apply one traced batch to the map (pipeline-specific)."""

    def finalize(self) -> None:
        """Flush any buffered state into the octree (no-op by default)."""

    # ------------------------------------------------------------------
    # Context-manager protocol: guaranteed cleanup for pipelines that
    # buffer state (caches) or own worker threads.  Service shards and
    # tests lean on this to never leak a half-flushed map.
    # ------------------------------------------------------------------

    def __enter__(self) -> "MappingSystem":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize()

    # ------------------------------------------------------------------
    # Query path (OctoMap-compatible API, paper §4.1).
    # ------------------------------------------------------------------

    @property
    def octree(self) -> OccupancyOctree:
        """The backend octree (after :meth:`finalize`, the full map)."""
        return self._tree

    def query_key(self, key: VoxelKey) -> Optional[float]:
        """Log-odds occupancy of the voxel at ``key`` (``None`` = unknown)."""
        return self._tree.search(key)

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        """Log-odds occupancy at a metric coordinate (``None`` = unknown)."""
        return self.query_key(self._tree.coord_to_key(coord))

    def is_occupied(self, coord: Tuple[float, float, float]) -> Optional[bool]:
        """Occupancy decision at a metric coordinate (``None`` = unknown)."""
        value = self.query(coord)
        if value is None:
            return None
        return self.params.is_occupied(value)

    # ------------------------------------------------------------------
    # Latency metrics.
    # ------------------------------------------------------------------

    def critical_path_seconds(self) -> float:
        """Time queries had to wait for, summed over all batches.

        For octree-backed baselines this is ray tracing + octree update;
        cache-backed pipelines override the stage set (queries are served
        right after cache insertion, Figure 13).
        """
        return self.timings.total(("ray_tracing", "octree_update"))

    def record_response_seconds(self, record: BatchRecord) -> float:
        """One batch's query-response latency (per-cycle critical path)."""
        return record.ray_tracing + record.octree_update

    def record_busy_seconds(self, record: BatchRecord) -> float:
        """One batch's total compute on the critical thread.

        Bounds the achievable cycle rate; for single-threaded pipelines it
        is the whole batch, for the parallel design the octree update and
        dequeue run on thread 2 and are excluded.
        """
        return (
            record.ray_tracing
            + record.cache_insertion
            + record.cache_eviction
            + record.octree_update
            + record.enqueue
            + record.wait
        )

    def total_seconds(self) -> float:
        """Total mapping-system generation time across all stages."""
        return self.timings.total()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(res={self.resolution}, depth={self.depth}, "
            f"batches={len(self.batches)})"
        )
