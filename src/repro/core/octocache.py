"""Serial OctoCache mapping pipeline (paper §4.2–4.3, Figure 11).

The per-batch workflow is: ray tracing → cache insertion → *(queries are
now serveable)* → cache eviction → octree update of evicted voxels.  The
cache holds accumulated occupancy values, so a cache hit answers queries
exactly as vanilla OctoMap would, and eviction *overwrites* the octree's
stale copy; a cache miss falls through to the octree (§4.2.1).

``use_morton_indexing=True`` (the default) gives the Morton-code cache of
§4.3: buckets are located by ``Morton(v) % w``, so sequential bucket-order
eviction emits the octree update batch in (modular) Morton order — the
insertion order the paper proves optimal.  Setting it ``False`` yields the
strawman hash cache of §4.2 (an ablation knob).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.baselines.interface import BatchRecord, MappingSystem
from repro.core.cache import EvictedCell, VoxelCache
from repro.core.config import CacheConfig
from repro.octree.key import VoxelKey
from repro.octree.occupancy import OccupancyParams
from repro.sensor.scaninsert import ScanBatch

__all__ = ["OctoCacheMap", "OctoCacheRTMap"]


class OctoCacheMap(MappingSystem):
    """OctoMap accelerated by the OctoCache voxel cache (serial design)."""

    name = "OctoCache"

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        cache_config: Optional[CacheConfig] = None,
        rt: bool = False,
        kernel: str = "scalar",
    ) -> None:
        super().__init__(
            resolution=resolution,
            depth=depth,
            params=params,
            max_range=max_range,
            rt=rt,
            kernel=kernel,
        )
        self.cache = VoxelCache(
            cache_config or CacheConfig(),
            params=self.params,
            backend=self._tree,
        )

    # ------------------------------------------------------------------
    # Update path.
    # ------------------------------------------------------------------

    def _process_batch(self, batch: ScanBatch, record: BatchRecord) -> None:
        cache = self.cache
        tracer = self.tracer
        stats = cache.stats
        hits_before, misses_before = stats.hits, stats.misses
        with self.timings.stage("cache_insertion") as watch, tracer.span(
            "cache_insertion", category="cache", observations=len(batch)
        ) as span:
            if self.kernel == "vector":
                cache.update_batch_bulk(
                    batch.keys_array(), batch.occupied_array()
                )
            else:
                for key, occupied in batch.observations:
                    cache.insert(key, occupied)
            span.set(
                hits=stats.hits - hits_before,
                misses=stats.misses - misses_before,
            )
        record.cache_insertion = watch.elapsed
        tracer.count("cache.hits", stats.hits - hits_before, category="cache")
        tracer.count(
            "cache.misses", stats.misses - misses_before, category="cache"
        )

        with self.timings.stage("cache_eviction") as watch, tracer.span(
            "cache_eviction", category="cache"
        ) as span:
            evicted = cache.evict()
            span.set(evicted=len(evicted))
        record.cache_eviction = watch.elapsed
        record.evicted = len(evicted)
        tracer.count("cache.evictions", len(evicted), category="cache")

        with self.timings.stage("octree_update") as watch, tracer.span(
            "octree_update", category="octree", voxels=len(evicted)
        ):
            self._apply_evicted(evicted)
        record.octree_update = watch.elapsed

    def _apply_evicted(self, evicted: List[EvictedCell]) -> None:
        """Overwrite the octree with the accumulated values of a batch."""
        tree = self._tree
        if self.kernel == "vector" and evicted:
            keys = np.array([cell[0] for cell in evicted], dtype=np.int64)
            values = np.fromiter(
                (cell[1] for cell in evicted),
                dtype=np.float64,
                count=len(evicted),
            )
            tree.set_leaves_bulk(keys, values)
            return
        for key, value in evicted:
            tree.set_leaf(key, value)

    def finalize(self) -> None:
        """Flush every resident cache cell into the octree.

        After this the backend octree alone answers every query (used at
        the end of construction runs and before map serialisation).
        """
        flushed = self.cache.flush()
        self.tracer.count("cache.evictions", len(flushed), category="cache")
        with self.timings.stage("octree_update") as watch, self.tracer.span(
            "octree_update", category="octree", voxels=len(flushed), flush=True
        ):
            self._apply_evicted(flushed)
        if self.batches:
            self.batches[-1].octree_update += watch.elapsed
            self.batches[-1].evicted += len(flushed)

    # ------------------------------------------------------------------
    # Query path: cache first, octree on miss (query consistency, §4.2.1).
    # ------------------------------------------------------------------

    def query_key(self, key: VoxelKey) -> Optional[float]:
        """Occupancy for ``key``: resident cache cell wins, else octree."""
        return self.cache.query(key)

    # ------------------------------------------------------------------
    # Latency metrics.
    # ------------------------------------------------------------------

    def critical_path_seconds(self) -> float:
        """Queries wait only for ray tracing + cache insertion (Fig. 13a)."""
        return self.timings.total(("ray_tracing", "cache_insertion"))

    def record_response_seconds(self, record) -> float:
        """Per-cycle response latency: tracing + cache insertion only."""
        return record.ray_tracing + record.cache_insertion

    @property
    def hit_ratio(self) -> float:
        """Insert-path cache hit ratio (the paper's Fig. 23 metric)."""
        return self.cache.stats.hit_ratio

    # ------------------------------------------------------------------
    # Memory accounting (repro.memsight).
    # ------------------------------------------------------------------

    def memory_breakdown(
        self, exact: bool = False, deep: bool = False, name: str = "pipeline"
    ):
        """Cache + octree footprint as one :class:`MemoryReport` subtree."""
        from repro.memsight.report import MemoryReport

        return MemoryReport(
            name,
            children=[
                self.cache.memory_breakdown(exact=exact),
                self._tree.memory_breakdown(exact=exact, deep=deep),
            ],
        )


class OctoCacheRTMap(OctoCacheMap):
    """OctoCache-RT: the cache behind duplicate-free ray tracing (§5).

    Intra-batch duplicates are gone before the cache; the cache still
    earns hits from *inter-batch* overlap and still reorders evictions
    into Morton order.
    """

    name = "OctoCache-RT"

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        cache_config: Optional[CacheConfig] = None,
        kernel: str = "scalar",
    ) -> None:
        super().__init__(
            resolution=resolution,
            depth=depth,
            params=params,
            max_range=max_range,
            cache_config=cache_config,
            rt=True,
            kernel=kernel,
        )
