"""Tests for map denoising filters."""

import pytest

from repro.octree.filters import (
    connected_components,
    largest_component,
    remove_speckles,
)
from repro.octree.tree import OccupancyOctree

DEPTH = 6


def occupy(tree, keys, times=3):
    for _ in range(times):
        for key in keys:
            tree.update_node(key, True)


def make_tree():
    return OccupancyOctree(resolution=0.1, depth=DEPTH)


class TestComponents:
    def test_empty_map(self):
        assert connected_components(make_tree()) == []
        assert largest_component(make_tree()) == set()

    def test_single_blob(self):
        tree = make_tree()
        blob = {(1, 1, 1), (1, 1, 2), (1, 2, 2)}
        occupy(tree, blob)
        components = connected_components(tree)
        assert len(components) == 1
        assert components[0] == blob

    def test_two_separate_blobs_sorted_by_size(self):
        tree = make_tree()
        big = {(1, 1, 1), (1, 1, 2), (1, 2, 2), (2, 2, 2)}
        small = {(20, 20, 20)}
        occupy(tree, big | small)
        components = connected_components(tree)
        assert [len(c) for c in components] == [4, 1]
        assert components[0] == big

    def test_diagonal_is_not_connected(self):
        tree = make_tree()
        occupy(tree, {(1, 1, 1), (2, 2, 2)})  # touch only at a corner
        assert len(connected_components(tree)) == 2

    def test_free_voxels_ignored(self):
        tree = make_tree()
        occupy(tree, {(1, 1, 1)})
        tree.update_node((1, 1, 2), False)  # adjacent but free
        components = connected_components(tree)
        assert components == [{(1, 1, 1)}]

    def test_pruned_blocks_expand(self):
        tree = make_tree()
        block = {
            (x, y, z) for x in range(2) for y in range(2) for z in range(2)
        }
        occupy(tree, block, times=20)  # saturates and prunes
        components = connected_components(tree)
        assert components[0] == block


class TestSpeckleRemoval:
    def test_removes_singletons(self):
        tree = make_tree()
        structure = {(1, 1, 1), (1, 1, 2), (1, 2, 2)}
        speckle = {(30, 30, 30)}
        occupy(tree, structure | speckle)
        cleared = remove_speckles(tree, min_voxels=2)
        assert cleared == 1
        assert tree.params.is_occupied(tree.search((30, 30, 30))) is False
        # The real structure survives.
        for key in structure:
            assert tree.params.is_occupied(tree.search(key))

    def test_cleared_voxels_stay_known(self):
        tree = make_tree()
        occupy(tree, {(5, 5, 5)})
        remove_speckles(tree, min_voxels=2)
        assert tree.search((5, 5, 5)) is not None  # known free, not unknown

    def test_threshold_validation(self):
        with pytest.raises(ValueError):
            remove_speckles(make_tree(), min_voxels=0)

    def test_noop_when_all_components_large(self):
        tree = make_tree()
        occupy(tree, {(1, 1, 1), (1, 1, 2)})
        assert remove_speckles(tree, min_voxels=2) == 0


class TestLargestComponent:
    def test_selects_dominant_structure(self):
        tree = make_tree()
        wall = {(x, 10, 10) for x in range(12)}
        noise = {(40, 40, 40), (44, 44, 44)}
        occupy(tree, wall | noise)
        assert largest_component(tree) == wall
