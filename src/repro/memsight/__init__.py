"""Memory observability: deterministic hierarchical byte accounting.

The latency side of the stack is fully instrumented (spans, the
attribution waterfall, ``/slo``); :mod:`repro.memsight` is the byte
side.  Every stateful structure answers ``memory_breakdown()`` with a
:class:`MemoryReport` — a tree of ``component → (bytes, object count)``
— maintained from counters the hot path already keeps (cache residency,
octree node counts, journal lengths), so producing a report costs O(1)
per structure and ingest pays nothing new beyond a handful of integer
increments.

Three consumers sit on top:

- rollups published as ``mem.*`` gauges through the service's
  :class:`~repro.service.metrics.MetricsRegistry` (Prometheus text via
  ``/metrics``) with per-tenant attribution as ``tenant.mem_bytes.<name>``;
- the ``/memory`` admin route serving the full drill-down tree next to
  process RSS;
- :class:`PressureMonitor`, which turns configurable soft/hard
  watermarks over total and per-tenant footprint into a
  ``mem_pressure`` state gauge, JSON log events on transitions, and an
  advisory ``on_pressure`` hook (observation only — enforcement/spill is
  the ROADMAP item-5 PR).

Accounting is *modeled*, not ``sys.getsizeof``: the byte constants in
:mod:`repro.memsight.costs` mirror the paper's 7-bytes-per-cell /
16-bytes-per-node bookkeeping, so the numbers are deterministic across
hosts and Python versions and agree with the paper's figures by
construction.  ``python -m repro mem-bench`` cross-checks the
incremental counters against an exact recount (must match to the byte)
and against ``tracemalloc``/RSS growth (bounded ratio — CPython object
overhead sits on top of the model).
"""

from repro.memsight.costs import (
    BUCKET_SLOT_BYTES,
    COUNT_BYTES,
    DELTA_BYTES,
    INDEX_ENTRY_BYTES,
    OBS_BYTES,
    SPAN_BYTES,
)
from repro.memsight.pressure import PressureConfig, PressureMonitor
from repro.memsight.report import MemoryMeter, MemoryReport
from repro.memsight.rss import peak_rss_bytes, process_rss_bytes

__all__ = [
    "BUCKET_SLOT_BYTES",
    "COUNT_BYTES",
    "DELTA_BYTES",
    "INDEX_ENTRY_BYTES",
    "MemoryMeter",
    "MemoryReport",
    "OBS_BYTES",
    "PressureConfig",
    "PressureMonitor",
    "SPAN_BYTES",
    "peak_rss_bytes",
    "process_rss_bytes",
]
