"""A stdlib HTTP admin endpoint mounted next to an ``OccupancyMapService``.

``AdminServer`` wraps :class:`http.server.ThreadingHTTPServer` (no
dependencies, daemon thread, ephemeral port by default) and serves the
operational routes a scraper/orchestrator expects:

- ``GET /metrics`` — the service registry in Prometheus text exposition
  format (``text/plain; version=0.0.4``); counter totals equal the JSON
  snapshot by construction (same registry, one lock per metric).
- ``GET /healthz`` — liveness: ``200`` with a small JSON identity body
  (status, uptime, pid, worker mode, kernel, shard count) while the
  service accepts work, ``503`` once it is closed.  Restarting the
  process is the only cure for a failing liveness probe, so the
  *decision* stays deliberately dumb — the body just saves the operator
  one ``/snapshot`` round trip.
- ``GET /readyz`` — readiness: ``200`` only while *every* shard's
  resilience :class:`~repro.service.metrics.StateGauge` reads
  ``healthy``; ``503`` with a JSON body naming the ``recovering`` /
  ``dead`` shards otherwise.  A load balancer should stop routing to a
  replica that is rebuilding a shard — its answers are stale.  The body
  also carries per-shard ingest queue depths, the early saturation
  signal (queues pinned at capacity = backpressure imminent).
- ``GET /slo`` — the :class:`~repro.obs.slo.SLOEngine` status document:
  windowed SLIs, burn rates, multi-window alerts, error budgets, and
  the p99 latency waterfall (see ``docs/observability.md``).
- ``GET /snapshot`` — the full JSON operational state: metrics registry
  snapshot, per-shard queue depths, health, and the per-shard voxel-cache
  ``stats_dict()`` (hit ratios, residency, evictions).
- ``GET /tenants`` — the tenant fleet (see ``docs/tenancy.md``): one
  entry per tenant with lifecycle state, quota configuration, served /
  rejected counts, change-log cursors, and attributed memory.  ``200``
  with an empty fleet when no :class:`~repro.tenancy.TenantRegistry` is
  mounted; ``503`` once the admin server is closing (a registry
  mid-eviction must not be walked by a scraper).
- ``GET /memory`` — the hierarchical byte-accounting drill-down (see
  ``docs/memory.md``): process RSS / peak RSS, the accounted
  component tree (map → shard → tenant slot → cache/octree, queues,
  durability, telemetry, tenancy), per-tenant attribution, and the
  pressure verdict.  ``?exact=1`` recounts by walking storage instead
  of reading the O(1) counters; ``?deep=1`` adds the per-depth octree
  breakdown.  Serving this route also refreshes the ``mem.*`` gauges.

Typical use::

    with OccupancyMapService(config) as service:
        with AdminServer(service, port=9464) as admin:
            print("scrape", admin.url + "/metrics")
            ...

or, equivalently, ``service.serve_admin(port=9464)``.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Tuple
from urllib.parse import parse_qs, urlsplit

from repro.memsight.rss import peak_rss_bytes, process_rss_bytes
from repro.obs.exposition import CONTENT_TYPE
from repro.resilience.recovery import ShardHealth

__all__ = ["AdminServer", "liveness", "readiness"]

_LOG = logging.getLogger("repro.obs.admin")


def liveness(service) -> Dict[str, object]:
    """The ``/healthz`` identity body: who is answering, for how long.

    ``status`` is the probe verdict (``ok`` / ``closed``); the rest is
    deployment identity — uptime, pid, worker backend, kernel, shard
    count — so an operator staring at a fleet of replicas can tell
    *which build shape* each probe hit without a second request.
    """
    config = service.config
    return {
        "status": "closed" if service.closed else "ok",
        "uptime_seconds": round(service.uptime_seconds, 3),
        "pid": os.getpid(),
        "workers": config.workers,
        "kernel": config.kernel,
        "shards": config.num_shards,
        "rss_bytes": process_rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
    }


def readiness(service) -> Tuple[bool, Dict[str, str]]:
    """Per-shard readiness from the resilience state gauges.

    Returns ``(ready, shard_states)`` where ``shard_states`` maps the
    ``shard_health.*`` gauge names to their current state.  Ready means
    every shard reads ``healthy`` — a shard mid-recovery serves stale
    answers and a dead shard serves frozen ones, and a scraper can't
    tell the difference from a ``200``.
    """
    _counters, _gauges, _histograms, states = service.metrics.collect()
    shard_states = {
        name: gauge.state
        for name, gauge in sorted(states.items())
        if name.startswith("shard_health.")
    }
    ready = bool(shard_states) and all(
        state == ShardHealth.HEALTHY.value for state in shard_states.values()
    )
    return ready, shard_states


class _AdminHandler(BaseHTTPRequestHandler):
    server_version = "repro-admin"

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        parts = urlsplit(self.path)
        route = parts.path
        admin: "AdminServer" = self.server.admin  # type: ignore[attr-defined]
        try:
            if route == "/metrics":
                try:
                    # Refresh the mem.* gauges so every scrape carries a
                    # current footprint; never fail the scrape over it.
                    admin.service.refresh_memory_metrics()
                except Exception:
                    _LOG.debug("memory refresh failed", exc_info=True)
                body = admin.service.metrics.to_prometheus_text(
                    namespace=admin.namespace
                ).encode()
                self._reply(200, CONTENT_TYPE, body)
            elif route == "/memory":
                params = parse_qs(parts.query)

                def flag(name: str) -> bool:
                    return params.get(name, ["0"])[0].lower() in (
                        "1",
                        "true",
                        "yes",
                    )

                body = json.dumps(
                    admin.service.memory_dict(
                        exact=flag("exact"), deep=flag("deep")
                    ),
                    indent=2,
                ).encode() + b"\n"
                self._reply(200, "application/json", body)
            elif route == "/healthz":
                body = json.dumps(
                    liveness(admin.service), indent=2
                ).encode() + b"\n"
                status = 503 if admin.service.closed else 200
                self._reply(status, "application/json", body)
            elif route == "/readyz":
                ready, shard_states = readiness(admin.service)
                body = json.dumps(
                    {
                        "ready": ready,
                        "shards": shard_states,
                        "queue_depths": admin.service.queue_depths(),
                    },
                    indent=2,
                ).encode() + b"\n"
                self._reply(200 if ready else 503, "application/json", body)
            elif route == "/slo":
                body = json.dumps(
                    admin.service.slo_engine().status_dict(), indent=2
                ).encode() + b"\n"
                self._reply(200, "application/json", body)
            elif route == "/snapshot":
                body = json.dumps(
                    admin.service.stats_dict(), indent=2, default=str
                ).encode() + b"\n"
                self._reply(200, "application/json", body)
            elif route == "/tenants":
                if admin.closed:
                    # A request already in flight when close() lands must
                    # not walk a registry that may be mid-eviction.
                    body = b'{"error": "admin server closing"}\n'
                    self._reply(503, "application/json", body)
                else:
                    registry = getattr(
                        admin.service, "tenant_registry", None
                    )
                    if registry is None:
                        payload: Dict[str, object] = {
                            "enabled": False,
                            "tenants": {},
                        }
                    else:
                        payload = registry.tenants_dict()
                    body = json.dumps(
                        payload, indent=2, default=str
                    ).encode() + b"\n"
                    self._reply(200, "application/json", body)
            else:
                self._reply(
                    404,
                    "text/plain",
                    b"routes: /metrics /healthz /readyz /slo /snapshot"
                    b" /tenants /memory\n",
                )
        except BrokenPipeError:  # client went away mid-reply
            pass
        except Exception as error:  # surface, never kill the server thread
            _LOG.warning("admin handler failed", exc_info=True)
            try:
                self._reply(500, "text/plain", f"{error!r}\n".encode())
            except OSError:
                pass

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        _LOG.debug("%s %s", self.address_string(), format % args)


class AdminServer:
    """Serve ``/metrics`` ``/healthz`` ``/readyz`` ``/slo`` ``/snapshot``
    ``/tenants`` ``/memory``.

    Args:
        service: the :class:`~repro.service.OccupancyMapService` to expose.
        host: bind address (loopback by default — put a real proxy in
            front before exposing it wider).
        port: TCP port; ``0`` picks an ephemeral one (see :attr:`port`).
        namespace: metric-name prefix in the Prometheus text.
        start: start serving immediately (the default).  Pass ``False``
            to bind the socket but defer :meth:`start` — and note that
            :meth:`close` stays safe on a server whose ``serve_forever``
            never ran (``shutdown()`` would otherwise block forever
            waiting for a loop that never started).

    The listener starts in the constructor; requests are handled on
    daemon threads, so an abandoned server never blocks interpreter exit.
    """

    def __init__(
        self,
        service,
        host: str = "127.0.0.1",
        port: int = 0,
        namespace: str = "repro",
        start: bool = True,
    ) -> None:
        self.service = service
        self.namespace = namespace
        self._httpd = ThreadingHTTPServer((host, port), _AdminHandler)
        self._httpd.daemon_threads = True
        self._httpd.admin = self  # type: ignore[attr-defined]
        self._close_lock = threading.Lock()
        self._closed = False
        self._serving = False
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-admin",
            daemon=True,
        )
        if start:
            self.start()

    def start(self) -> None:
        """Enter the serve loop (idempotent; no-op after :meth:`close`)."""
        with self._close_lock:
            if self._closed or self._serving:
                return
            self._serving = True
            self._thread.start()

    @property
    def closed(self) -> bool:
        """True once :meth:`close` has begun (requests get 503s)."""
        return self._closed

    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        """The bound port (resolves ``port=0`` to the ephemeral choice)."""
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        """Stop accepting requests and release the socket.  Idempotent.

        Safe to call twice (the second call returns immediately), safe
        concurrently (one caller tears down, the rest return), safe with
        a request in flight (handlers run on daemon threads and finish
        against their already-accepted connection), and safe when
        ``serve_forever`` never ran (``shutdown()`` is skipped — calling
        it would block forever on the loop's never-set exit event).
        """
        with self._close_lock:
            if self._closed:
                return
            self._closed = True
            serving = self._serving
        if serving:
            # shutdown() waits for serve_forever to exit its poll loop;
            # only valid when that loop is (or will be) running.
            self._httpd.shutdown()
        self._httpd.server_close()
        if serving:
            self._thread.join(timeout=5.0)

    def __enter__(self) -> "AdminServer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"AdminServer({self.url})"
