"""Table 1: the software mapping-system landscape, measured.

The paper's Table 1 positions OctoCache against alternative software
approaches qualitatively.  This benchmark quantifies the two measurable
columns on identical workloads: does the approach address the octree
bottleneck (map generation time), and is it resource-efficient (memory
for the same stored map)?

Systems: vanilla OctoMap, SkiMap-like (skip-list hierarchy; fast-ish but
memory-heavy), dense VoxelGrid (O(1) updates but pays for the whole
volume), and OctoCache (fast *and* octree-frugal).
"""

import pytest

from repro.analysis.report import format_table
from repro.analysis.sweeps import suggest_cache_config
from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.skimap import SkiMapPipeline
from repro.baselines.voxelgrid import VoxelGridPipeline
from repro.core.octocache import OctoCacheMap

from .conftest import BENCH_MAX_BATCHES

RESOLUTION = 0.2
GRID_DEPTH = 8  # shared map addressing for all systems


def test_table1_software_landscape(benchmark, corridor, emit):
    cache_config = suggest_cache_config(corridor, RESOLUTION, GRID_DEPTH)

    def build(cls, **kwargs):
        mapping = cls(
            resolution=RESOLUTION,
            max_range=corridor.sensor.max_range,
            **kwargs,
        )
        for index, cloud in enumerate(corridor.scans()):
            if index >= BENCH_MAX_BATCHES:
                break
            mapping.insert_point_cloud(cloud)
        mapping.finalize()
        return mapping

    def run():
        return {
            "OctoMap": build(OctoMapPipeline, depth=GRID_DEPTH),
            "SkiMap": build(SkiMapPipeline, depth=GRID_DEPTH),
            "VoxelGrid": build(VoxelGridPipeline, grid_depth=GRID_DEPTH),
            "OctoCache": build(
                OctoCacheMap, depth=GRID_DEPTH, cache_config=cache_config
            ),
        }

    systems = benchmark.pedantic(run, rounds=1, iterations=1)

    def memory_of(name, mapping):
        if name == "SkiMap":
            return mapping.memory_bytes()
        if name == "VoxelGrid":
            return mapping.memory_bytes()
        if name == "OctoCache":
            return mapping.octree.memory_bytes() + mapping.cache.config.memory_bytes
        return mapping.octree.memory_bytes()

    rows = []
    for name, mapping in systems.items():
        rows.append(
            [
                name,
                f"{mapping.total_seconds():.2f}",
                f"{mapping.critical_path_seconds():.2f}",
                f"{memory_of(name, mapping) / 1024:.0f}KB",
            ]
        )
    emit(
        "table1_software_landscape",
        format_table(
            ["system", "generation(s)", "critical path(s)", "map memory"],
            rows,
        ),
    )

    octomap = systems["OctoMap"]
    octocache = systems["OctoCache"]
    skimap = systems["SkiMap"]
    grid = systems["VoxelGrid"]

    # All four systems agree on the map contents (spot check).
    for key, value in list(octomap.octree.iter_finest_leaves())[:200]:
        assert skimap.query_key(key) == pytest.approx(value)
        assert grid.query_key(key) == pytest.approx(value, abs=1e-5)
        assert octocache.octree.search(key) == pytest.approx(value)

    # OctoCache addresses the bottleneck: fastest critical path of the
    # octree-backed systems.
    assert octocache.critical_path_seconds() < octomap.critical_path_seconds()
    # Resource efficiency: the dense grid is the memory outlier, SkiMap
    # carries pointer-tower overhead above the octree.
    octree_bytes = octomap.octree.memory_bytes()
    assert memory_of("VoxelGrid", grid) > 10 * octree_bytes
    assert memory_of("SkiMap", skimap) > octree_bytes
