"""Tests for discrete voxel keys and coordinate conversion."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.morton import morton_encode3
from repro.octree.key import (
    child_index,
    coord_to_key,
    coords_to_keys,
    key_to_coord,
    key_to_morton,
    keys_to_coords,
    keys_to_morton,
)

RES = 0.25
DEPTH = 10
HALF_EXTENT = RES * (1 << (DEPTH - 1))  # 128 voxels per side half-width

in_bounds = st.floats(
    min_value=-HALF_EXTENT + RES,
    max_value=HALF_EXTENT - RES,
    allow_nan=False,
    allow_infinity=False,
)


class TestCoordToKey:
    def test_origin_maps_to_centre(self):
        key = coord_to_key((0.0, 0.0, 0.0), RES, DEPTH)
        offset = 1 << (DEPTH - 1)
        assert key == (offset, offset, offset)

    def test_one_voxel_step(self):
        base = coord_to_key((0.0, 0.0, 0.0), RES, DEPTH)
        stepped = coord_to_key((RES, 0.0, 0.0), RES, DEPTH)
        assert stepped == (base[0] + 1, base[1], base[2])

    def test_negative_coordinates(self):
        key = coord_to_key((-RES / 2, -RES / 2, -RES / 2), RES, DEPTH)
        offset = 1 << (DEPTH - 1)
        assert key == (offset - 1, offset - 1, offset - 1)

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            coord_to_key((HALF_EXTENT + 1.0, 0.0, 0.0), RES, DEPTH)
        with pytest.raises(ValueError):
            coord_to_key((0.0, 0.0, -HALF_EXTENT - 1.0), RES, DEPTH)

    @given(in_bounds, in_bounds, in_bounds)
    def test_roundtrip_within_half_voxel(self, x, y, z):
        key = coord_to_key((x, y, z), RES, DEPTH)
        cx, cy, cz = key_to_coord(key, RES, DEPTH)
        assert abs(cx - x) <= RES / 2 + 1e-9
        assert abs(cy - y) <= RES / 2 + 1e-9
        assert abs(cz - z) <= RES / 2 + 1e-9

    @given(in_bounds, in_bounds, in_bounds)
    def test_centre_is_fixed_point(self, x, y, z):
        key = coord_to_key((x, y, z), RES, DEPTH)
        centre = key_to_coord(key, RES, DEPTH)
        assert coord_to_key(centre, RES, DEPTH) == key


class TestVectorised:
    @given(st.lists(st.tuples(in_bounds, in_bounds, in_bounds), min_size=1, max_size=40))
    def test_matches_scalar(self, coords):
        arr = np.array(coords)
        keys = coords_to_keys(arr, RES, DEPTH)
        expected = [coord_to_key(c, RES, DEPTH) for c in coords]
        assert [tuple(k) for k in keys] == expected

    def test_out_of_bounds_raises(self):
        with pytest.raises(ValueError):
            coords_to_keys(np.array([[1e6, 0.0, 0.0]]), RES, DEPTH)

    def test_keys_to_coords_roundtrip(self):
        keys = np.array([[10, 20, 30], [500, 400, 300]])
        coords = keys_to_coords(keys, RES, DEPTH)
        back = coords_to_keys(coords, RES, DEPTH)
        assert np.array_equal(back, keys)

    def test_keys_to_morton_matches_scalar(self):
        keys = np.array([[1, 2, 3], [7, 0, 5]])
        codes = keys_to_morton(keys)
        assert [int(c) for c in codes] == [
            key_to_morton((1, 2, 3)),
            key_to_morton((7, 0, 5)),
        ]


class TestChildIndex:
    def test_matches_morton_groups(self):
        # The child chosen at level l is exactly Morton bit-group l.
        key = (0b1011, 0b0110, 0b1101)
        code = morton_encode3(*key)
        for level in range(4):
            group = (code >> (3 * level)) & 0b111
            assert child_index(key, level) == group

    def test_level_zero_uses_low_bits(self):
        assert child_index((1, 0, 1), 0) == 0b101
        assert child_index((0, 1, 0), 0) == 0b010

    def test_range(self):
        for level in range(DEPTH):
            idx = child_index((123, 456, 789), level)
            assert 0 <= idx <= 7
