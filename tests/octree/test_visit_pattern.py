"""Figure 5 fidelity: the exact node-visit pattern of updates and queries.

The paper's Figure 5 spells out the memory-visit sequence: a query walks
``N0, Nx, Ny, Nv`` root-to-leaf; an update walks the same path down and
then back up, ``N0..Nu, Nu..N0``.  These tests pin the instrumented
traces to that shape — the traces everything in `repro.simcache` replays.
"""

from repro.octree.tree import OccupancyOctree

DEPTH = 4


def traced_tree():
    trace = []
    tree = OccupancyOctree(resolution=0.1, depth=DEPTH, visit_hook=trace.append)
    return tree, trace


class TestUpdatePattern:
    def test_round_trip_palindrome(self):
        tree, trace = traced_tree()
        tree.update_node((3, 5, 7), True)
        # Down: depth+1 nodes; up: the same nodes reversed (leaf repeated).
        down = trace[: DEPTH + 1]
        up = trace[DEPTH + 1 :]
        assert len(down) == DEPTH + 1
        assert up == list(reversed(down))

    def test_update_visit_count_is_2_depth_plus_2(self):
        tree, trace = traced_tree()
        tree.update_node((0, 0, 0), True)
        assert len(trace) == 2 * (DEPTH + 1)

    def test_second_update_same_leaf_revisits_same_nodes(self):
        tree, trace = traced_tree()
        tree.update_node((1, 2, 3), True)
        first = list(trace)
        trace.clear()
        tree.update_node((1, 2, 3), True)
        assert trace == first  # identical path, no new allocations

    def test_sibling_update_shares_ancestors(self):
        tree, trace = traced_tree()
        tree.update_node((0, 0, 0), True)
        down_first = trace[: DEPTH + 1]
        trace.clear()
        tree.update_node((0, 0, 1), True)  # sibling leaf
        down_second = trace[: DEPTH + 1]
        # All ancestors shared; only the leaf differs.
        assert down_second[:-1] == down_first[:-1]
        assert down_second[-1] != down_first[-1]


class TestQueryPattern:
    def test_query_is_one_way(self):
        tree, trace = traced_tree()
        tree.update_node((3, 5, 7), True)
        down = trace[: DEPTH + 1]
        trace.clear()
        tree.search((3, 5, 7))
        assert trace == down  # root-to-leaf only, no return trip

    def test_unknown_query_stops_at_missing_child(self):
        tree, trace = traced_tree()
        tree.update_node((0, 0, 0), True)
        trace.clear()
        result = tree.search((15, 15, 15))
        assert result is None
        assert len(trace) == 1  # the root, then the missing octant

    def test_pruned_query_short_circuits(self):
        tree, trace = traced_tree()
        for _ in range(20):
            for x in range(2):
                for y in range(2):
                    for z in range(2):
                        tree.update_node((x, y, z), True)
        trace.clear()
        tree.search((0, 0, 0))
        # The block pruned up to some ancestor: strictly fewer visits
        # than a full root-to-leaf walk.
        assert 1 <= len(trace) < DEPTH + 1
