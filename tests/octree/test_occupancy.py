"""Tests for log-odds occupancy arithmetic."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.octree.occupancy import OccupancyParams, logodds, probability

lo_values = st.floats(min_value=-10, max_value=10, allow_nan=False)


class TestLogOdds:
    def test_even_odds(self):
        assert logodds(0.5) == pytest.approx(0.0)

    def test_roundtrip(self):
        for p in (0.12, 0.4, 0.5, 0.7, 0.97):
            assert probability(logodds(p)) == pytest.approx(p)

    def test_rejects_degenerate(self):
        for p in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                logodds(p)

    @given(st.floats(min_value=0.01, max_value=0.99))
    def test_monotone(self, p):
        assert logodds(p) < logodds(min(p + 0.005, 0.995))


class TestParams:
    def test_defaults_match_octomap(self):
        params = OccupancyParams()
        assert params.threshold == pytest.approx(0.0)
        assert params.delta_occupied == pytest.approx(math.log(0.7 / 0.3))
        assert params.delta_free == pytest.approx(-math.log(0.4 / 0.6))
        assert params.min_occ == pytest.approx(math.log(0.12 / 0.88))
        assert params.max_occ == pytest.approx(math.log(0.97 / 0.03))

    def test_validation(self):
        with pytest.raises(ValueError):
            OccupancyParams(delta_occupied=-1.0)
        with pytest.raises(ValueError):
            OccupancyParams(delta_free=0.0)
        with pytest.raises(ValueError):
            OccupancyParams(min_occ=1.0, max_occ=0.0)
        with pytest.raises(ValueError):
            OccupancyParams(threshold=100.0)

    def test_update_hit_increments(self):
        params = OccupancyParams()
        assert params.update(0.0, True) == pytest.approx(params.delta_occupied)

    def test_update_miss_decrements(self):
        params = OccupancyParams()
        assert params.update(0.0, False) == pytest.approx(-params.delta_free)

    def test_update_clamps_above(self):
        params = OccupancyParams()
        value = params.max_occ
        assert params.update(value, True) == params.max_occ

    def test_update_clamps_below(self):
        params = OccupancyParams()
        value = params.min_occ
        assert params.update(value, False) == params.min_occ

    @given(st.floats(min_value=-1.99, max_value=3.47, allow_nan=False))
    def test_update_stays_in_clamp_range(self, value):
        # Start values inside the clamp range (the only reachable states).
        params = OccupancyParams()
        for occupied in (True, False):
            new = params.update(value, occupied)
            assert params.min_occ <= new <= params.max_occ

    @given(lo_values, st.booleans())
    def test_repeated_updates_saturate(self, start, occupied):
        params = OccupancyParams()
        value = start
        for _ in range(100):
            value = params.update(value, occupied)
        assert value == (params.max_occ if occupied else params.min_occ)

    def test_is_occupied_threshold(self):
        params = OccupancyParams()
        assert params.is_occupied(0.0)  # at threshold counts occupied
        assert params.is_occupied(1.0)
        assert not params.is_occupied(-0.1)

    @given(lo_values, lo_values)
    def test_accumulate_clamps(self, value, delta):
        params = OccupancyParams()
        result = params.accumulate(value, delta)
        assert params.min_occ <= result <= params.max_occ

    def test_dynamic_environment_recovery(self):
        """Clamping keeps the map revisable: an obstacle that disappears
        can be freed again with boundedly many observations (paper §2.2)."""
        params = OccupancyParams()
        value = params.threshold
        for _ in range(50):
            value = params.update(value, True)
        hits_needed = 0
        while params.is_occupied(value):
            value = params.update(value, False)
            hits_needed += 1
        assert hits_needed <= 10  # bounded because of the clamp
