"""Scan trajectories: sequences of sensor poses through a scene.

The paper's inter-batch overlap (Figures 7–8) comes from *continuous
scanning along a trajectory*: consecutive poses are close, so consecutive
scans see mostly the same volume.  Trajectories here are pose sequences
with controllable step length — the knob that sets the overlap ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Pose", "line_trajectory", "loop_trajectory", "waypoint_trajectory"]


@dataclass(frozen=True)
class Pose:
    """A sensor pose: position and heading."""

    position: Tuple[float, float, float]
    yaw: float
    pitch: float = 0.0


def line_trajectory(
    start: Tuple[float, float, float],
    end: Tuple[float, float, float],
    num_poses: int,
) -> List[Pose]:
    """Poses evenly spaced on a straight segment, heading along it."""
    if num_poses < 1:
        raise ValueError(f"num_poses must be >= 1, got {num_poses}")
    start_arr = np.asarray(start, dtype=np.float64)
    end_arr = np.asarray(end, dtype=np.float64)
    heading = float(np.arctan2(end_arr[1] - start_arr[1], end_arr[0] - start_arr[0]))
    if num_poses == 1:
        return [Pose(tuple(start_arr), heading)]
    poses = []
    for i in range(num_poses):
        alpha = i / (num_poses - 1)
        position = start_arr + alpha * (end_arr - start_arr)
        poses.append(Pose(tuple(position), heading))
    return poses


def loop_trajectory(
    center: Tuple[float, float],
    radius: float,
    height: float,
    num_poses: int,
    face_outward: bool = False,
) -> List[Pose]:
    """Poses on a circle at fixed height, heading tangentially (or outward)."""
    if num_poses < 1:
        raise ValueError(f"num_poses must be >= 1, got {num_poses}")
    if radius <= 0:
        raise ValueError(f"radius must be positive, got {radius}")
    poses = []
    for i in range(num_poses):
        angle = 2.0 * np.pi * i / num_poses
        position = (
            center[0] + radius * np.cos(angle),
            center[1] + radius * np.sin(angle),
            height,
        )
        yaw = angle if face_outward else angle + np.pi / 2
        poses.append(Pose(position, float(yaw)))
    return poses


def waypoint_trajectory(
    waypoints: Sequence[Tuple[float, float, float]], poses_per_leg: int
) -> List[Pose]:
    """Concatenated line trajectories through a list of waypoints."""
    if len(waypoints) < 2:
        raise ValueError("need at least two waypoints")
    poses: List[Pose] = []
    for leg_start, leg_end in zip(waypoints[:-1], waypoints[1:]):
        leg = line_trajectory(leg_start, leg_end, poses_per_leg)
        if poses:
            leg = leg[1:]  # avoid duplicating the shared waypoint pose
        poses.extend(leg)
    return poses
