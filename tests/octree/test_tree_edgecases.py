"""Edge-case tests for the octree: boundaries, tiny depths, bad keys."""

import pytest

from repro.octree.tree import OccupancyOctree


class TestKeyValidation:
    def test_out_of_range_update_raises(self):
        tree = OccupancyOctree(resolution=0.1, depth=4)
        with pytest.raises(ValueError, match="outside the map"):
            tree.update_node((16, 0, 0), True)

    def test_negative_key_raises(self):
        tree = OccupancyOctree(resolution=0.1, depth=4)
        with pytest.raises(ValueError):
            tree.search((-1, 0, 0))

    def test_set_leaf_validates(self):
        tree = OccupancyOctree(resolution=0.1, depth=4)
        with pytest.raises(ValueError):
            tree.set_leaf((0, 99, 0), 1.0)

    def test_boundary_keys_valid(self):
        tree = OccupancyOctree(resolution=0.1, depth=4)
        for key in [(0, 0, 0), (15, 15, 15), (0, 15, 0)]:
            tree.update_node(key, True)
            assert tree.search(key) is not None


class TestTinyDepth:
    def test_depth_one_tree(self):
        tree = OccupancyOctree(resolution=0.5, depth=1)
        for x in range(2):
            for y in range(2):
                for z in range(2):
                    tree.update_node((x, y, z), (x + y + z) % 2 == 0)
        assert tree.search((0, 0, 0)) is not None
        assert tree.search((1, 1, 1)) is not None

    def test_depth_one_prunes_to_root(self):
        tree = OccupancyOctree(resolution=0.5, depth=1)
        for _ in range(20):
            for x in range(2):
                for y in range(2):
                    for z in range(2):
                        tree.update_node((x, y, z), True)
        # All 8 leaves saturated equal: only the root remains.
        assert tree.num_nodes == 1
        assert tree.search((1, 0, 1)) == pytest.approx(tree.params.max_occ)


class TestCornersOfTheMap:
    def test_all_eight_corners(self):
        depth = 5
        side = (1 << depth) - 1
        tree = OccupancyOctree(resolution=0.1, depth=depth)
        corners = [
            (x, y, z)
            for x in (0, side)
            for y in (0, side)
            for z in (0, side)
        ]
        for corner in corners:
            tree.update_node(corner, True)
        for corner in corners:
            assert tree.params.is_occupied(tree.search(corner))
        # Eight disjoint root-to-leaf paths: 1 root + 8 * depth nodes.
        assert tree.num_nodes == 1 + 8 * depth

    def test_metric_boundary_roundtrip(self):
        tree = OccupancyOctree(resolution=0.25, depth=6)
        half = 0.25 * (1 << 5)  # half map extent
        inside = (half - 0.01, -half + 0.01, 0.0)
        key = tree.coord_to_key(inside)
        tree.update_node(key, True)
        assert tree.is_occupied(inside) is True
        with pytest.raises(ValueError):
            tree.coord_to_key((half + 1.0, 0.0, 0.0))
