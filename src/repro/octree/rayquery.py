"""Ray queries over a built map (OctoMap's ``castRay`` equivalent).

Planners probe the map along candidate rays; ``cast_ray`` walks voxels
from an origin along a direction until it meets an occupied voxel, an
unknown voxel (optionally), the range limit, or the map boundary.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.octree.key import VoxelKey
from repro.octree.tree import OccupancyOctree
from repro.sensor.raycast import compute_ray_keys

__all__ = ["RayHit", "cast_ray"]


@dataclass(frozen=True)
class RayHit:
    """Result of a map ray query.

    Attributes:
        hit: an occupied voxel was found.
        key: the terminating voxel (occupied voxel on a hit; the last
            visited voxel otherwise), ``None`` when the ray never left its
            starting voxel.
        endpoint: metric centre of ``key``.
        blocked_by_unknown: the walk stopped at unknown space (only when
            ``ignore_unknown`` is false).
    """

    hit: bool
    key: Optional[VoxelKey]
    endpoint: Optional[Tuple[float, float, float]]
    blocked_by_unknown: bool = False


def cast_ray(
    tree: OccupancyOctree,
    origin: Tuple[float, float, float],
    direction: Tuple[float, float, float],
    max_range: float,
    ignore_unknown: bool = True,
) -> RayHit:
    """Walk the map from ``origin`` along ``direction`` up to ``max_range``.

    Args:
        tree: the occupancy octree to query.
        origin: ray start, in metres.
        direction: ray direction (normalised internally).
        max_range: maximum travel distance, in metres.
        ignore_unknown: treat unknown voxels as free (OctoMap's default);
            when false the walk stops at the first unknown voxel and the
            result's ``blocked_by_unknown`` is set.

    Returns:
        a :class:`RayHit`; ``hit`` is true iff an occupied voxel was met.
    """
    if max_range <= 0:
        raise ValueError(f"max_range must be positive, got {max_range}")
    norm = math.sqrt(sum(c * c for c in direction))
    if norm == 0.0:
        raise ValueError("direction must be non-zero")
    endpoint = tuple(
        origin[axis] + direction[axis] / norm * max_range for axis in range(3)
    )
    keys = compute_ray_keys(origin, endpoint, tree.resolution, tree.depth)
    keys = keys[1:] if keys else []  # skip the origin's own voxel
    last_key: Optional[VoxelKey] = None
    for key in keys:
        value = tree.search(key)
        if value is None:
            if not ignore_unknown:
                return RayHit(
                    hit=False,
                    key=key,
                    endpoint=tree.key_to_coord(key),
                    blocked_by_unknown=True,
                )
        elif tree.params.is_occupied(value):
            return RayHit(hit=True, key=key, endpoint=tree.key_to_coord(key))
        last_key = key
    if last_key is None:
        return RayHit(hit=False, key=None, endpoint=None)
    return RayHit(hit=False, key=last_key, endpoint=tree.key_to_coord(last_key))
