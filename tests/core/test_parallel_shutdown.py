"""Shutdown-path regressions for the parallel pipeline.

The service layer tears shards down on every close, so ``finalize`` /
``close`` must be idempotent and must never hang on the queue sentinel —
including after a worker error left batches stranded in the buffer.
"""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.core.parallel import ParallelOctoCacheMap
from repro.sensor.pointcloud import PointCloud

RES = 0.2
DEPTH = 8


def small_cloud(seed=0, points=40):
    rng = np.random.default_rng(seed)
    pts = np.column_stack(
        [np.full(points, 2.0), rng.uniform(-1, 1, points), rng.uniform(0, 1, points)]
    )
    return PointCloud(pts, origin=(0.0, 0.0, 0.5))


class _Boom(Exception):
    pass


class TestIdempotentShutdown:
    def test_finalize_twice_is_clean(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(small_cloud())
        mapping.finalize()
        nodes = mapping.octree.num_nodes
        mapping.finalize()  # must not block on the stop sentinel
        assert mapping.octree.num_nodes == nodes

    def test_close_alias_and_reuse(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)
        mapping.insert_point_cloud(small_cloud(0))
        mapping.close()
        mapping.close()
        # The pipeline restarts transparently after a close.
        mapping.insert_point_cloud(small_cloud(1))
        mapping.close()
        assert mapping.octree.num_nodes > 0

    def test_finalize_without_any_batches(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)
        mapping.finalize()
        mapping.finalize()

    def test_context_manager_from_base_class(self):
        with ParallelOctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
            mapping.insert_point_cloud(small_cloud())
        assert mapping.cache.resident_voxels == 0
        assert mapping.octree.num_nodes > 0

    def test_serial_pipeline_context_manager(self):
        with OctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
            mapping.insert_point_cloud(small_cloud())
        assert mapping.cache.resident_voxels == 0


class TestErrorShutdown:
    def test_finalize_after_error_does_not_hang(self):
        """Worker dies with batches still queued: the old waiting loop
        would block forever on the pending count."""
        config = CacheConfig(num_buckets=2, bucket_threshold=1)
        mapping = ParallelOctoCacheMap(
            resolution=RES, depth=DEPTH, cache_config=config
        )

        import time

        def explode(evicted):
            time.sleep(0.02)  # let more chunks queue behind the failure
            raise _Boom("octree update failed")

        mapping._apply_evicted = explode
        mapping.insert_point_cloud(small_cloud())
        with pytest.raises(RuntimeError, match="octree updater thread failed"):
            mapping.finalize()
        # And again: the second call must be a clean no-op, not a hang.
        mapping.finalize()

    def test_recovery_after_error_shutdown(self):
        config = CacheConfig(num_buckets=2, bucket_threshold=1)
        mapping = ParallelOctoCacheMap(
            resolution=RES, depth=DEPTH, cache_config=config
        )
        original = type(mapping)._apply_evicted.__get__(mapping)
        calls = {"n": 0}

        def flaky(evicted):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _Boom("transient")
            original(evicted)

        mapping._apply_evicted = flaky
        mapping.insert_point_cloud(small_cloud(0))
        with pytest.raises(RuntimeError):
            mapping.finalize()
        mapping.insert_point_cloud(small_cloud(1))
        mapping.finalize()
        assert mapping.octree.num_nodes > 0

    def test_error_then_continued_use_and_second_finalize(self):
        """Worker error, then continued use, then a second finalize():
        no hang and no leaked ``_pending`` count."""
        config = CacheConfig(num_buckets=2, bucket_threshold=1)
        mapping = ParallelOctoCacheMap(
            resolution=RES, depth=DEPTH, cache_config=config, buffer_capacity=4
        )
        original = type(mapping)._apply_evicted.__get__(mapping)
        calls = {"n": 0}

        def flaky(evicted):
            calls["n"] += 1
            if calls["n"] == 1:
                raise _Boom("first chunk fails")
            original(evicted)

        mapping._apply_evicted = flaky
        mapping.insert_point_cloud(small_cloud(0))
        with pytest.raises(RuntimeError, match="octree updater thread failed"):
            mapping.finalize()
        assert mapping._pending == 0
        # Continued use through the bounded buffer must not hang even
        # though the capacity is far below the eviction chunk count.
        for seed in range(1, 4):
            mapping.insert_point_cloud(small_cloud(seed))
        mapping.finalize()
        assert mapping._pending == 0
        mapping.finalize()  # second finalize: clean no-op
        assert mapping._pending == 0
        assert mapping.octree.num_nodes > 0

    def test_buffer_capacity_configurable_and_bounded(self):
        with pytest.raises(ValueError):
            ParallelOctoCacheMap(resolution=RES, depth=DEPTH, buffer_capacity=0)
        config = CacheConfig(num_buckets=2, bucket_threshold=1)
        mapping = ParallelOctoCacheMap(
            resolution=RES, depth=DEPTH, cache_config=config, buffer_capacity=1
        )
        assert mapping._buffer.maxsize == 1
        # A capacity-1 buffer forces thread 1 to wait for the updater on
        # every chunk; the run must still complete and agree with serial.
        for seed in range(3):
            mapping.insert_point_cloud(small_cloud(seed))
        mapping.finalize()
        serial = OctoCacheMap(resolution=RES, depth=DEPTH, cache_config=config)
        for seed in range(3):
            serial.insert_point_cloud(small_cloud(seed))
        serial.finalize()
        from repro.octree.merge import map_agreement

        assert map_agreement(serial.octree, mapping.octree).decision_agreement == 1.0

    def test_queries_usable_after_error_shutdown(self):
        mapping = ParallelOctoCacheMap(resolution=RES, depth=DEPTH)

        def explode(evicted):
            raise _Boom("boom")

        mapping._apply_evicted = explode
        mapping.insert_point_cloud(small_cloud())
        with pytest.raises(RuntimeError):
            mapping.finalize()
        # Query path must not deadlock on stale pending state.
        value = mapping.query((0.0, 0.0, 0.5))
        assert value is None or isinstance(value, float)
