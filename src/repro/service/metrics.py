"""Service observability primitives: counters, gauges, histograms.

Thread-safe, dependency-free metric types plus a registry that renders a
text report (the ``serve-bench`` output) or a JSON-able dict.  Histograms
keep a bounded sample reservoir: past the cap every other sample is
dropped (oldest first) so percentiles stay representative of the whole
run without unbounded memory — total counts and sums remain exact.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional

from repro.analysis.report import format_table

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "StateGauge"]


class Counter:
    """A monotonically increasing count (events, rejections, hits)."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only increase, got {amount}")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        with self._lock:
            return self._value


class Gauge:
    """A point-in-time level (queue depth, resident voxels).

    Tracks the high-water mark alongside the current value — queue-depth
    spikes are exactly what backpressure tuning needs to see.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._value = 0.0
        self._max = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value
            if value > self._max:
                self._max = value

    def add(self, delta: float) -> None:
        with self._lock:
            self._value += delta
            if self._value > self._max:
                self._max = self._value

    @property
    def value(self) -> float:
        with self._lock:
            return self._value

    @property
    def max(self) -> float:
        with self._lock:
            return self._max


class StateGauge:
    """A named discrete state with a transition count.

    Models lifecycle metrics (shard health: ``healthy`` → ``recovering``
    → ``healthy``/``dead``): the current label answers "what is it now",
    the transition count answers "how often has it flapped" — the
    quantity an operator alerts on.
    """

    def __init__(self, initial: str = "unknown") -> None:
        self._lock = threading.Lock()
        self._state = initial
        self._transitions = 0

    def set(self, state: str) -> None:
        with self._lock:
            if state != self._state:
                self._state = state
                self._transitions += 1

    @property
    def state(self) -> str:
        with self._lock:
            return self._state

    @property
    def transitions(self) -> int:
        with self._lock:
            return self._transitions


class Histogram:
    """Latency distribution with exact count/sum and sampled percentiles.

    Args:
        max_samples: reservoir cap; when reached, every other retained
            sample is discarded and the sampling stride doubles, so the
            reservoir thins uniformly over the run.
    """

    def __init__(self, max_samples: int = 8192) -> None:
        if max_samples < 2:
            raise ValueError(f"max_samples must be >= 2, got {max_samples}")
        self._lock = threading.Lock()
        self._samples: List[float] = []
        self._max_samples = max_samples
        self._stride = 1
        self._since_kept = 0
        self._count = 0
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    def record(self, value: float) -> None:
        with self._lock:
            self._count += 1
            self._sum += value
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value
            self._since_kept += 1
            if self._since_kept >= self._stride:
                self._since_kept = 0
                self._samples.append(value)
                if len(self._samples) >= self._max_samples:
                    self._samples = self._samples[::2]
                    self._stride *= 2

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    @property
    def min(self) -> float:
        with self._lock:
            return self._min if self._min is not None else 0.0

    @property
    def max(self) -> float:
        with self._lock:
            return self._max if self._max is not None else 0.0

    def percentile(self, fraction: float) -> float:
        """Sampled percentile, ``fraction`` in [0, 1]; 0.0 when empty.

        Uses linear interpolation between the two nearest retained
        samples (the default quantile definition of numpy/statistics):
        with a small reservoir the nearest-rank estimate is biased a
        whole sample's worth — e.g. the median of ``[1, 2, 3, 4]`` must
        be 2.5, not 3 — and small reservoirs are exactly what short
        benchmark runs produce.
        """
        if not 0.0 <= fraction <= 1.0:
            raise ValueError(f"fraction must be in [0, 1], got {fraction}")
        with self._lock:
            samples = sorted(self._samples)
        if not samples:
            return 0.0
        position = fraction * (len(samples) - 1)
        lower = int(position)
        upper = min(lower + 1, len(samples) - 1)
        weight = position - lower
        return samples[lower] * (1.0 - weight) + samples[upper] * weight

    @property
    def p50(self) -> float:
        """Median of the retained samples (interpolated)."""
        return self.percentile(0.50)

    @property
    def p95(self) -> float:
        """95th percentile of the retained samples (interpolated)."""
        return self.percentile(0.95)

    @property
    def p99(self) -> float:
        """99th percentile of the retained samples (interpolated)."""
        return self.percentile(0.99)

    def summary(self) -> Dict[str, float]:
        """count/mean/p50/p90/p95/p99/max in one dict (JSON-able)."""
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p90": self.percentile(0.90),
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


class MetricsRegistry:
    """Named metrics with create-on-first-use semantics.

    ``counter("ingest.scans")`` returns the same object on every call, so
    producers and reporters never need to coordinate registration order.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._states: Dict[str, StateGauge] = {}

    def counter(self, name: str) -> Counter:
        with self._lock:
            return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            return self._gauges.setdefault(name, Gauge())

    def histogram(self, name: str, max_samples: int = 8192) -> Histogram:
        with self._lock:
            return self._histograms.setdefault(name, Histogram(max_samples))

    def state(self, name: str, initial: str = "unknown") -> StateGauge:
        with self._lock:
            return self._states.setdefault(name, StateGauge(initial))

    # ------------------------------------------------------------------
    # Reporting.
    # ------------------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-able snapshot of every metric."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
            states = dict(self._states)
        result: Dict[str, object] = {
            "counters": {name: c.value for name, c in sorted(counters.items())},
            "gauges": {
                name: {"value": g.value, "max": g.max}
                for name, g in sorted(gauges.items())
            },
            "histograms": {
                name: h.summary() for name, h in sorted(histograms.items())
            },
        }
        if states:
            result["states"] = {
                name: {"state": s.state, "transitions": s.transitions}
                for name, s in sorted(states.items())
            }
        return result

    def render(self, latency_scale: float = 1e3, latency_unit: str = "ms") -> str:
        """Text report: counters, gauges, then histogram percentiles.

        Histogram values are durations in seconds and are rendered scaled
        by ``latency_scale`` (milliseconds by default).
        """
        snapshot = self.to_dict()
        blocks: List[str] = []
        counters = snapshot["counters"]
        if counters:
            rows = [[name, value] for name, value in counters.items()]
            blocks.append(format_table(["counter", "value"], rows))
        gauges = snapshot["gauges"]
        if gauges:
            rows = [
                [name, f"{entry['value']:g}", f"{entry['max']:g}"]
                for name, entry in gauges.items()
            ]
            blocks.append(format_table(["gauge", "value", "max"], rows))
        states = snapshot.get("states")
        if states:
            rows = [
                [name, entry["state"], entry["transitions"]]
                for name, entry in states.items()
            ]
            blocks.append(format_table(["state", "current", "transitions"], rows))
        histograms = snapshot["histograms"]
        if histograms:
            rows = []
            for name, summary in histograms.items():
                rows.append(
                    [
                        name,
                        int(summary["count"]),
                        f"{summary['mean'] * latency_scale:.3f}",
                        f"{summary['p50'] * latency_scale:.3f}",
                        f"{summary['p90'] * latency_scale:.3f}",
                        f"{summary['p99'] * latency_scale:.3f}",
                        f"{summary['max'] * latency_scale:.3f}",
                    ]
                )
            blocks.append(
                format_table(
                    [
                        "histogram",
                        "count",
                        f"mean ({latency_unit})",
                        "p50",
                        "p90",
                        "p99",
                        "max",
                    ],
                    rows,
                )
            )
        return "\n\n".join(blocks) if blocks else "(no metrics recorded)"
