"""Tests for cache occupancy diagnostics (the §6.2.4 measurement)."""

from repro.core.cache import VoxelCache
from repro.core.config import CacheConfig


def make_cache(buckets=16, tau=4):
    return VoxelCache(CacheConfig(num_buckets=buckets, bucket_threshold=tau))


class TestCollisionHistogram:
    def test_empty_cache(self):
        cache = make_cache()
        histogram = cache.collision_histogram()
        assert histogram == {0: 16}

    def test_counts_sum_to_buckets(self):
        cache = make_cache(buckets=8)
        for i in range(20):
            cache.insert((i, 0, 0), True)
        histogram = cache.collision_histogram()
        assert sum(histogram.values()) == 8
        assert sum(size * count for size, count in histogram.items()) == 20

    def test_quantiles_empty(self):
        assert make_cache().occupancy_quantiles() == (0.0, 0.0, 0.0)

    def test_quantiles_ordered(self):
        cache = make_cache(buckets=8)
        for i in range(40):
            cache.insert((i, i % 3, 0), True)
        median, p90, largest = cache.occupancy_quantiles()
        assert 0 < median <= p90 <= largest

    def test_quantiles_nearest_rank_exact(self):
        """Nearest-rank quantiles for 1-, 2-, 10-, and 11-element lists.

        Regression for the p90 off-by-one: ``(10 * 9) // 10`` indexed the
        maximum (rank 10) instead of the nearest-rank p90 (rank 9), and
        the even-length median picked the upper middle.
        """

        def quantiles_of(sizes):
            cache = make_cache(buckets=16)
            for index, size in enumerate(sizes):
                cache._buckets[index] = [((index, 0, 0), 0.0)] * size
            return cache.occupancy_quantiles()

        # n=1: every quantile is the single value.
        assert quantiles_of([3]) == (3.0, 3.0, 3.0)
        # n=2: median rank ceil(0.5*2)=1 -> lower middle; p90 rank 2.
        assert quantiles_of([1, 5]) == (1.0, 5.0, 5.0)
        # n=10: median rank 5 -> 5; p90 rank 9 -> 9 (not the max, 10).
        assert quantiles_of(list(range(1, 11))) == (5.0, 9.0, 10.0)
        # n=11: median rank 6 -> 6; p90 rank ceil(9.9)=10 -> 10.
        assert quantiles_of(list(range(1, 12))) == (6.0, 10.0, 11.0)

    def test_paper_claim_most_buckets_small(self):
        """§6.2.4: with w near the non-duplicate count, most buckets hold
        <=4 voxels thanks to the Morton spreading."""
        import numpy as np

        rng = np.random.default_rng(0)
        n = 2000
        keys = set()
        while len(keys) < n:
            keys.add(
                (int(rng.integers(0, 64)), int(rng.integers(0, 64)), int(rng.integers(0, 64)))
            )
        cache = VoxelCache(CacheConfig(num_buckets=2048, bucket_threshold=4))
        for key in keys:
            cache.insert(key, True)
        histogram = cache.collision_histogram()
        small = sum(count for size, count in histogram.items() if size <= 4)
        assert small / sum(histogram.values()) > 0.9
