"""``PipelineProfile``: spans rolled up into the paper-style stage table.

The paper's evaluation decomposes insertion time into stages (Fig. 6/22,
Table 3: ray trace vs. cache insert vs. eviction vs. octree update) and
pairs it with the cache hit-rate curves (Fig. 23).  This module produces
that decomposition from a recorded span stream instead of ad-hoc timers:

- every span is attributed to a ``(category, name)`` stage;
- a span's **self time** is its duration minus the durations of its
  direct children, so nested instrumentation never double-counts;
- **total traced wall time** is the sum of root-span durations (spans
  with no recorded parent), which by construction equals the sum of all
  stage self times — the stage table therefore accounts for 100% of
  traced wall time up to float rounding;
- counter aggregates (``cache.hits`` / ``cache.misses`` / …) ride along
  so the hit-rate summary comes from the same event stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.analysis.report import format_table
from repro.telemetry.sinks import RingBufferSink
from repro.telemetry.tracer import Span

__all__ = ["PipelineProfile", "StageProfile"]


@dataclass
class StageProfile:
    """Aggregated timing of one ``(category, name)`` stage."""

    category: str
    name: str
    count: int = 0
    total_seconds: float = 0.0
    self_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


class PipelineProfile:
    """Stage decomposition plus counter summary of one traced run."""

    def __init__(
        self,
        stages: Dict[Tuple[str, str], StageProfile],
        wall_seconds: float,
        counts: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> None:
        self.stages = stages
        self.wall_seconds = wall_seconds
        self.counts = dict(counts or {})

    # ------------------------------------------------------------------
    # Construction.
    # ------------------------------------------------------------------

    @classmethod
    def from_spans(
        cls,
        spans: Iterable[Span],
        counts: Optional[Dict[Tuple[str, str], float]] = None,
    ) -> "PipelineProfile":
        """Aggregate a span stream into per-stage totals and self times.

        A span whose parent was not captured (ring-buffer eviction, or a
        retroactive span) is treated as a root; its duration then counts
        toward wall time on its own.
        """
        spans = list(spans)
        seen = {span.span_id for span in spans}
        child_seconds: Dict[int, float] = {}
        for span in spans:
            parent = span.parent_id
            if parent is not None and parent in seen:
                child_seconds[parent] = (
                    child_seconds.get(parent, 0.0) + span.duration
                )
        stages: Dict[Tuple[str, str], StageProfile] = {}
        wall = 0.0
        for span in spans:
            key = (span.category, span.name)
            stage = stages.get(key)
            if stage is None:
                stage = stages[key] = StageProfile(*key)
            stage.count += 1
            stage.total_seconds += span.duration
            # Self time floors at zero: clock jitter can make recorded
            # children marginally outlast their parent.
            stage.self_seconds += max(
                0.0, span.duration - child_seconds.get(span.span_id, 0.0)
            )
            if span.parent_id is None or span.parent_id not in seen:
                wall += span.duration
        return cls(stages, wall, counts)

    @classmethod
    def from_ring(cls, ring: RingBufferSink) -> "PipelineProfile":
        """Build from a ring-buffer sink (spans plus counter aggregates)."""
        return cls.from_spans(ring.spans, ring.counts)

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    @property
    def categories(self) -> List[str]:
        """Distinct span categories present, sorted."""
        return sorted({category for category, _name in self.stages})

    def total_seconds(self, category: Optional[str] = None) -> float:
        """Summed *self* time, optionally restricted to one category."""
        return sum(
            stage.self_seconds
            for (cat, _name), stage in self.stages.items()
            if category is None or cat == category
        )

    def coverage(self) -> float:
        """Fraction of traced wall time the stage table accounts for.

        1.0 up to float rounding by the self-time construction; materially
        lower values indicate dropped spans (undersized ring buffer).
        """
        if self.wall_seconds == 0.0:
            return 1.0
        return self.total_seconds() / self.wall_seconds

    def count(self, category: str, name: str) -> float:
        """A counter aggregate (0 when the counter never fired)."""
        return self.counts.get((category, name), 0)

    def cache_summary(self) -> Dict[str, float]:
        """Hit/miss/eviction totals and hit ratio from cache counters."""
        hits = self.count("cache", "cache.hits")
        misses = self.count("cache", "cache.misses")
        lookups = hits + misses
        return {
            "hits": hits,
            "misses": misses,
            "evictions": self.count("cache", "cache.evictions"),
            "hit_ratio": hits / lookups if lookups else 0.0,
        }

    # ------------------------------------------------------------------
    # Rendering.
    # ------------------------------------------------------------------

    def _ordered(self) -> List[StageProfile]:
        return sorted(
            self.stages.values(),
            key=lambda stage: stage.self_seconds,
            reverse=True,
        )

    def table(self) -> str:
        """The stage-decomposition table (share = self time / wall)."""
        wall = self.wall_seconds
        rows = []
        for stage in self._ordered():
            share = stage.self_seconds / wall * 100 if wall else 0.0
            rows.append(
                [
                    stage.category,
                    stage.name,
                    stage.count,
                    f"{stage.total_seconds:.4f}",
                    f"{stage.self_seconds:.4f}",
                    f"{share:.1f}%",
                    f"{stage.mean_seconds * 1e3:.3f}",
                ]
            )
        rows.append(
            ["total", "(wall)", "", f"{wall:.4f}", f"{self.total_seconds():.4f}",
             f"{self.coverage() * 100:.1f}%", ""]
        )
        return format_table(
            ["category", "stage", "count", "total (s)", "self (s)", "share",
             "mean (ms)"],
            rows,
        )

    def counts_table(self) -> str:
        """Counter aggregates as a table (empty string when none)."""
        if not self.counts:
            return ""
        rows = [
            [category, name, f"{value:g}"]
            for (category, name), value in sorted(self.counts.items())
        ]
        return format_table(["category", "counter", "total"], rows)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able profile (the ``--trace-out`` payload)."""
        return {
            "wall_seconds": self.wall_seconds,
            "coverage": self.coverage(),
            "stages": [
                {
                    "category": stage.category,
                    "name": stage.name,
                    "count": stage.count,
                    "total_seconds": stage.total_seconds,
                    "self_seconds": stage.self_seconds,
                    "mean_seconds": stage.mean_seconds,
                }
                for stage in self._ordered()
            ],
            "counters": [
                {"category": category, "name": name, "total": value}
                for (category, name), value in sorted(self.counts.items())
            ],
            "cache": self.cache_summary(),
        }
