"""Tests for the four navigation environments."""

import pytest

from repro.uav.environments import ENVIRONMENT_NAMES, make_environment


class TestEnvironments:
    @pytest.mark.parametrize("name", ENVIRONMENT_NAMES)
    def test_construct(self, name):
        env = make_environment(name)
        assert env.name == name
        assert env.sensing_range > 0
        assert env.resolution > 0
        assert env.rt_resolution < env.resolution

    def test_unknown_environment(self):
        with pytest.raises(ValueError):
            make_environment("mars")

    @pytest.mark.parametrize("name", ENVIRONMENT_NAMES)
    def test_start_and_goal_in_free_space(self, name):
        env = make_environment(name)
        assert not env.scene.is_inside_obstacle(env.start)
        assert not env.scene.is_inside_obstacle(env.goal)

    def test_paper_baseline_parameters(self):
        """§5.1's per-environment <sensing range, resolution> baselines."""
        expected = {
            "openland": (8.0, 1.0),
            "farm": (4.5, 0.3),
            "room": (3.0, 0.15),
            "factory": (6.0, 0.5),
        }
        for name, (srange, res) in expected.items():
            env = make_environment(name)
            assert env.sensing_range == srange
            assert env.resolution == res

    def test_goal_distances_match_paper(self):
        """§5.1: goals 100/50/12/70 m away."""
        expected = {"openland": 100.0, "farm": 50.0, "room": 12.0, "factory": 70.0}
        for name, distance in expected.items():
            env = make_environment(name)
            assert env.goal_distance == pytest.approx(distance, rel=0.01)

    def test_room_is_densest(self):
        """Difficulty ranking Room > Factory > Farm > Openland shows up as
        obstacle density near the direct path."""
        def boxes_per_metre(env):
            return len(env.scene.boxes) / env.goal_distance

        room = boxes_per_metre(make_environment("room"))
        openland = boxes_per_metre(make_environment("openland"))
        assert room > openland
