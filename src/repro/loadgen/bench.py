"""``load-bench``: an open-loop ramp that finds the saturation knee.

Closed-loop load tests (``serve-bench``'s clients submit, wait, repeat)
measure *sustainable* throughput but hide saturation: when the service
slows down, a closed-loop client slows down with it, and the measured
latency stays flat while real capacity is long gone (coordinated
omission).  This bench is **open-loop**: each synthetic client submits
pre-traced scans on a fixed wall-clock schedule regardless of how the
previous submission fared, under ``reject`` backpressure — so offered
load is a controlled input, and overload shows up exactly the way it
does in production: queue-wait latency climbs, then slots run out and
submissions bounce.

The ramp holds each client count for a fixed step, drains the queues,
and evaluates the stock SLOs (:func:`repro.obs.slo.default_objectives`)
over that step's reset-safe histogram/counter window.  The first step
where any objective burns (burn rate ≥ 1) is the **knee**; the fastest
clean step defines ``capacity_scans_per_s`` and ``ingest_p99_ms`` — the
two numbers ``perf-check`` gates.  Every step goes into the capacity
curve (clients × scans/s × p99 × staleness) appended to the
``BENCH_<host>.json`` series.

Ray tracing is done **once, up front** (clients replay traced
observation batches): the generator must stay far cheaper than the
service under test, or the bench measures its own tracing throughput.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import format_table
from repro.datasets.workload import load_bench_workload
from repro.obs.slo import SLObjective, default_objectives, sli_from_window
from repro.sensor.scaninsert import trace_scan
from repro.service.server import OccupancyMapService, ServiceConfig

__all__ = ["LoadBenchReport", "LoadStep", "run_load_bench"]

#: Default ramp: doubling client counts until something burns.
_DEFAULT_STEPS = (1, 2, 4, 8, 16, 32)
_QUICK_STEPS = (1, 2, 4, 8, 16)

_E2E = "ingest.e2e_seconds"
_FRESHNESS = "ingest.freshness_seconds"
_COUNTERS = (
    "ingest.requests",
    "ingest.rejected_batches",
    "ingest.deadline_exceeded",
)


@dataclass(frozen=True)
class LoadStep:
    """One rung of the ramp: offered load in, SLI verdicts out.

    Attributes:
        clients: concurrent open-loop clients this step.
        offered_scans_per_s: the schedule (clients × per-client rate).
        achieved_scans_per_s: fully accepted scans per wall-clock second
            (submission through queue drain).
        submitted / accepted / rejected: client-side request tallies; a
            request with any rejected slice counts as rejected.
        availability: ``1 - bad/total`` over the step window.
        p99_ms / staleness_p99_ms: windowed ``ingest.e2e_seconds`` /
            ``ingest.freshness_seconds`` 99th percentiles.
        burning: objective names whose burn rate reached 1 this step.
        elapsed_seconds: step wall time including the queue drain.
    """

    clients: int
    offered_scans_per_s: float
    achieved_scans_per_s: float
    submitted: int
    accepted: int
    rejected: int
    availability: float
    p99_ms: float
    staleness_p99_ms: float
    burning: Tuple[str, ...]
    elapsed_seconds: float
    #: Fleet mode only (``tenants > 0``): max/min per-tenant served
    #: observation throughput over the step — 1.0 is perfectly fair,
    #: ``inf`` means some offered-to tenant was fully starved.
    tenant_fairness: Optional[float] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "offered_scans_per_s": self.offered_scans_per_s,
            "achieved_scans_per_s": self.achieved_scans_per_s,
            "submitted": self.submitted,
            "accepted": self.accepted,
            "rejected": self.rejected,
            "availability": self.availability,
            "p99_ms": self.p99_ms,
            "staleness_p99_ms": self.staleness_p99_ms,
            "burning": list(self.burning),
            "elapsed_seconds": self.elapsed_seconds,
            "tenant_fairness": self.tenant_fairness,
        }


@dataclass
class LoadBenchReport:
    """The full ramp: capacity curve, knee, and the two gated numbers."""

    dataset: str
    shards: int
    workers: str
    kernel: str
    rate_per_client: float
    steps: List[LoadStep] = field(default_factory=list)
    knee_clients: Optional[int] = None
    capacity_scans_per_s: float = 0.0
    ingest_p99_ms: float = 0.0
    elapsed_seconds: float = 0.0
    quick: bool = False
    num_procs: Optional[int] = None
    #: Fleet mode: tenant count (0 = classic single-map bench) and the
    #: fairness ratio at the step that defined capacity (pre-knee).
    tenants: int = 0
    tenant_fairness_ratio: Optional[float] = None

    @property
    def saturated(self) -> bool:
        """Whether the ramp actually found a burning step."""
        return self.knee_clients is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "dataset": self.dataset,
            "shards": self.shards,
            "workers": self.workers,
            "kernel": self.kernel,
            "rate_per_client": self.rate_per_client,
            "quick": self.quick,
            "knee_clients": self.knee_clients,
            "saturated": self.saturated,
            "capacity_scans_per_s": self.capacity_scans_per_s,
            "ingest_p99_ms": self.ingest_p99_ms,
            "elapsed_seconds": self.elapsed_seconds,
            "tenants": self.tenants,
            "tenant_fairness_ratio": self.tenant_fairness_ratio,
            "capacity_curve": [step.to_dict() for step in self.steps],
        }

    def to_bench_entry(self) -> Dict[str, object]:
        """A ``BENCH_<host>.json`` entry (the PerfRun shape + the curve).

        Carries only the two load metrics, so gate it with
        ``perf-check --metrics capacity_scans_per_s,ingest_p99_ms`` —
        a full-baseline check against this entry would flag the perf
        suite's other metrics as missing.
        """
        from repro.obs.perf import environment_fingerprint

        env = environment_fingerprint(
            workers=self.workers, num_procs=self.num_procs
        )
        env["kernel"] = self.kernel
        metrics: Dict[str, object] = {
            "capacity_scans_per_s": {
                "value": self.capacity_scans_per_s,
                "unit": "scans/s",
                "direction": "higher",
                "samples": [self.capacity_scans_per_s],
            },
            "ingest_p99_ms": {
                "value": self.ingest_p99_ms,
                "unit": "ms",
                "direction": "lower",
                "samples": [self.ingest_p99_ms],
            },
        }
        if self.tenants and self.tenant_fairness_ratio is not None:
            # max/min per-tenant served throughput at the capacity step;
            # gate with perf-check --metrics tenant_fairness_ratio.
            metrics["tenant_fairness_ratio"] = {
                "value": self.tenant_fairness_ratio,
                "unit": "ratio",
                "direction": "lower",
                "samples": [self.tenant_fairness_ratio],
            }
        entry = {
            "timestamp": time.time(),
            "kind": "load-bench",
            "quick": self.quick,
            "repeats": 1,
            "elapsed_seconds": self.elapsed_seconds,
            "env": env,
            "metrics": metrics,
            "capacity_curve": [step.to_dict() for step in self.steps],
        }
        if self.tenants:
            entry["tenants"] = self.tenants
        return entry

    def table(self) -> str:
        fleet = self.tenants > 0
        rows = []
        for step in self.steps:
            row = [
                step.clients,
                f"{step.offered_scans_per_s:.0f}",
                f"{step.achieved_scans_per_s:.1f}",
                f"{step.availability:.4f}",
                f"{step.p99_ms:.1f}",
                f"{step.staleness_p99_ms:.1f}",
                ",".join(step.burning) or "-",
            ]
            if fleet:
                row.append(
                    "-"
                    if step.tenant_fairness is None
                    else f"{step.tenant_fairness:.2f}"
                )
            rows.append(row)
        headers = [
            "clients",
            "offered/s",
            "achieved/s",
            "avail",
            "p99 ms",
            "stale p99 ms",
            "burning",
        ]
        if fleet:
            headers.append("fairness")
        return format_table(headers, rows)


class _ClientStats:
    __slots__ = ("submitted", "accepted", "rejected")

    def __init__(self) -> None:
        self.submitted = 0
        self.accepted = 0
        self.rejected = 0


def _client_loop(
    submit,
    batches: Sequence[Sequence],
    offset: int,
    rate: float,
    stop: threading.Event,
    stats: _ClientStats,
    errors: List[BaseException],
) -> None:
    """One open-loop client: submit on schedule until told to stop.

    The schedule is absolute (``start + k / rate``): a slow submission
    does not push later ones back, it eats into their slack — the
    defining property of an open-loop generator.  ``submit`` takes one
    observation batch and returns a receipt with a ``rejected`` count
    (the service's or a tenant registry's).
    """
    interval = 1.0 / rate
    start = time.perf_counter()
    k = 0
    try:
        while not stop.is_set():
            target = start + k * interval
            delay = target - time.perf_counter()
            if delay > 0 and stop.wait(timeout=delay):
                return
            observations = batches[(offset + k) % len(batches)]
            receipt = submit(observations)
            stats.submitted += 1
            if receipt.rejected:
                stats.rejected += 1
            else:
                stats.accepted += 1
            k += 1
    except BaseException as error:  # surfaced by the driver, not lost
        errors.append(error)


def _tenant_submit(registry, name: str):
    """A client submit function bound to one tenant."""

    def submit(observations):
        return registry.submit_observations(name, observations)

    return submit


def _fairness_ratio(
    registry,
    served_before: Dict[str, int],
    offered_to: "set",
) -> float:
    """Max/min per-tenant served observations over one step.

    Computed only over tenants the step's clients actually offered load
    to (a ramp rung with fewer clients than tenants leaves some tenants
    legitimately idle).  1.0 is perfectly fair; ``inf`` means a tenant
    that was offered load got nothing served — starvation.
    """
    served = [
        registry.get(name).served_observations - served_before[name]
        for name in offered_to
    ]
    if not served:
        return 1.0
    low, high = min(served), max(served)
    if high <= 0:
        return 1.0
    if low <= 0:
        return float("inf")
    return high / low


def _state(service: OccupancyMapService) -> Dict[str, object]:
    registry = service.metrics
    return {
        "hist": {
            name: registry.histogram(name).state_snapshot()
            for name in (_E2E, _FRESHNESS)
        },
        "counters": {
            name: registry.counter(name).value for name in _COUNTERS
        },
    }


def _evaluate_step(
    before: Dict[str, object],
    after: Dict[str, object],
    objectives: Sequence[SLObjective],
) -> Tuple[float, float, float, Tuple[str, ...]]:
    """(availability, p99_ms, staleness_p99_ms, burning) for one step."""
    windows = {
        name: after["hist"][name].since(before["hist"][name])  # type: ignore[index]
        for name in (_E2E, _FRESHNESS)
    }
    deltas = {
        name: after["counters"][name] - before["counters"][name]  # type: ignore[index]
        for name in _COUNTERS
    }
    total = deltas["ingest.requests"]
    bad = (
        deltas["ingest.rejected_batches"]
        + deltas["ingest.deadline_exceeded"]
    )
    availability = max(0.0, 1.0 - bad / total) if total > 0 else 1.0
    burning: List[str] = []
    for objective in objectives:
        if objective.kind == "availability":
            sli = sli_from_window(objective, total=total, bad=bad)
        elif objective.kind == "latency":
            sli = sli_from_window(objective, window=windows[_E2E])
        else:
            sli = sli_from_window(objective, window=windows[_FRESHNESS])
        if (1.0 - sli) / (1.0 - objective.target) >= 1.0:
            burning.append(objective.name)
    return (
        availability,
        windows[_E2E].percentile(0.99) * 1e3,
        windows[_FRESHNESS].percentile(0.99) * 1e3,
        tuple(burning),
    )


def run_load_bench(
    dataset_name: str = "fr079_corridor",
    shards: int = 2,
    resolution: float = 0.3,
    depth: int = 10,
    max_batches: Optional[int] = 6,
    ray_scale: float = 0.3,
    queue_capacity: int = 4,
    coalesce: int = 4,
    workers: str = "thread",
    num_procs: Optional[int] = None,
    kernel: str = "scalar",
    client_steps: Optional[Sequence[int]] = None,
    rate_per_client: float = 40.0,
    step_seconds: float = 2.0,
    objectives: Optional[Sequence[SLObjective]] = None,
    quick: bool = False,
    stop_after_knee: int = 1,
    admin_port: Optional[int] = None,
    admin_hold: float = 0.0,
    tenants: int = 0,
) -> LoadBenchReport:
    """Ramp open-loop clients until an SLO burns; return the curve.

    Args:
        client_steps: ascending client counts to hold, one step each
            (default doubling 1→32; quick 1→16).
        rate_per_client: each client's offered scans/s (open-loop
            schedule), so offered load = ``clients × rate``.
        step_seconds: how long each rung is held before the queues are
            drained and the window evaluated (quick runs shrink this).
        objectives: SLOs deciding "burning"
            (:func:`~repro.obs.slo.default_objectives` when omitted).
        quick: CI smoke shape — shorter steps, smaller ramp.
        stop_after_knee: keep climbing this many steps past the first
            burning one (to show the curve bending), then stop — the
            far side of saturation is all rejections and tells us
            nothing new.
        admin_port: when set, mount the admin endpoint (``/slo`` and
            friends) for the duration of the run; ``admin_hold`` keeps
            it (and the service) up that many seconds after the ramp so
            an external prober can scrape a *loaded* service.
        tenants: fleet mode — host this many tenants on the service
            (one :class:`~repro.tenancy.TenantRegistry`), round-robin
            the clients over them, and record per-step **fairness**:
            max/min per-tenant served observation throughput, computed
            over the tenants the step actually offered load to.  The
            registry feeds the same ingest SLO surface, so knee
            detection works unchanged; ``0`` is the classic
            single-map bench.
    """
    if tenants < 0:
        raise ValueError(f"tenants must be >= 0, got {tenants}")
    if step_seconds <= 0:
        raise ValueError(f"step_seconds must be positive, got {step_seconds}")
    if rate_per_client <= 0:
        raise ValueError(
            f"rate_per_client must be positive, got {rate_per_client}"
        )
    if quick:
        step_seconds = min(step_seconds, 1.0)
    steps = tuple(
        client_steps
        if client_steps is not None
        else (_QUICK_STEPS if quick else _DEFAULT_STEPS)
    )
    if not steps or list(steps) != sorted(steps) or steps[0] < 1:
        raise ValueError(
            f"client_steps must be ascending positive counts, got {steps}"
        )
    chosen = tuple(
        objectives if objectives is not None else default_objectives()
    )

    workload = load_bench_workload(
        dataset_name, ray_scale=ray_scale, max_batches=max_batches
    )
    # Trace once; clients replay. The generator must outrun the service.
    traced = [
        trace_scan(
            cloud,
            resolution,
            depth,
            max_range=workload.max_range,
            kernel=kernel,
        ).observations
        for cloud in workload
    ]
    config = ServiceConfig(
        resolution=resolution,
        depth=depth,
        num_shards=shards,
        queue_capacity=queue_capacity,
        backpressure="reject",  # open-loop needs non-blocking submits
        coalesce=coalesce,
        max_range=workload.max_range,
        kernel=kernel,
        snapshot_interval=0,
        workers=workers,
        num_procs=num_procs,
    )
    report = LoadBenchReport(
        dataset=workload.name,
        shards=shards,
        workers=workers,
        kernel=kernel,
        rate_per_client=rate_per_client,
        quick=quick,
        num_procs=num_procs,
        tenants=tenants,
    )
    bench_start = time.perf_counter()
    with OccupancyMapService(config) as service:
        registry = None
        tenant_names: List[str] = []
        if tenants:
            from repro.tenancy import TenantQuota, TenantRegistry

            registry = TenantRegistry(service)
            tenant_names = [f"fleet-{index}" for index in range(tenants)]
            for name in tenant_names:
                # Queue-slot quota mirrors the service's own per-shard
                # capacity; rate stays unlimited so the open-loop ramp
                # (not the bucket) decides offered load.
                registry.create(
                    name,
                    quota=TenantQuota(queue_slots=queue_capacity * shards),
                )
        admin = (
            service.serve_admin(port=admin_port)
            if admin_port is not None
            else None
        )
        try:
            past_knee = 0
            for clients in steps:
                before = _state(service)
                stop = threading.Event()
                errors: List[BaseException] = []
                tallies = [_ClientStats() for _ in range(clients)]
                if registry is not None:
                    served_before = {
                        name: registry.get(name).served_observations
                        for name in tenant_names
                    }
                    submits = [
                        _tenant_submit(
                            registry, tenant_names[index % tenants]
                        )
                        for index in range(clients)
                    ]
                else:
                    served_before = {}
                    submits = [
                        service.submit_observations for _ in range(clients)
                    ]
                threads = [
                    threading.Thread(
                        target=_client_loop,
                        args=(
                            submits[index],
                            traced,
                            index,
                            rate_per_client,
                            stop,
                            tallies[index],
                            errors,
                        ),
                        name=f"loadgen-{index}",
                        daemon=True,
                    )
                    for index in range(clients)
                ]
                step_start = time.perf_counter()
                for thread in threads:
                    thread.start()
                time.sleep(step_seconds)
                stop.set()
                for thread in threads:
                    thread.join()
                if errors:
                    raise errors[0]
                if registry is not None:
                    registry.flush()
                service.flush()  # drain so the window owns its backlog
                elapsed = time.perf_counter() - step_start
                after = _state(service)
                availability, p99_ms, stale_ms, burning = _evaluate_step(
                    before, after, chosen
                )
                fairness = None
                if registry is not None:
                    offered_to = {
                        tenant_names[index % tenants]
                        for index in range(clients)
                    }
                    fairness = _fairness_ratio(
                        registry, served_before, offered_to
                    )
                submitted = sum(t.submitted for t in tallies)
                accepted = sum(t.accepted for t in tallies)
                step = LoadStep(
                    clients=clients,
                    offered_scans_per_s=clients * rate_per_client,
                    achieved_scans_per_s=(
                        accepted / elapsed if elapsed > 0 else 0.0
                    ),
                    submitted=submitted,
                    accepted=accepted,
                    rejected=sum(t.rejected for t in tallies),
                    availability=availability,
                    p99_ms=p99_ms,
                    staleness_p99_ms=stale_ms,
                    burning=burning,
                    elapsed_seconds=elapsed,
                    tenant_fairness=fairness,
                )
                report.steps.append(step)
                if burning:
                    if report.knee_clients is None:
                        report.knee_clients = clients
                    past_knee += 1
                    if past_knee > stop_after_knee:
                        break
            # Publish the SLO gauges from the loaded registry, so a
            # scrape during admin_hold sees the run's burn state.
            service.slo_engine(chosen).evaluate()
            if admin is not None and admin_hold > 0:
                time.sleep(admin_hold)
        finally:
            if admin is not None:
                admin.close()
            if registry is not None:
                registry.close()
    clean = [step for step in report.steps if not step.burning]
    if clean:
        best = max(clean, key=lambda step: step.achieved_scans_per_s)
        report.capacity_scans_per_s = best.achieved_scans_per_s
        report.ingest_p99_ms = best.p99_ms
        report.tenant_fairness_ratio = best.tenant_fairness
    elif report.steps:
        report.capacity_scans_per_s = report.steps[0].achieved_scans_per_s
        report.ingest_p99_ms = report.steps[0].p99_ms
        report.tenant_fairness_ratio = report.steps[0].tenant_fairness
    report.elapsed_seconds = time.perf_counter() - bench_start
    return report
