"""Array-backed octree: pointer-free storage for the same semantics.

The pointer octree allocates a Python object per node (~48 bytes in the
C++ original).  A *linear* octree stores node payloads in one flat array
and child links in 8-slot index blocks — denser (16 bytes/node payload),
with each node's 8 children resolvable from one contiguous block.  §2.3
of the paper surveys works that replace OctoMap's tree wholesale; this
class makes that design point measurable inside this repository while
keeping update/query semantics bit-identical to
:class:`~repro.octree.tree.OccupancyOctree` (differential-tested).

Node ids are array indices, so the memory simulator can model the dense
layout directly: payload ``i`` lives at ``i * 16`` and child block ``b``
at a disjoint region — four nodes per 64-byte line instead of 1.3.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Tuple

from repro.octree.key import VoxelKey, child_index, coord_to_key, key_to_coord
from repro.octree.occupancy import OccupancyParams

__all__ = ["ArrayOctree"]

_NULL = -1

#: Payload bytes per node in the dense layout (float value + block index).
ARRAY_NODE_BYTES = 16


class ArrayOctree:
    """Occupancy octree over flat arrays (values + child-index blocks).

    Mirrors :class:`OccupancyOctree`'s public update/query subset:
    ``update_node``, ``set_leaf``, ``search``, ``query``, ``is_occupied``,
    ``iter_finest_leaves``, ``num_nodes``, ``memory_bytes``, and the
    ``visit_hook`` instrumentation (called with the node's array index).
    """

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        visit_hook: Optional[Callable[[int], None]] = None,
    ) -> None:
        if resolution <= 0:
            raise ValueError(f"resolution must be positive, got {resolution}")
        if not 1 <= depth <= 21:
            raise ValueError(f"depth must be in [1, 21], got {depth}")
        self.resolution = resolution
        self.depth = depth
        self.params = params or OccupancyParams()
        self.visit_hook = visit_hook
        self.node_visits = 0
        self._values: List[float] = []
        self._block_of: List[int] = []  # node -> child-block index or _NULL
        self._blocks: List[int] = []  # flat, 8 node-indices per block
        self._free_nodes: List[int] = []
        self._free_blocks: List[int] = []
        self._root = _NULL
        self._num_nodes = 0

    # ------------------------------------------------------------------
    # Allocation.
    # ------------------------------------------------------------------

    def _alloc_node(self, value: float) -> int:
        self._num_nodes += 1
        if self._free_nodes:
            index = self._free_nodes.pop()
            self._values[index] = value
            self._block_of[index] = _NULL
            return index
        self._values.append(value)
        self._block_of.append(_NULL)
        return len(self._values) - 1

    def _alloc_block(self) -> int:
        if self._free_blocks:
            block = self._free_blocks.pop()
            base = block * 8
            for slot in range(8):
                self._blocks[base + slot] = _NULL
            return block
        self._blocks.extend([_NULL] * 8)
        return len(self._blocks) // 8 - 1

    def _free_subblock(self, node: int) -> None:
        """Release a node's children (all 8 exist; pruning contract)."""
        block = self._block_of[node]
        base = block * 8
        for slot in range(8):
            child = self._blocks[base + slot]
            self._free_nodes.append(child)
            self._num_nodes -= 1
        self._free_blocks.append(block)
        self._block_of[node] = _NULL

    def _visit(self, node: int) -> None:
        self.node_visits += 1
        if self.visit_hook is not None:
            self.visit_hook(node)

    # ------------------------------------------------------------------
    # Updates (same descent semantics as the pointer tree).
    # ------------------------------------------------------------------

    def update_node(self, key: VoxelKey, occupied: bool) -> float:
        path = self._descend(key)
        leaf = path[-1]
        self._values[leaf] = self.params.update(self._values[leaf], occupied)
        self._ascend(path)
        return self._values[leaf]

    def set_leaf(self, key: VoxelKey, value: float) -> None:
        path = self._descend(key)
        self._values[path[-1]] = value
        self._ascend(path)

    def _descend(self, key: VoxelKey) -> List[int]:
        fresh = False
        if self._root == _NULL:
            self._root = self._alloc_node(self.params.threshold)
            fresh = True
        node = self._root
        self._visit(node)
        path = [node]
        for level in range(self.depth - 1, -1, -1):
            block = self._block_of[node]
            if block == _NULL:
                block = self._alloc_block()
                self._block_of[node] = block
                if not fresh:
                    # Expansion: a pruned leaf's descendants inherit it.
                    base = block * 8
                    for slot in range(8):
                        self._blocks[base + slot] = self._alloc_node(
                            self._values[node]
                        )
            slot_index = block * 8 + child_index(key, level)
            child = self._blocks[slot_index]
            if child == _NULL:
                child = self._alloc_node(self.params.threshold)
                self._blocks[slot_index] = child
                fresh = True
            node = child
            self._visit(node)
            path.append(node)
        return path

    def _ascend(self, path: List[int]) -> None:
        self._visit(path[-1])
        for index in range(len(path) - 2, -1, -1):
            parent = path[index]
            self._visit(parent)
            if self._try_prune(parent):
                continue
            base = self._block_of[parent] * 8
            best = None
            for slot in range(8):
                child = self._blocks[base + slot]
                if child != _NULL:
                    value = self._values[child]
                    if best is None or value > best:
                        best = value
            self._values[parent] = best

    def _try_prune(self, parent: int) -> bool:
        block = self._block_of[parent]
        base = block * 8
        first = self._blocks[base]
        if first == _NULL or self._block_of[first] != _NULL:
            return False
        value = self._values[first]
        for slot in range(1, 8):
            child = self._blocks[base + slot]
            if (
                child == _NULL
                or self._block_of[child] != _NULL
                or self._values[child] != value
            ):
                return False
        self._free_subblock(parent)
        self._values[parent] = value
        return True

    # ------------------------------------------------------------------
    # Queries.
    # ------------------------------------------------------------------

    def search(self, key: VoxelKey) -> Optional[float]:
        node = self._root
        if node == _NULL:
            return None
        self._visit(node)
        for level in range(self.depth - 1, -1, -1):
            block = self._block_of[node]
            if block == _NULL:
                return self._values[node]  # pruned subtree
            child = self._blocks[block * 8 + child_index(key, level)]
            if child == _NULL:
                return None
            node = child
            self._visit(node)
        return self._values[node]

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        return self.search(coord_to_key(coord, self.resolution, self.depth))

    def is_occupied(self, coord: Tuple[float, float, float]) -> Optional[bool]:
        value = self.query(coord)
        if value is None:
            return None
        return self.params.is_occupied(value)

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    @property
    def num_nodes(self) -> int:
        return self._num_nodes

    def memory_bytes(self) -> int:
        """Dense accounting: payload slots plus child-block slots."""
        return len(self._values) * ARRAY_NODE_BYTES + len(self._blocks) * 4

    def iter_finest_leaves(self) -> Iterator[Tuple[VoxelKey, float]]:
        if self._root == _NULL:
            return
        stack: List[Tuple[int, int, int, int, int]] = [
            (self._root, self.depth, 0, 0, 0)
        ]
        while stack:
            node, level, kx, ky, kz = stack.pop()
            block = self._block_of[node]
            if block == _NULL:
                span = 1 << level
                value = self._values[node]
                for dx in range(span):
                    for dy in range(span):
                        for dz in range(span):
                            yield ((kx + dx, ky + dy, kz + dz), value)
                continue
            half = 1 << (level - 1)
            base = block * 8
            for slot in range(8):
                child = self._blocks[base + slot]
                if child == _NULL:
                    continue
                stack.append(
                    (
                        child,
                        level - 1,
                        kx + (half if slot & 4 else 0),
                        ky + (half if slot & 2 else 0),
                        kz + (half if slot & 1 else 0),
                    )
                )

    def key_to_coord(self, key: VoxelKey) -> Tuple[float, float, float]:
        return key_to_coord(key, self.resolution, self.depth)

    def __len__(self) -> int:
        return self._num_nodes
