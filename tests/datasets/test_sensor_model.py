"""Tests for the depth-sensor model."""

import numpy as np
import pytest

from repro.datasets.scenes import Box, Scene
from repro.datasets.sensor_model import SensorModel


def wall_scene():
    return Scene([Box((3.0, -5.0, -5.0), (3.5, 5.0, 5.0))], ground=False)


class TestDirections:
    def test_direction_count(self):
        sensor = SensorModel(horizontal_rays=8, vertical_rays=4)
        assert sensor.ray_directions(0.0).shape == (32, 3)
        assert sensor.rays_per_scan == 32

    def test_directions_are_unit(self):
        sensor = SensorModel(horizontal_rays=6, vertical_rays=5)
        directions = sensor.ray_directions(0.7, pitch=0.2)
        norms = np.linalg.norm(directions, axis=1)
        assert np.allclose(norms, 1.0)

    def test_yaw_rotates_fan(self):
        sensor = SensorModel(horizontal_rays=3, vertical_rays=1)
        forward = sensor.ray_directions(0.0).mean(axis=0)
        left = sensor.ray_directions(np.pi / 2).mean(axis=0)
        assert forward[0] > 0.9 * np.linalg.norm(forward)
        assert left[1] > 0.9 * np.linalg.norm(left)

    def test_validation(self):
        with pytest.raises(ValueError):
            SensorModel(horizontal_rays=0)
        with pytest.raises(ValueError):
            SensorModel(max_range=0.0)
        with pytest.raises(ValueError):
            SensorModel(noise_sigma=-1.0)


class TestScan:
    def test_scan_hits_wall(self):
        sensor = SensorModel(
            horizontal_rays=10, vertical_rays=5, max_range=8.0,
            horizontal_fov=np.deg2rad(40), vertical_fov=np.deg2rad(20),
        )
        cloud = sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=0.0)
        assert len(cloud) == 50  # narrow fan: every ray hits the wall
        assert np.allclose(cloud.points[:, 0], 3.0, atol=0.2)

    def test_scan_misses_dropped(self):
        sensor = SensorModel(horizontal_rays=10, vertical_rays=5, max_range=8.0)
        cloud = sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=np.pi)
        assert len(cloud) == 0  # looking away from the wall

    def test_emit_misses_adds_points_beyond_range(self):
        sensor = SensorModel(
            horizontal_rays=4, vertical_rays=2, max_range=5.0, emit_misses=True
        )
        cloud = sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=np.pi)
        assert len(cloud) == 8
        distances = np.linalg.norm(cloud.points - np.zeros(3), axis=1)
        assert np.all(distances > 5.0)

    def test_noise_requires_rng(self):
        sensor = SensorModel(noise_sigma=0.01)
        with pytest.raises(ValueError):
            sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=0.0)

    def test_noise_perturbs_along_ray(self):
        sensor = SensorModel(
            horizontal_rays=10, vertical_rays=5, max_range=8.0, noise_sigma=0.01,
            horizontal_fov=np.deg2rad(40), vertical_fov=np.deg2rad(20),
        )
        rng = np.random.default_rng(0)
        noisy = sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=0.0, rng=rng)
        clean_sensor = SensorModel(
            horizontal_rays=10, vertical_rays=5, max_range=8.0,
            horizontal_fov=np.deg2rad(40), vertical_fov=np.deg2rad(20),
        )
        clean = clean_sensor.scan(wall_scene(), (0.0, 0.0, 0.0), yaw=0.0)
        assert not np.allclose(noisy.points, clean.points)
        # Perturbation is radial: directions unchanged.
        noisy_dirs = noisy.points / np.linalg.norm(noisy.points, axis=1, keepdims=True)
        clean_dirs = clean.points / np.linalg.norm(clean.points, axis=1, keepdims=True)
        assert np.allclose(noisy_dirs, clean_dirs, atol=1e-9)

    def test_origin_recorded(self):
        sensor = SensorModel(horizontal_rays=2, vertical_rays=2)
        cloud = sensor.scan(wall_scene(), (1.0, 2.0, 0.5), yaw=0.0)
        assert cloud.origin == (1.0, 2.0, 0.5)
