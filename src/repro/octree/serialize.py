"""Binary serialisation of occupancy octrees.

A compact recursive format in the spirit of OctoMap's ``.ot`` files: a
header with resolution/depth/occupancy parameters, then a pre-order stream
where each node contributes its float value and an 8-bit child mask.
Round-tripping preserves the exact tree topology (including pruning state)
and all log-odds values.

Version 2 (current) appends a CRC-32 of everything before it, so a blob
corrupted in flight — the crash-recovery checkpoints in
:mod:`repro.resilience.recovery` ride on this format — fails loudly at
load time instead of silently reconstructing a wrong map.  Version 1
blobs (no checksum) still load.
"""

from __future__ import annotations

import struct
import zlib

from repro.octree.node import OctreeNode
from repro.octree.occupancy import OccupancyParams
from repro.octree.tree import OccupancyOctree

__all__ = ["tree_to_bytes", "tree_from_bytes", "save_tree", "load_tree"]

_MAGIC = b"ROCT"
_VERSION = 2
_HEADER = struct.Struct("<4sBdB5d")
# Doubles rather than OctoMap's float32: Python trees hold float64
# log-odds, and the round trip must be lossless.
_NODE = struct.Struct("<dB")
_CRC = struct.Struct("<I")


def tree_to_bytes(tree: OccupancyOctree) -> bytes:
    """Serialise ``tree`` to a compact binary blob (CRC-32 protected)."""
    params = tree.params
    chunks = [
        _HEADER.pack(
            _MAGIC,
            _VERSION,
            tree.resolution,
            tree.depth,
            params.threshold,
            params.delta_occupied,
            params.delta_free,
            params.min_occ,
            params.max_occ,
        )
    ]
    root = tree._root
    chunks.append(struct.pack("<B", 1 if root is not None else 0))
    if root is not None:
        _write_node(root, chunks)
    payload = b"".join(chunks)
    return payload + _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)


def _write_node(node: OctreeNode, chunks: list) -> None:
    mask = 0
    if node.children is not None:
        for slot in range(8):
            if node.children[slot] is not None:
                mask |= 1 << slot
    chunks.append(_NODE.pack(node.value, mask))
    if node.children is not None:
        for slot in range(8):
            child = node.children[slot]
            if child is not None:
                _write_node(child, chunks)


def tree_from_bytes(data: bytes) -> OccupancyOctree:
    """Reconstruct a tree serialised by :func:`tree_to_bytes`."""
    if len(data) < _HEADER.size + 1:
        raise ValueError("truncated octree blob")
    (
        magic,
        version,
        resolution,
        depth,
        threshold,
        delta_occupied,
        delta_free,
        min_occ,
        max_occ,
    ) = _HEADER.unpack_from(data, 0)
    if magic != _MAGIC:
        raise ValueError(f"bad magic {magic!r}; not an octree blob")
    if version == _VERSION:
        if len(data) < _HEADER.size + 1 + _CRC.size:
            raise ValueError("truncated octree blob")
        (stored_crc,) = _CRC.unpack_from(data, len(data) - _CRC.size)
        data = data[: -_CRC.size]
        actual_crc = zlib.crc32(data) & 0xFFFFFFFF
        if stored_crc != actual_crc:
            raise ValueError(
                f"corrupt octree blob: CRC-32 mismatch "
                f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )
    elif version != 1:
        raise ValueError(f"unsupported octree blob version {version}")
    params = OccupancyParams(
        threshold=threshold,
        delta_occupied=delta_occupied,
        delta_free=delta_free,
        min_occ=min_occ,
        max_occ=max_occ,
    )
    tree = OccupancyOctree(resolution=resolution, depth=depth, params=params)
    offset = _HEADER.size
    (has_root,) = struct.unpack_from("<B", data, offset)
    offset += 1
    if has_root:
        root, offset = _read_node(tree, data, offset)
        tree._root = root
    if offset != len(data):
        raise ValueError(f"trailing bytes in octree blob ({len(data) - offset})")
    return tree


def _read_node(
    tree: OccupancyOctree, data: bytes, offset: int
) -> "tuple[OctreeNode, int]":
    value, mask = _NODE.unpack_from(data, offset)
    offset += _NODE.size
    node = tree._alloc(value)
    if mask:
        node.children = [None] * 8
        for slot in range(8):
            if mask & (1 << slot):
                child, offset = _read_node(tree, data, offset)
                node.children[slot] = child
    return node, offset


def save_tree(tree: OccupancyOctree, path: str) -> None:
    """Write ``tree`` to ``path`` in the binary format."""
    with open(path, "wb") as handle:
        handle.write(tree_to_bytes(tree))


def load_tree(path: str) -> OccupancyOctree:
    """Load a tree previously written by :func:`save_tree`."""
    with open(path, "rb") as handle:
        return tree_from_bytes(handle.read())
