"""``ShardedMap``: N OctoCache pipelines behind a Morton-prefix router.

Generalises the paper's two-thread schedule (§4.4) along the *spatial*
axis: instead of one cache + one octree, the map is partitioned into
``num_shards`` disjoint Morton-prefix regions, each owned by its own
:class:`~repro.core.octocache.OctoCacheMap` (cache + octree) behind its
own lock.  Shards never share voxels, so:

- updates to different shards are independent (lock-per-shard, no global
  lock on the hot path);
- within a shard the paper's consistency argument applies unchanged — a
  resident cache cell is authoritative, eviction overwrites the octree —
  so every query answers exactly as a serially built OctoMap would;
- the global snapshot is the plain union of shard maps, exported with
  :func:`repro.octree.merge.merge_tree` plus a cache overlay.

The class itself is synchronous (callers bring their own threads — see
:class:`repro.service.server.OccupancyMapService`); all public entry
points take the owning shard's lock, so concurrent use is safe.
"""

from __future__ import annotations

import math
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from repro.baselines.interface import BatchRecord
from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.kernels import validate_kernel
from repro.octree.iterators import occupied_keys_in_box
from repro.octree.key import VoxelKey, coord_to_key, key_to_coord
from repro.octree.merge import merge_tree
from repro.octree.occupancy import OccupancyParams
from repro.octree.rayquery import RayHit
from repro.octree.serialize import tree_to_bytes
from repro.octree.tree import OccupancyOctree
from repro.sensor.pointcloud import PointCloud
from repro.sensor.raycast import compute_ray_keys
from repro.resilience.faults import FaultPlan
from repro.resilience.recovery import ShardCheckpoint, restore_pipeline
from repro.sensor.scaninsert import ScanBatch, trace_scan, trace_scan_rt
from repro.service.sharding import ShardRouter
from repro.telemetry import get_tracer

__all__ = ["ShardedMap", "ShardedBatchRecord"]


@dataclass
class ShardedBatchRecord:
    """Stage accounting for one batch applied across shards.

    ``modeled_cost`` is the batch's cost under the service's execution
    model — shards run concurrently, so the batch costs what its slowest
    shard costs (``max``), versus the serial pipeline's ``sum``.  This is
    the quantity the throughput-vs-shards benchmark compares against the
    serial :class:`OctoCacheMap`.
    """

    observations: int = 0
    ray_tracing: float = 0.0
    shard_busy: Dict[int, float] = field(default_factory=dict)

    @property
    def modeled_cost(self) -> float:
        busiest = max(self.shard_busy.values()) if self.shard_busy else 0.0
        return self.ray_tracing + busiest

    @property
    def serialized_cost(self) -> float:
        """Cost had the same shard work run back-to-back on one core."""
        return self.ray_tracing + sum(self.shard_busy.values())


class ShardedMap:
    """A spatially sharded OctoCache occupancy map.

    Args:
        resolution: finest voxel edge length (metres), shared by shards.
        depth: octree depth, shared by shards.
        num_shards: spatial partition count.
        params: occupancy-update parameters, shared by shards.
        max_range: sensor range clamp for :meth:`insert_point_cloud`.
        cache_config: per-shard cache shape; defaults per shard.
        rt: duplicate-free ray tracing for :meth:`insert_point_cloud`.
        kernel: ``"scalar"`` or ``"vector"`` — the tracing/apply kernel
            used by :meth:`insert_point_cloud` and every shard pipeline
            (see ``docs/kernels.md``; both produce bit-identical maps).
        pipeline_cls: per-shard pipeline class (an ``OctoCacheMap``
            subclass; the serial one is the right default since shard
            parallelism replaces the two-thread schedule).
        prefix_levels: router prefix depth override (see
            :class:`~repro.service.sharding.ShardRouter`).
    """

    def __init__(
        self,
        resolution: float,
        depth: int = 12,
        num_shards: int = 4,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
        cache_config: Optional[CacheConfig] = None,
        rt: bool = False,
        kernel: str = "scalar",
        pipeline_cls: Type[OctoCacheMap] = OctoCacheMap,
        prefix_levels: Optional[int] = None,
    ) -> None:
        validate_kernel(kernel)
        self.resolution = resolution
        self.depth = depth
        self.max_range = max_range
        self.rt = rt
        self.kernel = kernel
        self.router = ShardRouter(num_shards, depth, prefix_levels)
        self.params = params or OccupancyParams()
        self._pipeline_cls = pipeline_cls
        self._cache_config = cache_config
        self.shards: List[OctoCacheMap] = [
            self.make_shard_pipeline() for _ in range(num_shards)
        ]
        #: Tenant-slot pipelines, keyed ``(shard_id, tenant)`` with
        #: ``tenant >= 1`` (slot 0 is the default map in :attr:`shards`).
        #: Created lazily under the shard lock; the tenant layer places
        #: each tenant's voxels with its own salted router, so slices
        #: arriving here are already partitioned per tenant.
        self._tenant_shards: Dict[Tuple[int, int], OctoCacheMap] = {}
        self._locks: List[threading.RLock] = [
            threading.RLock() for _ in range(num_shards)
        ]
        self.records: List[ShardedBatchRecord] = []
        #: Telemetry tracer for per-shard ingest spans (the global one by
        #: default; shard pipelines carry their own ``tracer`` attribute).
        self.tracer = get_tracer()
        #: Fault-injection plan evaluated at the ``octree.update`` site
        #: inside :meth:`apply_to_shard`.  Empty (inert) by default; the
        #: service installs its own for chaos runs.
        self.fault_plan = FaultPlan()

    @property
    def num_shards(self) -> int:
        return self.router.num_shards

    def shard_lock(self, shard_id: int) -> threading.RLock:
        """The lock guarding one shard (exposed for the service layer)."""
        return self._locks[shard_id]

    def make_shard_pipeline(self) -> OctoCacheMap:
        """A fresh pipeline shaped like the resident shards.

        Crash recovery uses this as the factory for the replacement
        pipeline a snapshot + journal replay is rebuilt into.
        """
        return self._pipeline_cls(
            resolution=self.resolution,
            depth=self.depth,
            params=self.params,
            max_range=self.max_range,
            cache_config=self._cache_config,
            kernel=self.kernel,
        )

    def replace_shard(
        self, shard_id: int, pipeline: OctoCacheMap, tenant: int = 0
    ) -> None:
        """Swap in a rebuilt shard pipeline (under the shard lock).

        Until this call the old pipeline keeps serving queries — stale
        but self-consistent reads — which is why recovery rebuilds
        off-lock and swaps atomically at the end.
        """
        with self._locks[shard_id]:
            if tenant == 0:
                self.shards[shard_id] = pipeline
            else:
                self._tenant_shards[(shard_id, tenant)] = pipeline

    def _shard_pipeline(self, shard_id: int, tenant: int) -> OctoCacheMap:
        """The pipeline for one ``(shard, tenant)`` slot (lazily created).

        Must be called under ``self._locks[shard_id]``.
        """
        if tenant == 0:
            return self.shards[shard_id]
        slot = (shard_id, tenant)
        pipeline = self._tenant_shards.get(slot)
        if pipeline is None:
            pipeline = self.make_shard_pipeline()
            self._tenant_shards[slot] = pipeline
        return pipeline

    def drop_tenant(self, tenant: int) -> None:
        """Discard every shard slice owned by ``tenant``.

        The tenant layer persists the slices first (evict = persist +
        drop); this just frees the memory.  Slot 0 — the default map —
        cannot be dropped.
        """
        if tenant == 0:
            raise ValueError("tenant slot 0 (the default map) cannot be dropped")
        for shard_id in range(self.num_shards):
            with self._locks[shard_id]:
                self._tenant_shards.pop((shard_id, tenant), None)

    def restore_shard(
        self,
        shard_id: int,
        checkpoint: Optional[ShardCheckpoint],
        tail: Sequence[Sequence[Tuple[VoxelKey, bool]]],
        tenant: int = 0,
    ) -> None:
        """Rebuild one shard exactly from a checkpoint + journal tail.

        The backend-agnostic recovery entry point the service calls
        (:class:`~repro.mp.backend.ProcessShardedMap` implements the
        same method by shipping a ``RESTORE`` command to the worker
        process).  The rebuild runs off-lock — the old pipeline keeps
        serving stale-but-consistent queries — and the replacement is
        swapped in atomically.  With ``tenant != 0`` the rebuilt
        pipeline lands in that tenant's slot instead of the default map.
        """
        pipeline = restore_pipeline(self.make_shard_pipeline, checkpoint, tail)
        self.replace_shard(shard_id, pipeline, tenant=tenant)

    # ------------------------------------------------------------------
    # Update path.
    # ------------------------------------------------------------------

    def insert_point_cloud(
        self,
        points,
        origin: Tuple[float, float, float] = (0.0, 0.0, 0.0),
    ) -> ShardedBatchRecord:
        """Trace one scan and apply it across shards (synchronously)."""
        if isinstance(points, PointCloud):
            cloud = points
        else:
            cloud = PointCloud(points, origin)
        tracer = trace_scan_rt if self.rt else trace_scan
        start = time.perf_counter()
        batch = tracer(
            cloud,
            self.resolution,
            self.depth,
            max_range=self.max_range,
            kernel=self.kernel,
        )
        elapsed = time.perf_counter() - start
        return self.insert_observations(batch.observations, ray_tracing=elapsed)

    def insert_observations(
        self,
        observations: Sequence[Tuple[VoxelKey, bool]],
        ray_tracing: float = 0.0,
    ) -> ShardedBatchRecord:
        """Partition pre-traced observations and apply each shard's slice.

        Per-voxel observation order is preserved (the router keeps a
        voxel's updates on one shard, in order), so accumulated values —
        and therefore every query answer — match a serially built map.
        """
        record = ShardedBatchRecord(
            observations=len(observations), ray_tracing=ray_tracing
        )
        for shard_id, part in enumerate(self.router.partition(observations)):
            if not part:
                continue
            record.shard_busy[shard_id] = self.apply_to_shard(shard_id, part)
        self.records.append(record)
        return record

    def apply_to_shard(
        self,
        shard_id: int,
        observations: List[Tuple[VoxelKey, bool]],
        tenant: int = 0,
    ) -> float:
        """Run one shard's cache-insert → evict → octree-update cycle.

        Returns the shard's busy seconds for the slice.  Takes the shard
        lock, so ingestion workers and queriers serialise per shard while
        different shards proceed in parallel.  ``tenant != 0`` applies
        the slice to that tenant's pipeline on the same shard lock.
        """
        if self.fault_plan.check("octree.update", shard=shard_id) == "drop":
            return 0.0
        batch = ScanBatch(observations=list(observations), num_rays=0)
        with self.tracer.span(
            "shard.ingest",
            category="service",
            shard=shard_id,
            observations=len(batch),
        ):
            with self._locks[shard_id]:
                # Resolve the pipeline under the lock: recovery may have
                # swapped in a rebuilt one since the caller routed here.
                shard = self._shard_pipeline(shard_id, tenant)
                batch_record: BatchRecord = shard.insert_batch(batch)
        return shard.record_busy_seconds(batch_record)

    def query_keys_in_shard(
        self,
        shard_id: int,
        keys: Sequence[VoxelKey],
        tenant: int = 0,
    ) -> List[Optional[float]]:
        """Log-odds for pre-routed keys against one shard slot.

        The tenant layer routes with per-tenant salted routers, so it
        pre-partitions keys itself and reads each partition through this
        entry point (the default-router :meth:`query_key` would route a
        tenant's key to the wrong shard).
        """
        with self._locks[shard_id]:
            shard = self._shard_pipeline(shard_id, tenant)
            return [shard.query_key(key) for key in keys]

    def finalize(self) -> None:
        """Flush every shard cache into its octree (tenant slots too)."""
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                shard.finalize()
        for (shard_id, _tenant), shard in list(self._tenant_shards.items()):
            with self._locks[shard_id]:
                shard.finalize()

    close = finalize

    def __enter__(self) -> "ShardedMap":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.finalize()

    # ------------------------------------------------------------------
    # Query path: cache first, shard octree under the shard lock.
    # ------------------------------------------------------------------

    def _key_of(self, coord: Tuple[float, float, float]) -> VoxelKey:
        return coord_to_key(coord, self.resolution, self.depth)

    def query_key(self, key: VoxelKey) -> Optional[float]:
        """Log-odds occupancy for ``key`` (``None`` = unknown)."""
        shard_id = self.router.shard_of(key)
        with self._locks[shard_id]:
            return self.shards[shard_id].query_key(key)

    def query(self, coord: Tuple[float, float, float]) -> Optional[float]:
        """Log-odds occupancy at a metric coordinate."""
        return self.query_key(self._key_of(coord))

    def is_occupied(self, coord: Tuple[float, float, float]) -> Optional[bool]:
        """Occupancy decision at a metric coordinate (``None`` = unknown)."""
        value = self.query(coord)
        if value is None:
            return None
        return self.params.is_occupied(value)

    def cast_ray(
        self,
        origin: Tuple[float, float, float],
        direction: Tuple[float, float, float],
        max_range: float,
        ignore_unknown: bool = True,
    ) -> RayHit:
        """Walk the sharded map along a ray (OctoMap's ``castRay``).

        Each visited voxel is answered through the consistent per-shard
        cache-then-octree read, so planners see exactly what a serially
        built map would show — including voxels still resident in a shard
        cache.  The walk may cross shard boundaries; the range is clamped
        to the map boundary.
        """
        norm = math.sqrt(sum(c * c for c in direction))
        if norm == 0.0:
            raise ValueError("direction must be non-zero")
        unit = tuple(c / norm for c in direction)
        half = self.resolution * (1 << (self.depth - 1))
        margin = self.resolution * 1e-3
        travel = max_range
        for o, d in zip(origin, unit):
            if d > 0:
                travel = min(travel, (half - margin - o) / d)
            elif d < 0:
                travel = min(travel, (-half + margin - o) / d)
        travel = max(travel, 0.0)
        endpoint = tuple(o + d * travel for o, d in zip(origin, unit))
        keys = compute_ray_keys(origin, endpoint, self.resolution, self.depth)
        keys.append(self._key_of(endpoint))
        last: Optional[VoxelKey] = None
        for key in keys:
            value = self.query_key(key)
            if value is None:
                if not ignore_unknown:
                    return RayHit(
                        hit=False,
                        key=key,
                        endpoint=self._coord_of(key),
                        blocked_by_unknown=True,
                    )
            elif self.params.is_occupied(value):
                return RayHit(hit=True, key=key, endpoint=self._coord_of(key))
            last = key
        if last is None:
            return RayHit(hit=False, key=None, endpoint=None)
        return RayHit(hit=False, key=last, endpoint=self._coord_of(last))

    def _coord_of(self, key: VoxelKey) -> Tuple[float, float, float]:
        return key_to_coord(key, self.resolution, self.depth)

    def occupied_in_box(
        self,
        min_coord: Tuple[float, float, float],
        max_coord: Tuple[float, float, float],
    ) -> List[VoxelKey]:
        """Occupied finest-level keys inside an inclusive metric box.

        Per shard, the octree answers for evicted voxels (with subtree
        culling) and resident cache cells overlay it — a cell is
        authoritative while resident, so a cached-free voxel the octree
        still thinks occupied is correctly excluded.
        """
        min_key = self._key_of(min_coord)
        max_key = self._key_of(max_coord)
        for axis in range(3):
            if min_key[axis] > max_key[axis]:
                raise ValueError(f"min_coord exceeds max_coord on axis {axis}")

        def in_box(key: VoxelKey) -> bool:
            return all(
                min_key[axis] <= key[axis] <= max_key[axis] for axis in range(3)
            )

        occupied: List[VoxelKey] = []
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                cached = {
                    key: value
                    for key, value in shard.cache.iter_cells()
                    if in_box(key)
                }
                for key in occupied_keys_in_box(shard.octree, min_key, max_key):
                    if key not in cached:
                        occupied.append(key)
                occupied.extend(
                    key
                    for key, value in cached.items()
                    if self.params.is_occupied(value)
                )
        return sorted(occupied)

    # ------------------------------------------------------------------
    # Global snapshot export.
    # ------------------------------------------------------------------

    def shard_snapshot_tree(
        self, shard_id: int, tenant: int = 0
    ) -> OccupancyOctree:
        """One shard slot's authoritative tree: octree + cache overlay.

        This is the per-shard slice of :meth:`snapshot` — the exact
        accumulated values the shard would answer queries with right
        now — and the payload crash-recovery checkpoints serialise.
        ``tenant != 0`` exports that tenant's slice of the shard.
        """
        tree = OccupancyOctree(
            resolution=self.resolution, depth=self.depth, params=self.params
        )
        with self._locks[shard_id]:
            shard = self._shard_pipeline(shard_id, tenant)
            merge_tree(tree, shard.octree, strategy="overwrite")
            for key, value in shard.cache.iter_cells():
                tree.set_leaf(key, value)
        return tree

    def shard_snapshot_blob(self, shard_id: int, tenant: int = 0) -> bytes:
        """One shard slot's authoritative tree as serialize-v2 bytes.

        The checkpoint payload :class:`CheckpointStore` stores verbatim
        (``write_snapshot_blob``); the process backend answers this from
        the worker process without an extra decode/encode round trip.
        """
        return tree_to_bytes(self.shard_snapshot_tree(shard_id, tenant=tenant))

    def snapshot(self) -> OccupancyOctree:
        """Export one octree holding the whole map's current answers.

        Built with :func:`merge_tree` over the (disjoint) shard octrees,
        then overlaid with each shard's resident cache cells — the same
        cache-is-authoritative rule the query path applies, so the
        snapshot agrees voxel-for-voxel with live queries at export time.
        Shards are locked one at a time: the snapshot is per-shard
        consistent, which is the service's documented guarantee.
        """
        snapshot = OccupancyOctree(
            resolution=self.resolution, depth=self.depth, params=self.params
        )
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                merge_tree(snapshot, shard.octree, strategy="overwrite")
                for key, value in shard.cache.iter_cells():
                    snapshot.set_leaf(key, value)
        return snapshot

    # ------------------------------------------------------------------
    # Introspection.
    # ------------------------------------------------------------------

    def shard_stats(self, shard_id: int) -> Dict[str, object]:
        """One shard's pipeline stats (the service's ``/snapshot`` slice).

        Backend-agnostic shape shared with
        :meth:`~repro.mp.backend.ProcessShardedMap.shard_stats`, so the
        service never reaches into shard pipelines directly.
        """
        with self._locks[shard_id]:
            shard = self.shards[shard_id]
            return {
                "hit_ratio": shard.hit_ratio,
                "resident_voxels": shard.cache.resident_voxels,
                "octree_nodes": shard.octree.num_nodes,
                "batches": len(shard.batches),
                "cache": shard.cache.stats_dict(),
            }

    def hit_ratios(self) -> List[float]:
        """Per-shard insert-path cache hit ratios."""
        ratios = []
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                ratios.append(shard.hit_ratio)
        return ratios

    def resident_voxels(self) -> int:
        """Cache-resident voxels summed over shards."""
        total = 0
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                total += shard.cache.resident_voxels
        return total

    def octree_nodes(self) -> int:
        """Octree nodes summed over shards."""
        total = 0
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                total += shard.octree.num_nodes
        return total

    def modeled_total_cost(self) -> float:
        """Sum of per-batch modeled costs (max-over-shards execution)."""
        return sum(record.modeled_cost for record in self.records)

    # ------------------------------------------------------------------
    # Memory accounting (repro.memsight).
    # ------------------------------------------------------------------

    def memory_breakdown(self, exact: bool = False, deep: bool = False):
        """Per-shard, per-tenant-slot footprint tree.

        Shape::

            map
            ├── shard0
            │   ├── default        (slot 0's cache + octree)
            │   └── tenant<slot>   (one per live tenant slice)
            └── shard1 ...

        Each shard is read under its own lock (per-shard consistent,
        matching the snapshot guarantee).  ``exact`` recounts each
        pipeline's storage; ``deep`` adds the octree depth drill-down.
        """
        from repro.memsight.report import MemoryReport

        by_shard: Dict[int, List] = {}
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                by_shard[shard_id] = [
                    shard.memory_breakdown(
                        exact=exact, deep=deep, name="default"
                    )
                ]
        for (shard_id, tenant), shard in sorted(self._tenant_shards.items()):
            with self._locks[shard_id]:
                by_shard.setdefault(shard_id, []).append(
                    shard.memory_breakdown(
                        exact=exact, deep=deep, name=f"tenant{tenant}"
                    )
                )
        return MemoryReport(
            "map",
            children=[
                MemoryReport(f"shard{shard_id}", children=slots)
                for shard_id, slots in sorted(by_shard.items())
            ],
        )

    def tenant_memory_bytes(self) -> Dict[int, int]:
        """Footprint per tenant slot, summed across shards (slot 0 =
        the default map).  The tenancy layer joins these to tenant names
        for ``tenant.mem_bytes.<name>`` attribution."""
        totals: Dict[int, int] = {0: 0}
        for shard_id, shard in enumerate(self.shards):
            with self._locks[shard_id]:
                totals[0] += shard.memory_breakdown().total_bytes
        for (shard_id, tenant), shard in list(self._tenant_shards.items()):
            with self._locks[shard_id]:
                totals[tenant] = (
                    totals.get(tenant, 0)
                    + shard.memory_breakdown().total_bytes
                )
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ShardedMap(res={self.resolution}, depth={self.depth}, "
            f"shards={self.num_shards}, batches={len(self.records)})"
        )
