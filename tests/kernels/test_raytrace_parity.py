"""Property-based parity: vector ray tracing vs the scalar oracle.

The contract of :mod:`repro.kernels.raytrace` is *bit-exactness*: the
batched tracer must emit the identical observation stream — same voxel
keys, same occupied flags, same order — as the per-ray scalar path.
These tests fuzz randomized clouds across resolutions, depths and range
clamps, then hammer the known corner cases (degenerate rays, same-voxel
endpoints, axis-aligned rays, exact voxel-corner ties, ``max_range``
truncation, out-of-bounds errors).
"""

import math

import numpy as np
import pytest

from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import trace_scan


def assert_streams_equal(cloud, resolution, depth, max_range=math.inf):
    scalar = trace_scan(cloud, resolution, depth, max_range=max_range)
    vector = trace_scan(
        cloud, resolution, depth, max_range=max_range, kernel="vector"
    )
    assert vector.num_rays == scalar.num_rays
    assert vector.observations == scalar.observations
    return scalar, vector


def random_cloud(rng, span, num_points):
    origin = tuple(rng.uniform(-span * 0.3, span * 0.3, size=3))
    points = rng.uniform(-span, span, size=(num_points, 3))
    return PointCloud(points=points, origin=origin)


class TestFuzzParity:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_clouds(self, seed):
        rng = np.random.default_rng(seed)
        for _ in range(4):
            resolution = float(rng.choice([0.05, 0.1, 0.25, 0.5]))
            depth = int(rng.choice([6, 8, 10]))
            span = resolution * (1 << (depth - 1)) * 0.8
            cloud = random_cloud(rng, span, int(rng.integers(1, 40)))
            assert_streams_equal(cloud, resolution, depth)


class TestMaxRangeParity:
    @pytest.mark.parametrize("seed", range(4))
    def test_truncated_rays_match_and_contribute_free_only(self, seed):
        rng = np.random.default_rng(1000 + seed)
        resolution = 0.2
        depth = 9
        span = resolution * (1 << (depth - 1)) * 0.8
        cloud = random_cloud(rng, span, 30)
        scalar, vector = assert_streams_equal(
            cloud, resolution, depth, max_range=span * 0.3
        )
        # Some rays truncated (free endpoint), some not.
        assert scalar.num_occupied < 30
        assert vector.num_occupied == scalar.num_occupied

    def test_all_rays_truncated(self):
        cloud = PointCloud(
            points=np.array([[5.0, 5.0, 5.0], [-6.0, 0.0, 3.0]]),
            origin=(0.0, 0.0, 0.0),
        )
        scalar, vector = assert_streams_equal(
            cloud, 0.25, 8, max_range=1.5
        )
        assert scalar.num_occupied == 0
        assert vector.num_occupied == 0


class TestCornerCases:
    def test_empty_cloud(self):
        cloud = PointCloud(points=np.empty((0, 3)), origin=(0.0, 0.0, 0.0))
        scalar, vector = assert_streams_equal(cloud, 0.1, 8)
        assert len(vector) == 0

    def test_degenerate_rays_point_equals_origin(self):
        origin = (0.37, -0.81, 0.05)
        points = np.array([list(origin)] * 3)
        assert_streams_equal(
            PointCloud(points=points, origin=origin), 0.1, 8
        )

    def test_same_voxel_endpoints(self):
        # Endpoint inside the origin voxel but not equal to the origin.
        origin = (0.02, 0.03, 0.04)
        points = np.array([[0.08, 0.01, 0.09], [0.01, 0.09, 0.01]])
        scalar, vector = assert_streams_equal(
            PointCloud(points=points, origin=origin), 0.1, 8
        )
        assert len(scalar) == 2  # endpoint observations only

    def test_axis_aligned_rays(self):
        origin = (0.05, 0.05, 0.05)
        points = np.array(
            [
                [2.05, 0.05, 0.05],
                [0.05, -1.95, 0.05],
                [0.05, 0.05, 3.05],
                [-1.95, 0.05, 0.05],
            ]
        )
        assert_streams_equal(
            PointCloud(points=points, origin=origin), 0.1, 8
        )

    def test_voxel_corner_ties(self):
        # Endpoints and origin on exact multiples of the resolution: the
        # diagonal rays cross voxel corners, where two or three axis
        # crossings share one t value and the tie-break order matters.
        origin = (0.0, 0.0, 0.0)
        points = np.array(
            [
                [1.0, 1.0, 1.0],
                [2.0, 2.0, 0.0],
                [-1.0, -1.0, -1.0],
                [0.5, 0.5, 0.5],
            ]
        )
        for resolution in (0.1, 0.25, 0.5):
            assert_streams_equal(
                PointCloud(points=points, origin=origin), resolution, 8
            )

    def test_mixed_batch(self):
        origin = (0.11, 0.0, -0.07)
        points = np.array(
            [
                [0.11, 0.0, -0.07],  # degenerate
                [0.13, 0.01, -0.05],  # same voxel
                [3.0, 0.0, -0.07],  # axis-aligned
                [2.7, -1.9, 1.4],  # generic
                [40.0, 40.0, 40.0],  # truncated under max_range
            ]
        )
        assert_streams_equal(
            PointCloud(points=points, origin=origin), 0.2, 9, max_range=6.0
        )


class TestErrorParity:
    def test_endpoint_outside_map_raises_like_scalar(self):
        # depth 6 at 0.1 m spans ±3.2 m; 10 m is out of bounds.
        cloud = PointCloud(
            points=np.array([[10.0, 0.0, 0.0]]), origin=(0.0, 0.0, 0.0)
        )
        with pytest.raises(ValueError) as scalar_err:
            trace_scan(cloud, 0.1, 6)
        with pytest.raises(ValueError) as vector_err:
            trace_scan(cloud, 0.1, 6, kernel="vector")
        assert str(vector_err.value) == str(scalar_err.value)

    def test_origin_outside_map_raises_like_scalar(self):
        cloud = PointCloud(
            points=np.array([[0.0, 0.0, 0.0]]), origin=(10.0, 0.0, 0.0)
        )
        with pytest.raises(ValueError) as scalar_err:
            trace_scan(cloud, 0.1, 6)
        with pytest.raises(ValueError) as vector_err:
            trace_scan(cloud, 0.1, 6, kernel="vector")
        assert str(vector_err.value) == str(scalar_err.value)

    def test_truncation_can_rescue_out_of_range_endpoint(self):
        # The scalar path truncates before converting: so must the
        # vector path — no spurious bounds error for clamped rays.
        cloud = PointCloud(
            points=np.array([[10.0, 0.0, 0.0]]), origin=(0.0, 0.0, 0.0)
        )
        assert_streams_equal(cloud, 0.1, 6, max_range=1.0)

    def test_unknown_kernel_rejected(self):
        cloud = PointCloud(
            points=np.array([[1.0, 0.0, 0.0]]), origin=(0.0, 0.0, 0.0)
        )
        with pytest.raises(ValueError, match="unknown kernel"):
            trace_scan(cloud, 0.1, 6, kernel="simd")


class TestBatchCounters:
    """Satellite: counts computed once, identical across representations."""

    def test_counts_match_between_array_and_tuple_batches(self):
        rng = np.random.default_rng(7)
        cloud = random_cloud(rng, 8.0, 25)
        scalar = trace_scan(cloud, 0.2, 8)
        vector = trace_scan(cloud, 0.2, 8, kernel="vector")
        assert vector.num_occupied == scalar.num_occupied
        assert vector.num_free == scalar.num_free
        assert vector.duplication_ratio == pytest.approx(
            scalar.duplication_ratio
        )
        # Cached after first access: same object back, no rescan.
        assert vector.duplication_ratio is not None
        assert vector._num_unique == len(scalar.unique_keys())
