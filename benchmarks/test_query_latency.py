"""Query wait latency: the paper's core motivation (§2.2, Figure 4).

"If there is an ongoing OctoMap generation process, the query must wait
until it finishes" — a planner issuing a query right after a scan arrives
waits for the whole octree update under OctoMap, but only for cache
insertion under OctoCache (Figure 13).  This benchmark measures that
time-to-first-query per batch directly, plus the post-readiness cost of
the queries themselves.
"""

import time

import numpy as np

from repro.analysis.report import format_table
from repro.analysis.sweeps import suggest_cache_config

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

RESOLUTION = 0.15
QUERIES_PER_BATCH = 200


def run_pipeline(kind, dataset, cache_config=None, rng_seed=0):
    mapping = pipeline_factory(kind, dataset, cache_config=cache_config)(
        RESOLUTION
    )
    rng = np.random.default_rng(rng_seed)
    wait_latencies = []
    query_costs = []
    for index, cloud in enumerate(dataset.scans()):
        if index >= BENCH_MAX_BATCHES:
            break
        record = mapping.insert_point_cloud(cloud)
        # Time-to-first-query: how long this batch blocked the planner.
        wait_latencies.append(mapping.record_response_seconds(record))
        # Cost of the queries themselves once the map is serveable.
        probes = rng.uniform(-4.5, 4.5, size=(QUERIES_PER_BATCH, 3))
        probes[:, 2] = rng.uniform(0.0, 2.5, QUERIES_PER_BATCH)
        start = time.perf_counter()
        for probe in probes:
            mapping.is_occupied(tuple(probe))
        query_costs.append(time.perf_counter() - start)
    mapping.finalize()
    return mapping, wait_latencies, query_costs


def test_query_wait_latency(benchmark, corridor, emit):
    config = suggest_cache_config(corridor, RESOLUTION, BENCH_DEPTH)

    def run():
        results = {}
        for kind in ("octomap", "octocache"):
            results[kind] = run_pipeline(
                kind, corridor, cache_config=config
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for kind, (mapping, waits, queries) in results.items():
        rows.append(
            [
                mapping.name,
                f"{np.mean(waits) * 1000:.1f}ms",
                f"{np.max(waits) * 1000:.1f}ms",
                f"{np.mean(queries) * 1e6 / QUERIES_PER_BATCH:.1f}us",
            ]
        )
    emit(
        "query_wait_latency",
        format_table(
            [
                "system",
                "mean wait per batch",
                "worst wait",
                "per-query cost",
            ],
            rows,
        ),
    )

    _octomap, octomap_waits, octomap_queries = results["octomap"]
    _octocache, cache_waits, cache_queries = results["octocache"]
    # The headline: queries stop waiting for the octree.
    assert np.mean(cache_waits) < 0.5 * np.mean(octomap_waits)
    assert np.max(cache_waits) < np.max(octomap_waits)
    # Query consistency costs little: per-query overhead stays within 4x
    # of a pure octree lookup (one bucket scan before the fallthrough).
    assert np.mean(cache_queries) < 4.0 * np.mean(octomap_queries)