"""Figure 20: 3-D environment construction, OctoMap vs OctoCache.

The paper sweeps 9 resolutions on 3 datasets and reports serial OctoCache
1.03–2.06× faster than OctoMap at 0.1 m, with parallel OctoCache adding
0.16–0.33× more in the 0.1–0.3 m band.  Regenerated at laptop scale over
three resolutions; asserted shape: serial OctoCache wins everywhere (and
clearly at the finest resolution), and the two-thread timeline (measured
schedule through the analytic model, DESIGN.md §1) adds on top.
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config
from repro.core.octocache import OctoCacheMap

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

#: Per-dataset resolution sweeps: the indoor corridor supports finer
#: voxels, the large outdoor scenes use the coarser end of the paper's
#: 0.1–0.9 m range.
RESOLUTIONS = {
    "fr079_corridor": (0.1, 0.2, 0.4),
    "freiburg_campus": (0.2, 0.4, 0.8),
    "new_college": (0.2, 0.4, 0.8),
}


def test_fig20_construction(benchmark, all_datasets, emit):
    def run():
        results = []
        for dataset in all_datasets:
            for resolution in RESOLUTIONS[dataset.name]:
                config = suggest_cache_config(dataset, resolution, BENCH_DEPTH)
                vanilla = run_construction(
                    dataset,
                    resolution,
                    pipeline_factory("octomap", dataset),
                    depth=BENCH_DEPTH,
                    max_batches=BENCH_MAX_BATCHES,
                )
                cached = run_construction(
                    dataset,
                    resolution,
                    pipeline_factory("octocache", dataset, cache_config=config),
                    depth=BENCH_DEPTH,
                    max_batches=BENCH_MAX_BATCHES,
                )
                results.append((dataset.name, resolution, vanilla, cached))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, resolution, vanilla, cached in results:
        serial_speedup = vanilla.total_seconds / cached.total_seconds
        parallel_seconds = cached.timeline.parallel_seconds
        parallel_speedup = vanilla.total_seconds / parallel_seconds
        rows.append(
            [
                name,
                resolution,
                f"{vanilla.total_seconds:.2f}",
                f"{cached.total_seconds:.2f}",
                f"{serial_speedup:.2f}x",
                f"{parallel_seconds:.2f}",
                f"{parallel_speedup:.2f}x",
                f"{cached.cache_hit_ratio:.2f}",
            ]
        )
    emit(
        "fig20_construction",
        format_table(
            [
                "dataset",
                "res(m)",
                "OctoMap(s)",
                "OctoCache(s)",
                "serial speedup",
                "parallel(s)",
                "parallel speedup",
                "hit ratio",
            ],
            rows,
        ),
    )

    for name, resolution, vanilla, cached in results:
        serial_speedup = vanilla.total_seconds / cached.total_seconds
        # Paper: 1.03-2.06x at 0.1m, consistent improvement elsewhere;
        # the sparse campus sits at the bottom of the band (its 1.03).
        assert serial_speedup > 0.9, (name, resolution, serial_speedup)
        # The modeled two-thread timeline never loses to serial OctoCache.
        assert (
            cached.timeline.parallel_seconds
            <= cached.timeline.serial_seconds + 1e-9
        )

    # The high-overlap datasets show clear wins at every resolution.
    for name, resolution, vanilla, cached in results:
        if name != "freiburg_campus":
            assert vanilla.total_seconds / cached.total_seconds > 1.2, (
                name,
                resolution,
            )
