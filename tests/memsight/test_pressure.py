"""Pressure watermarks: gauge transitions, log events, advisory hooks."""

import logging

import pytest

from repro.memsight.pressure import PressureConfig, PressureMonitor
from repro.service.metrics import MetricsRegistry
from repro.service.server import OccupancyMapService, ServiceConfig
from repro.tenancy.registry import TenantRegistry


class TestConfig:
    def test_disabled_by_default(self):
        assert not PressureConfig().enabled

    def test_rejects_inverted_watermarks(self):
        with pytest.raises(ValueError):
            PressureConfig(soft_bytes=100, hard_bytes=50)
        with pytest.raises(ValueError):
            PressureConfig(tenant_soft_bytes=100, tenant_hard_bytes=50)

    def test_rejects_negative_watermarks(self):
        with pytest.raises(ValueError):
            PressureConfig(soft_bytes=-1)

    def test_service_config_validates_watermarks(self):
        with pytest.raises(ValueError):
            ServiceConfig(
                resolution=0.2,
                mem_soft_bytes=100,
                mem_hard_bytes=50,
            )


class TestMonitor:
    def test_levels_classify_against_watermarks(self):
        monitor = PressureMonitor(
            PressureConfig(soft_bytes=100, hard_bytes=200)
        )
        assert monitor.evaluate(50).level == "ok"
        assert monitor.evaluate(150).level == "soft_pressure"
        assert monitor.evaluate(250).level == "hard_pressure"
        assert monitor.evaluate(10).level == "ok"

    def test_gauge_follows_the_level(self):
        metrics = MetricsRegistry()
        monitor = PressureMonitor(
            PressureConfig(soft_bytes=100, hard_bytes=200), metrics=metrics
        )
        monitor.evaluate(150)
        assert metrics.state("mem_pressure").state == "soft_pressure"
        monitor.evaluate(10)
        assert metrics.state("mem_pressure").state == "ok"

    def test_tenant_watermarks_flag_offenders(self):
        monitor = PressureMonitor(
            PressureConfig(tenant_soft_bytes=100, tenant_hard_bytes=200)
        )
        decision = monitor.evaluate(
            0, {"small": 10, "warm": 150, "hot": 500}
        )
        assert decision.tenant_levels == {
            "warm": "soft_pressure",
            "hot": "hard_pressure",
        }
        # The overall level reflects the worst tenant.
        assert decision.level == "hard_pressure"

    def test_transitions_emit_log_events(self, caplog):
        monitor = PressureMonitor(PressureConfig(soft_bytes=100))
        with caplog.at_level(logging.WARNING, logger="repro.memsight"):
            monitor.evaluate(150)
            monitor.evaluate(150)  # no transition, no second event
        events = [r for r in caplog.records if "pressure" in r.message]
        assert len(events) == 1
        assert events[0].to == "soft_pressure"

    def test_hook_fires_on_change_including_clears(self):
        calls = []
        monitor = PressureMonitor(
            PressureConfig(soft_bytes=100),
            on_pressure=lambda level, tenants: calls.append(level),
        )
        monitor.evaluate(150)
        monitor.evaluate(160)  # still soft — no new call
        monitor.evaluate(10)
        assert calls == ["soft_pressure", "ok"]

    def test_hook_errors_never_break_evaluation(self):
        def broken(level, tenants):
            raise RuntimeError("boom")

        monitor = PressureMonitor(
            PressureConfig(soft_bytes=100), on_pressure=broken
        )
        assert monitor.evaluate(150).level == "soft_pressure"


class TestServiceIntegration:
    def test_watermarked_service_reports_pressure(self):
        config = ServiceConfig(
            resolution=0.2,
            depth=8,
            num_shards=2,
            snapshot_interval=0,
            mem_soft_bytes=1,  # anything nonzero trips immediately
        )
        with OccupancyMapService(config) as service:
            service.submit_observations([((1, 1, 1), True)], must_accept=True)
            service.flush()
            payload = service.memory_dict()
            assert payload["pressure"]["level"] == "soft_pressure"
            assert (
                service.metrics.state("mem_pressure").state == "soft_pressure"
            )

    def test_tenant_flags_surface_in_tenants_dict(self):
        config = ServiceConfig(
            resolution=0.2,
            depth=8,
            num_shards=2,
            snapshot_interval=0,
            tenant_mem_soft_bytes=1,
        )
        with OccupancyMapService(config) as service:
            with TenantRegistry(service) as registry:
                registry.create("robot-a")
                registry.submit_observations(
                    "robot-a", [((1, 1, 1), True)], must_accept=True
                )
                registry.flush()
                service.refresh_memory_metrics()
                entry = registry.tenants_dict()["tenants"]["robot-a"]
                assert entry["memory_pressure"] == "soft_pressure"
                assert entry["memory"]["total_bytes"] > 0

    def test_unwatermarked_service_stays_ok(self):
        config = ServiceConfig(
            resolution=0.2, depth=8, num_shards=2, snapshot_interval=0
        )
        with OccupancyMapService(config) as service:
            service.submit_observations([((1, 1, 1), True)], must_accept=True)
            service.flush()
            assert service.memory_dict()["pressure"]["level"] == "ok"
