"""Tests for the Figure-10 voxel-ordering experiment."""

import numpy as np
import pytest

from repro.analysis.orderings import (
    ORDERINGS,
    make_orderings,
    run_ordering_experiment,
)
from repro.core.morton import morton_encode3


def surface_keys(n=2000, seed=0):
    """A rough 2-D manifold in key space, like real scan data."""
    rng = np.random.default_rng(seed)
    x = rng.integers(0, 256, n)
    y = rng.integers(0, 256, n)
    z = (
        64 + 8 * np.sin(x / 20.0) + 6 * np.cos(y / 15.0) + rng.integers(0, 2, n)
    ).astype(int)
    return list(zip(x.tolist(), y.tolist(), z.tolist()))


class TestMakeOrderings:
    def test_all_orderings_present(self):
        orderings = make_orderings(surface_keys(100))
        assert set(orderings) == set(ORDERINGS)

    def test_same_multiset(self):
        keys = surface_keys(200)
        for name, sequence in make_orderings(keys).items():
            assert sorted(sequence) == sorted(keys), name

    def test_morton_is_sorted_by_code(self):
        orderings = make_orderings(surface_keys(200))
        codes = [morton_encode3(*k) for k in orderings["morton"]]
        assert codes == sorted(codes)

    def test_sort_x_primary_key(self):
        orderings = make_orderings(surface_keys(200))
        xs = [k[0] for k in orderings["sort_x"]]
        assert xs == sorted(xs)

    def test_original_untouched(self):
        keys = surface_keys(50)
        assert make_orderings(keys)["original"] == keys

    def test_random_deterministic_by_seed(self):
        keys = surface_keys(50)
        a = make_orderings(keys, seed=3)["random"]
        b = make_orderings(keys, seed=3)["random"]
        assert a == b


class TestExperiment:
    def test_figure10_shape(self):
        """Morton has the lowest F and the lowest modeled cost; random has
        the highest of both; cost correlates positively with F."""
        results = run_ordering_experiment(
            surface_keys(), resolution=0.1, depth=10
        )
        by_name = {r.name: r for r in results}
        assert by_name["morton"].locality == min(r.locality for r in results)
        assert by_name["random"].locality == max(r.locality for r in results)
        assert by_name["morton"].modeled_cycles_per_voxel <= min(
            r.modeled_cycles_per_voxel for r in results
        ) + 1e-9
        assert (
            by_name["random"].modeled_cycles_per_voxel
            > by_name["morton"].modeled_cycles_per_voxel
        )
        # Positive rank correlation between F and modeled cost.
        ranked_by_f = sorted(results, key=lambda r: r.locality)
        costs = [r.modeled_cycles_per_voxel for r in ranked_by_f]
        # The extremes must be ordered even if middles jitter.
        assert costs[0] < costs[-1]

    def test_identical_node_visits_across_orderings(self):
        """All orderings insert the same multiset: total octree node
        visits must agree (cost differences are purely locality)."""
        results = run_ordering_experiment(
            surface_keys(500), resolution=0.1, depth=10
        )
        visits = {r.node_visits for r in results}
        assert len(visits) == 1

    def test_literal_tx2_geometry_option(self):
        results = run_ordering_experiment(
            surface_keys(300), resolution=0.1, depth=10, scaled_caches=False
        )
        assert len(results) == len(ORDERINGS)
