"""Tests for analytic scenes and ray casting."""

import numpy as np
import pytest

from repro.datasets.scenes import (
    Box,
    Scene,
    campus_scene,
    college_scene,
    corridor_scene,
)


class TestBox:
    def test_contains(self):
        box = Box((0, 0, 0), (1, 1, 1))
        assert box.contains((0.5, 0.5, 0.5))
        assert box.contains((0.0, 0.0, 0.0))  # inclusive
        assert not box.contains((1.5, 0.5, 0.5))

    def test_rejects_degenerate(self):
        with pytest.raises(ValueError):
            Box((0, 0, 0), (0, 1, 1))


class TestCasting:
    def test_hit_front_face(self):
        scene = Scene([Box((2, -1, -1), (3, 1, 1))], ground=False)
        hit, points = scene.cast((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), 10.0)
        assert hit[0]
        assert points[0] == pytest.approx([2.0, 0.0, 0.0])

    def test_miss(self):
        scene = Scene([Box((2, -1, -1), (3, 1, 1))], ground=False)
        hit, _ = scene.cast((0, 0, 0), np.array([[0.0, 1.0, 0.0]]), 10.0)
        assert not hit[0]

    def test_range_limit(self):
        scene = Scene([Box((5, -1, -1), (6, 1, 1))], ground=False)
        hit, _ = scene.cast((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), 3.0)
        assert not hit[0]

    def test_nearest_box_wins(self):
        scene = Scene(
            [Box((4, -1, -1), (5, 1, 1)), Box((2, -1, -1), (3, 1, 1))],
            ground=False,
        )
        hit, points = scene.cast((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), 10.0)
        assert hit[0]
        assert points[0][0] == pytest.approx(2.0)

    def test_ground_plane(self):
        scene = Scene([], ground=True)
        down = np.array([[0.0, 0.0, -1.0]])
        hit, points = scene.cast((0, 0, 2.0), down, 10.0)
        assert hit[0]
        assert points[0][2] == pytest.approx(0.0)

    def test_ground_not_hit_looking_up(self):
        scene = Scene([], ground=True)
        hit, _ = scene.cast((0, 0, 2.0), np.array([[0.0, 0.0, 1.0]]), 10.0)
        assert not hit[0]

    def test_origin_inside_box_hits_exit_face(self):
        scene = Scene([Box((-1, -1, -1), (1, 1, 1))], ground=False)
        hit, points = scene.cast((0, 0, 0), np.array([[1.0, 0.0, 0.0]]), 10.0)
        assert hit[0]
        assert points[0][0] == pytest.approx(1.0)

    def test_many_rays_vectorised(self):
        scene = Scene([Box((2, -5, -5), (3, 5, 5))], ground=False)
        angles = np.linspace(-0.5, 0.5, 101)
        directions = np.column_stack(
            [np.cos(angles), np.sin(angles), np.zeros_like(angles)]
        )
        hit, points = scene.cast((0, 0, 0), directions, 10.0)
        assert hit.all()
        assert np.allclose(points[:, 0], 2.0)

    def test_bad_directions_shape(self):
        scene = Scene([], ground=True)
        with pytest.raises(ValueError):
            scene.cast((0, 0, 0), np.array([1.0, 0.0, 0.0]), 10.0)


class TestInsideObstacle:
    def test_inside_box(self):
        scene = Scene([Box((0, 0, 0), (1, 1, 1))], ground=False)
        assert scene.is_inside_obstacle((0.5, 0.5, 0.5))
        assert not scene.is_inside_obstacle((2.0, 2.0, 2.0))

    def test_below_ground(self):
        scene = Scene([], ground=True)
        assert scene.is_inside_obstacle((0.0, 0.0, -0.1))
        assert not scene.is_inside_obstacle((0.0, 0.0, 0.1))


class TestNamedScenes:
    @pytest.mark.parametrize(
        "builder", [corridor_scene, campus_scene, college_scene]
    )
    def test_scenes_construct(self, builder):
        scene = builder()
        assert len(scene.boxes) > 3
        assert scene.ground

    def test_corridor_interior_is_free(self):
        scene = corridor_scene()
        assert not scene.is_inside_obstacle((10.0, 0.0, 1.2))

    def test_corridor_walls_block(self):
        scene = corridor_scene()
        assert scene.is_inside_obstacle((10.0, 1.0, 1.2))

    def test_college_centre_monument(self):
        scene = college_scene()
        assert scene.is_inside_obstacle((0.0, 0.0, 0.5))
        assert not scene.is_inside_obstacle((5.0, 5.0, 1.5))
