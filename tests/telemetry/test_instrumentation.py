"""End-to-end instrumentation: hot paths emit spans, trace-bench criteria."""

import numpy as np
import pytest

from repro.core.octocache import OctoCacheMap
from repro.sensor.pointcloud import PointCloud
from repro.service.server import OccupancyMapService, ServiceConfig
from repro.simcache.trace import replay_trace
from repro.telemetry import PipelineProfile, RingBufferSink, tracing
from repro.telemetry.bench import run_trace_bench

RES = 0.2
DEPTH = 8


def small_cloud(seed=0, points=50):
    rng = np.random.default_rng(seed)
    pts = np.column_stack(
        [np.full(points, 2.0), rng.uniform(-1, 1, points), rng.uniform(0, 1, points)]
    )
    return PointCloud(pts, origin=(0.0, 0.0, 0.5))


class TestSerialPipelineSpans:
    def test_octocache_emits_stage_spans_and_counts(self):
        ring = RingBufferSink()
        with tracing(ring):
            with OctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
                mapping.insert_point_cloud(small_cloud())
        names = {s.name for s in ring.spans}
        assert {
            "ray_tracing",
            "insert_batch",
            "cache_insertion",
            "cache_eviction",
            "octree_update",
        } <= names
        counts = ring.counts
        # Count aggregates mirror the cache's own lifetime counters.
        assert counts[("cache", "cache.hits")] == mapping.cache.hits
        assert counts[("cache", "cache.misses")] == mapping.cache.misses
        assert counts[("cache", "cache.evictions")] == mapping.cache.evictions

    def test_stage_spans_nest_under_insert_batch(self):
        ring = RingBufferSink()
        with tracing(ring):
            with OctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
                mapping.insert_point_cloud(small_cloud())
        by_name = {}
        for span in ring.spans:
            by_name.setdefault(span.name, span)
        batch = by_name["insert_batch"]
        assert by_name["cache_insertion"].parent_id == batch.span_id
        assert by_name["cache_eviction"].parent_id == batch.span_id

    def test_untraced_run_emits_nothing(self):
        ring = RingBufferSink()
        with OctoCacheMap(resolution=RES, depth=DEPTH) as mapping:
            mapping.insert_point_cloud(small_cloud())
        assert len(ring) == 0


class TestServiceSpans:
    def test_service_mirrors_into_global_tracer(self):
        ring = RingBufferSink()
        with tracing(ring):
            config = ServiceConfig(resolution=RES, depth=DEPTH, num_shards=2)
            with OccupancyMapService(config) as service:
                service.submit(small_cloud())
                service.is_occupied((2.0, 0.0, 0.5))
                service.flush()
                metrics = service.metrics.to_dict()
        names = {s.name for s in ring.spans}
        assert {"ingest.trace", "ingest.enqueue", "shard.apply"} <= names
        assert "shard.queue_wait" in names
        # Metrics registry and trace stream were fed by the same events.
        profile = PipelineProfile.from_ring(ring)
        for span_name in ("ingest.trace", "shard.apply"):
            stage = profile.stages[("service", span_name)]
            hist = metrics["histograms"][span_name + "_seconds"]
            assert hist["count"] == stage.count

    def test_service_metrics_work_without_global_tracing(self):
        ring = RingBufferSink()
        config = ServiceConfig(resolution=RES, depth=DEPTH, num_shards=1)
        with OccupancyMapService(config) as service:
            service.submit(small_cloud())
            service.flush()
            metrics = service.metrics.to_dict()
        assert metrics["counters"]["ingest.scans"] == 1
        assert metrics["histograms"]["shard.apply_seconds"]["count"] >= 1
        assert len(ring) == 0


class TestSimcacheSpans:
    def test_replay_emits_simcache_span(self):
        ring = RingBufferSink()
        with tracing(ring):
            result = replay_trace([1, 2, 3, 2, 1])
        (span,) = [s for s in ring.spans if s.category == "simcache"]
        assert span.name == "replay"
        assert span.attributes["accesses"] == 5
        assert span.attributes["total_cycles"] == result.total_cycles


class TestTraceBenchAcceptance:
    """The ISSUE's acceptance criteria for ``trace-bench``."""

    @pytest.fixture(scope="class")
    def report(self):
        return run_trace_bench(batches=2, ray_scale=0.3, depth=9)

    def test_at_least_four_categories(self, report):
        categories = set(report.profile.categories)
        assert {"octree", "cache", "simcache"} <= categories
        assert categories & {"parallel", "service"}
        assert len(categories) >= 4

    def test_profile_accounts_for_traced_wall_time(self, report):
        assert report.profile.coverage() >= 0.95

    def test_metrics_totals_agree_with_span_counts(self, report):
        assert report.consistency
        assert report.consistent

    def test_chrome_trace_is_valid(self, report, tmp_path):
        import json

        path = tmp_path / "out.trace.json"
        report.chrome.write(path)
        data = json.loads(path.read_text())
        assert isinstance(data["traceEvents"], list)
        assert data["traceEvents"]
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len({e["cat"] for e in spans}) >= 4

    def test_cache_summary_populated(self, report):
        summary = report.profile.cache_summary()
        assert summary["hits"] + summary["misses"] > 0
        assert 0.0 <= summary["hit_ratio"] <= 1.0

    def test_rejects_bad_batches(self):
        with pytest.raises(ValueError):
            run_trace_bench(batches=0)
