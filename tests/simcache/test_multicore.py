"""Tests for the dual-core shared-L2 model."""

import pytest

from repro.simcache.address_space import AddressSpace
from repro.simcache.cache_sim import CacheLevel
from repro.simcache.cost_model import AccessCosts
from repro.simcache.multicore import DualCoreHierarchy, interleave_traces


def tiny_dual(l2_bytes=4096):
    return DualCoreHierarchy(
        l1=CacheLevel("L1", 256, 64, 2),
        l2=CacheLevel("L2", l2_bytes, 64, 4),
        costs=AccessCosts(level_cycles=(1.0, 10.0), dram_cycles=100.0),
    )


class TestDualCore:
    def test_private_l1s(self):
        dual = tiny_dual()
        dual.access(0, 0)  # core 0 warms its L1
        # Core 1 misses its own L1 but hits the shared L2.
        assert dual.access(1, 0) == 10.0
        # Core 0 re-hits its private L1.
        assert dual.access(0, 0) == 1.0

    def test_shared_l2_contention(self):
        """Core 1 streaming evicts core 0's L2 working set."""
        dual = tiny_dual(l2_bytes=4096)  # 64 lines
        # Core 0 loads a working set into L2 (and its tiny L1).
        working_set = [i * 64 for i in range(32)]
        for address in working_set:
            dual.access(0, address)
        # Without interference, re-touching hits L2 at worst.
        cold = tiny_dual(l2_bytes=4096)
        for address in working_set:
            cold.access(0, address)
        baseline = sum(cold.access(0, a) for a in working_set)
        # Core 1 streams through a large buffer, trashing the shared L2.
        for address in range(100_000, 100_000 + 64 * 200, 64):
            dual.access(1, address)
        contended = sum(dual.access(0, a) for a in working_set)
        assert contended > baseline

    def test_validation(self):
        dual = tiny_dual()
        with pytest.raises(ValueError):
            dual.access(2, 0)
        with pytest.raises(ValueError):
            DualCoreHierarchy(
                costs=AccessCosts(level_cycles=(1.0,), dram_cycles=10.0)
            )
        with pytest.raises(ValueError):
            DualCoreHierarchy(address_spaces=[AddressSpace()])

    def test_per_core_accounting(self):
        dual = tiny_dual()
        dual.access(0, 0)
        dual.access(0, 64)
        dual.access(1, 128)
        assert dual.core_accesses == [2, 1]
        assert dual.mean_cycles(0) > 0
        assert dual.mean_cycles(1) > 0

    def test_access_node_uses_core_space(self):
        spaces = [AddressSpace(), AddressSpace(placement="shuffled")]
        dual = DualCoreHierarchy(address_spaces=spaces)
        dual.access_node(0, 5)
        dual.access_node(1, 5)
        assert dual.core_accesses == [1, 1]


class TestInterleave:
    def test_round_robin_chunks(self):
        stream = list(interleave_traces([1, 2, 3, 4], [9, 8], chunk=2))
        assert stream == [(0, 1), (0, 2), (1, 9), (1, 8), (0, 3), (0, 4)]

    def test_uneven_lengths(self):
        stream = list(interleave_traces([1], [7, 8, 9], chunk=1))
        cores = [core for core, _n in stream]
        assert cores.count(0) == 1 and cores.count(1) == 3

    def test_empty(self):
        assert list(interleave_traces([], [])) == []

    def test_chunk_validation(self):
        with pytest.raises(ValueError):
            list(interleave_traces([1], [2], chunk=0))
