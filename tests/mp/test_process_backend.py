"""Process backend vs. the serial oracle and the thread backend.

The multiprocess engine must be semantically invisible: the same batches
through a process-backed service produce the *identical* map a serial
build produces, queries answer the same, and the bounded-queue
backpressure contract (reject vs. block, two-phase ``must_accept``)
behaves exactly as it does on the thread backend.
"""

import random
import threading

import pytest

from repro.core.octocache import OctoCacheMap
from repro.mp.backend import ProcessShardedMap
from repro.octree.merge import map_agreement
from repro.sensor.scaninsert import ScanBatch
from repro.service.server import (
    BackpressureError,
    OccupancyMapService,
    ServiceConfig,
)

RESOLUTION = 0.1
DEPTH = 6


def make_config(**overrides):
    defaults = dict(
        resolution=RESOLUTION,
        depth=DEPTH,
        num_shards=2,
        queue_capacity=8,
        coalesce=1,
        snapshot_interval=2,
        workers="process",
    )
    defaults.update(overrides)
    return ServiceConfig(**defaults)


def make_batches(num_batches=8, per_batch=60, seed=23):
    rng = random.Random(seed)
    batches = []
    for _ in range(num_batches):
        batch = []
        for _ in range(per_batch):
            key = (rng.randrange(64), rng.randrange(64), rng.randrange(64))
            batch.append((key, rng.random() < 0.6))
        batches.append(batch)
    return batches


def build_serial(batches):
    serial = OctoCacheMap(resolution=RESOLUTION, depth=DEPTH)
    for batch in batches:
        serial.insert_batch(ScanBatch(observations=list(batch), num_rays=0))
    return serial


def keys_for_shard(router, shard_id, count, start=0):
    found = []
    for x in range(start, 64):
        for y in range(64):
            key = (x, y, 7)
            if router.shard_of(key) == shard_id:
                found.append(key)
                if len(found) == count:
                    return found
    raise AssertionError(f"could not find {count} keys for shard {shard_id}")


class GatedApply:
    """Blocks applies to one shard until released (parent-side in both
    backends, so the same gate exercises both queue implementations)."""

    def __init__(self, service, shard_id):
        self.original = service.map.apply_to_shard
        self.shard_id = shard_id
        self.entered = threading.Event()
        self.gate = threading.Event()

    def __call__(self, shard_id, observations):
        if shard_id == self.shard_id:
            self.entered.set()
            assert self.gate.wait(timeout=10.0), "gate never released"
        return self.original(shard_id, observations)


class TestBitExactAgreement:
    def test_process_service_matches_serial_build(self):
        """The headline invariant: a process-backed service converges on
        the identical map a fault-free serial build produces."""
        batches = make_batches()
        with OccupancyMapService(make_config()) as service:
            for batch in batches:
                service.submit_observations(batch, must_accept=True)
            service.flush()
            snapshot = service.snapshot()
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0
        assert agreement.compared > 0

    def test_standalone_backend_matches_serial_build(self):
        batches = make_batches(num_batches=4, per_batch=40, seed=7)
        with ProcessShardedMap(
            resolution=RESOLUTION, depth=DEPTH, num_shards=2
        ) as pmap:
            for batch in batches:
                for shard_id in range(pmap.num_shards):
                    share = [
                        obs
                        for obs in batch
                        if pmap.router.shard_of(obs[0]) == shard_id
                    ]
                    if share:
                        pmap.apply_to_shard(shard_id, share)
            pmap.finalize()
            snapshot = pmap.snapshot()
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0

    def test_num_procs_fewer_than_shards(self):
        """Shards multiplex onto fewer processes without changing the map."""
        batches = make_batches(num_batches=4, per_batch=40, seed=11)
        with OccupancyMapService(
            make_config(num_shards=4, num_procs=2)
        ) as service:
            assert service.map.num_procs == 2
            for batch in batches:
                service.submit_observations(batch, must_accept=True)
            service.flush()
            snapshot = service.snapshot()
        serial = build_serial(batches)
        serial.finalize()
        assert map_agreement(serial.octree, snapshot).decision_agreement == 1.0


class TestQueryParity:
    def test_queries_match_serial_answers(self):
        batches = make_batches(num_batches=3, per_batch=50, seed=5)
        serial = build_serial(batches)
        with OccupancyMapService(make_config(snapshot_interval=0)) as service:
            for batch in batches:
                service.submit_observations(batch, must_accept=True)
            service.flush()
            seen = {key for batch in batches for key, _occ in batch}
            for key in sorted(seen)[:40]:
                assert service.map.query_key(key) == pytest.approx(
                    serial.query_key(key)
                )
            assert service.map.query_key((63, 63, 63)) == serial.query_key(
                (63, 63, 63)
            )

    def test_occupied_in_box_matches_thread_backend(self):
        batches = make_batches(num_batches=2, per_batch=40, seed=9)
        # The whole key grid: keys 0..63 map to [-3.2, 3.2) metres.
        lo = (-3.2, -3.2, -3.2)
        hi = (3.15, 3.15, 3.15)
        results = {}
        for workers in ("thread", "process"):
            with OccupancyMapService(
                make_config(snapshot_interval=0, workers=workers)
            ) as service:
                for batch in batches:
                    service.submit_observations(batch, must_accept=True)
                service.flush()
                results[workers] = service.map.occupied_in_box(lo, hi)
        assert results["process"] == results["thread"]
        assert results["process"]  # non-trivial box


class TestBackpressureParity:
    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_reject_policy_and_must_accept_rollback(self, workers):
        """Reject + two-phase must_accept behave identically on both
        backends: partial capacity -> atomic rejection, slot released."""
        config = make_config(
            queue_capacity=1,
            backpressure="reject",
            snapshot_interval=0,
            workers=workers,
        )
        service = OccupancyMapService(config)
        gated = GatedApply(service, shard_id=1)
        try:
            router = service.map.router
            k1 = keys_for_shard(router, 1, 3)
            k0 = keys_for_shard(router, 0, 1)
            service.map.apply_to_shard = gated
            service.submit_observations([(k1[0], True)])
            assert gated.entered.wait(timeout=10.0)
            receipt = service.submit_observations([(k1[1], True)])
            assert receipt.enqueued == 1
            with pytest.raises(BackpressureError, match="nothing was enqueued"):
                service.submit_observations(
                    [(k0[0], True), (k1[2], True)], must_accept=True
                )
            receipt = service.submit_observations([(k0[0], False)])
            assert receipt.enqueued == 1
            gated.gate.set()
            service.flush()
            expected = build_serial(
                [[(k1[0], True)], [(k1[1], True)], [(k0[0], False)]]
            )
            for key in (k1[0], k1[1], k0[0]):
                assert service.map.query_key(key) == pytest.approx(
                    expected.query_key(key)
                )
            assert service.map.query_key(k1[2]) is None
        finally:
            gated.gate.set()
            service.close()

    @pytest.mark.parametrize("workers", ["thread", "process"])
    def test_block_policy_drains_everything(self, workers):
        config = make_config(
            queue_capacity=1,
            backpressure="block",
            snapshot_interval=0,
            workers=workers,
        )
        batches = make_batches(num_batches=6, per_batch=20, seed=31)
        with OccupancyMapService(config) as service:
            for batch in batches:
                receipt = service.submit_observations(batch)
                assert receipt.rejected == 0
            service.flush()
            snapshot = service.snapshot()
        serial = build_serial(batches)
        serial.finalize()
        agreement = map_agreement(serial.octree, snapshot)
        assert agreement.decision_agreement == 1.0
        assert agreement.missing == 0


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            ServiceConfig(resolution=0.1, workers="fiber")

    def test_num_procs_requires_process_backend(self):
        with pytest.raises(ValueError, match="num_procs"):
            ServiceConfig(resolution=0.1, workers="thread", num_procs=2)

    def test_num_procs_bounds(self):
        with pytest.raises(ValueError, match="num_procs"):
            ServiceConfig(
                resolution=0.1, num_shards=2, workers="process", num_procs=3
            )
