"""Configuration objects shared across the OctoCache pipelines."""

from __future__ import annotations

from dataclasses import dataclass

from repro.octree.occupancy import OccupancyParams

__all__ = ["CacheConfig", "OccupancyConfig", "CELL_BYTES"]

#: Bytes per cache cell as accounted in the paper (§5.1): 3 one-byte
#: discretised coordinates + one 4-byte float occupancy value.
CELL_BYTES = 7


# Re-export under the name the public API uses; the octree substrate owns
# the actual occupancy arithmetic.
OccupancyConfig = OccupancyParams


@dataclass(frozen=True)
class CacheConfig:
    """Shape and policy of the OctoCache voxel cache.

    Attributes:
        num_buckets: ``w``, the width of the bucket array.  The paper keeps
            ``w`` a power of two so the bucket-locating ``% w`` compiles to
            a mask (§4.2.1); enforced here for fidelity.
        bucket_threshold: ``τ``, the maximum number of voxel cells a bucket
            retains *after* eviction (§4.2.2).  Buckets may grow beyond τ
            within an update batch.
        use_morton_indexing: locate buckets with ``Morton(v) % w`` instead
            of a generic hash (§4.3).  With sequential bucket-order
            eviction this makes evicted batches Morton-ordered, which is
            the paper's optimal octree insertion order.
    """

    num_buckets: int = 4096
    bucket_threshold: int = 4
    use_morton_indexing: bool = True

    def __post_init__(self) -> None:
        if self.num_buckets <= 0:
            raise ValueError(f"num_buckets must be positive, got {self.num_buckets}")
        if self.num_buckets & (self.num_buckets - 1):
            raise ValueError(
                f"num_buckets must be a power of two (paper §4.2.1), "
                f"got {self.num_buckets}"
            )
        if self.bucket_threshold < 1:
            raise ValueError(
                f"bucket_threshold must be >= 1, got {self.bucket_threshold}"
            )

    @property
    def capacity(self) -> int:
        """Maximum resident voxels after eviction: ``w * τ``."""
        return self.num_buckets * self.bucket_threshold

    @property
    def memory_bytes(self) -> int:
        """Post-eviction memory bound: ``7 * w * τ`` bytes (paper §6.2.4)."""
        return CELL_BYTES * self.capacity

    @classmethod
    def for_batch_size(
        cls,
        nondup_voxels_per_batch: int,
        bucket_threshold: int = 4,
        size_factor: float = 3.5,
        use_morton_indexing: bool = True,
    ) -> "CacheConfig":
        """Size the cache as the paper does for construction experiments.

        §5.2: pick capacity 3–4× the average number of non-duplicate voxels
        per update batch (``size_factor`` defaults to the midpoint), then
        round the bucket count up to a power of two.
        """
        if nondup_voxels_per_batch <= 0:
            raise ValueError("nondup_voxels_per_batch must be positive")
        target_capacity = max(1, int(nondup_voxels_per_batch * size_factor))
        buckets = 1
        while buckets * bucket_threshold < target_capacity:
            buckets *= 2
        return cls(
            num_buckets=buckets,
            bucket_threshold=bucket_threshold,
            use_morton_indexing=use_morton_indexing,
        )
