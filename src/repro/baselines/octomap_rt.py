"""OctoMap-RT pipeline (Min et al., reimplemented as the paper does in §5).

OctoMap-RT's distinguishing feature is duplicate-eliminating ray tracing;
its octree insertion is identical to OctoMap.  The paper re-implemented it
on the TX2 CPU since the original is not open source — this class is the
same reimplementation in this codebase: :func:`repro.sensor.trace_scan_rt`
front-end, vanilla octree back-end.
"""

from __future__ import annotations

from typing import Optional

from repro.baselines.octomap import OctoMapPipeline
from repro.octree.occupancy import OccupancyParams

__all__ = ["OctoMapRTPipeline"]


class OctoMapRTPipeline(OctoMapPipeline):
    """OctoMap with duplicate-free (RT-style) ray tracing."""

    name = "OctoMap-RT"

    def __init__(
        self,
        resolution: float,
        depth: int = 16,
        params: Optional[OccupancyParams] = None,
        max_range: float = float("inf"),
    ) -> None:
        super().__init__(
            resolution=resolution,
            depth=depth,
            params=params,
            max_range=max_range,
            rt=True,
        )
