"""Array-parallel kernels for the ingest hot path (ROADMAP item 2).

The scalar ingest path traces one ray at a time through a pure-Python
Amanatides–Woo loop and applies one observation at a time to the cache
and octree.  The kernels in this package replace those per-element loops
with numpy array passes — the same strategy the GPU voxel-grid mapper of
Toumieh & Lambert and OctoMap-RT (Min et al.) use to win their
order-of-magnitude speedups — while staying **bit-exact** with the
scalar path, which remains the reference oracle:

- :mod:`repro.kernels.raytrace` — batched Amanatides–Woo: a whole
  :class:`~repro.sensor.pointcloud.PointCloud` is traced as ``(N, 3)``
  arrays, producing the identical observation stream (keys, flags and
  order) as per-ray scalar tracing.
- :mod:`repro.kernels.dedup` — the paper's §4 duplication elimination as
  one Morton-sort/unique array pass with an occupied-wins reduction
  (``trace_scan_rt`` semantics by construction).
- :mod:`repro.kernels.logodds` — bulk clamped log-odds application:
  observations grouped per unique voxel and folded with the exact
  per-observation clamp sequence, vectorised round by round.

Selection is by the ``kernel`` switch (``"scalar"`` | ``"vector"``)
threaded through :func:`repro.sensor.scaninsert.trace_scan`,
:class:`repro.baselines.interface.MappingSystem`, the service layer and
every bench CLI (``--kernel``).  See ``docs/kernels.md``.
"""

from repro.kernels.dedup import dedup_observations, group_observations
from repro.kernels.logodds import fold_logodds
from repro.kernels.raytrace import trace_cloud_arrays

KERNELS = ("scalar", "vector")


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if it names a known kernel, else raise."""
    if kernel not in KERNELS:
        raise ValueError(
            f"unknown kernel {kernel!r}: expected one of {KERNELS}"
        )
    return kernel


__all__ = [
    "KERNELS",
    "dedup_observations",
    "fold_logodds",
    "group_observations",
    "trace_cloud_arrays",
    "validate_kernel",
]
