"""Figure 18: sensitivity sweeps, OctoMap vs OctoCache (Room, AscTec).

(a)/(b): fixed sensing range 3 m, resolution swept 0.1–0.2 m.
(c)/(d): fixed resolution 0.15 m, sensing range swept 2–4 m.

Paper's findings: OctoCache's advantage grows with resolution and with
sensing range (up to 2.46× / 3.66× end-to-end, 1.65–1.72× flight
velocity), and even the cheapest settings never favour OctoMap.
"""

from repro.analysis.report import format_table
from repro.baselines.octomap import OctoMapPipeline
from repro.core.octocache import OctoCacheMap
from repro.uav.environments import make_environment
from repro.uav.sweeps import resolution_sweep, sensing_range_sweep
from repro.uav.vehicle import ASCTEC_PELICAN

DEPTH = 12
RESOLUTIONS = (0.2, 0.15, 0.1)
RANGES = (2.0, 3.0, 4.0)


def factories():
    def octomap(res, srange):
        return OctoMapPipeline(resolution=res, depth=DEPTH, max_range=srange)

    def octocache(res, srange):
        return OctoCacheMap(resolution=res, depth=DEPTH, max_range=srange)

    return octomap, octocache


def test_fig18_room_sweeps(benchmark, emit):
    env = make_environment("room")
    octomap, octocache = factories()

    def run():
        return {
            "res_octomap": resolution_sweep(
                env, RESOLUTIONS, octomap, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
            "res_octocache": resolution_sweep(
                env, RESOLUTIONS, octocache, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
            "range_octomap": sensing_range_sweep(
                env, RANGES, octomap, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
            "range_octocache": sensing_range_sweep(
                env, RANGES, octocache, uav=ASCTEC_PELICAN, model_octree_offload=True
            ),
        }

    sweeps = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for axis, label in (("res", "resolution"), ("range", "sensing range")):
        base = sweeps[f"{axis}_octomap"]
        cached = sweeps[f"{axis}_octocache"]
        for b, c in zip(base, cached):
            knob = b.resolution if axis == "res" else b.sensing_range
            rows.append(
                [
                    label,
                    knob,
                    f"{b.result.mean_response_latency * 1000:.0f}ms",
                    f"{c.result.mean_response_latency * 1000:.0f}ms",
                    f"{b.result.mean_response_latency / c.result.mean_response_latency:.2f}x",
                    f"{b.result.mean_velocity:.2f}",
                    f"{c.result.mean_velocity:.2f}",
                    f"{b.result.completion_time:.1f}s",
                    f"{c.result.completion_time:.1f}s",
                ]
            )
    emit(
        "fig18_room_sweeps",
        format_table(
            [
                "sweep",
                "value",
                "OctoMap resp",
                "OctoCache resp",
                "speedup",
                "v OctoMap",
                "v OctoCache",
                "T OctoMap",
                "T OctoCache",
            ],
            rows,
        ),
    )

    for axis in ("res", "range"):
        base = sweeps[f"{axis}_octomap"]
        cached = sweeps[f"{axis}_octocache"]
        speedups = []
        for b, c in zip(base, cached):
            assert b.result.success and c.result.success, axis
            assert not b.result.crashed and not c.result.crashed, axis
            speedups.append(
                b.result.mean_response_latency
                / c.result.mean_response_latency
            )
            # OctoCache flies at least as fast at every point (Fig 18 b/d).
            assert (
                c.result.mean_velocity >= b.result.mean_velocity * 0.95
            ), axis
        # The decisive, jitter-proof claim: a >2x win at *every* sweep
        # point (paper: up to 2.46x/3.66x at the expensive ends).  Trend
        # comparisons between single-mission points are not asserted —
        # per-run speedups at one point vary by tens of percent (the
        # table shows the shape; EXPERIMENTS.md discusses it).
        assert min(speedups) > 2.0, (axis, speedups)
