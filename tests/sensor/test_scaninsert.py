"""Tests for scan-to-batch conversion (vanilla and RT ray tracing)."""

import numpy as np
import pytest

from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import trace_scan, trace_scan_rt

RES = 0.1
DEPTH = 10


def wall_cloud(n=50, x=2.0, spread=1.0, seed=0):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            np.full(n, x),
            rng.uniform(-spread, spread, n),
            rng.uniform(0.0, spread, n),
        ]
    )
    return PointCloud(points, origin=(0.0, 0.0, 0.5))


class TestTraceScan:
    def test_each_ray_emits_free_then_occupied(self):
        cloud = PointCloud([[1.0, 0.0, 0.0]], origin=(0.0, 0.0, 0.0))
        batch = trace_scan(cloud, RES, DEPTH)
        assert batch.num_rays == 1
        assert batch.observations[-1][1] is True  # endpoint occupied
        assert all(occ is False for _k, occ in batch.observations[:-1])

    def test_duplication_from_conical_rays(self):
        batch = trace_scan(wall_cloud(), RES, DEPTH)
        # Rays share voxels near the origin: duplication must appear.
        assert batch.duplication_ratio > 1.5

    def test_occupied_and_free_counts(self):
        batch = trace_scan(wall_cloud(n=20), RES, DEPTH)
        assert batch.num_occupied == 20  # one endpoint per ray
        assert batch.num_free == len(batch) - 20

    def test_max_range_truncates_to_free(self):
        cloud = PointCloud([[10.0, 0.0, 0.0]], origin=(0.0, 0.0, 0.0))
        batch = trace_scan(cloud, RES, DEPTH, max_range=2.0)
        # Truncated ray: all observations free, none beyond ~2m.
        assert all(occ is False for _k, occ in batch.observations)
        offset = 1 << (DEPTH - 1)
        max_x = max(k[0] for k, _occ in batch.observations)
        assert (max_x - offset) * RES <= 2.0 + RES

    def test_within_range_unaffected_by_max_range(self):
        cloud = PointCloud([[1.0, 0.0, 0.0]], origin=(0.0, 0.0, 0.0))
        with_limit = trace_scan(cloud, RES, DEPTH, max_range=5.0)
        without = trace_scan(cloud, RES, DEPTH)
        assert with_limit.observations == without.observations

    def test_empty_cloud(self):
        batch = trace_scan(PointCloud(np.zeros((0, 3))), RES, DEPTH)
        assert len(batch) == 0
        assert batch.duplication_ratio == 0.0


class TestTraceScanRT:
    def test_no_duplicates(self):
        batch = trace_scan_rt(wall_cloud(), RES, DEPTH)
        keys = [k for k, _occ in batch.observations]
        assert len(keys) == len(set(keys))
        assert batch.duplication_ratio == pytest.approx(1.0)

    def test_occupied_wins_over_free(self):
        # Two rays: one ends where the other passes through.
        cloud = PointCloud(
            [[0.5, 0.0, 0.0], [1.0, 0.0, 0.0]], origin=(0.0, 0.0, 0.0)
        )
        batch = trace_scan_rt(cloud, RES, DEPTH)
        occupancy = dict(batch.observations)
        end_key_near = trace_scan(
            PointCloud([[0.5, 0.0, 0.0]], origin=(0.0, 0.0, 0.0)), RES, DEPTH
        ).observations[-1][0]
        assert occupancy[end_key_near] is True

    def test_same_voxel_set_as_vanilla(self):
        cloud = wall_cloud(n=30)
        vanilla = trace_scan(cloud, RES, DEPTH)
        rt = trace_scan_rt(cloud, RES, DEPTH)
        assert vanilla.unique_keys() == rt.unique_keys()

    def test_fewer_observations_than_vanilla(self):
        cloud = wall_cloud()
        assert len(trace_scan_rt(cloud, RES, DEPTH)) < len(trace_scan(cloud, RES, DEPTH))
