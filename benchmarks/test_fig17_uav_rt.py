"""Figure 17: UAV navigation with the -RT mapping systems.

Same closed-loop comparison as Figure 16 but with duplicate-free (RT-style)
ray tracing on both sides and the finer RT-class resolutions.  Paper:
OctoCache-RT 1.33–1.53× faster end-to-end, completion time 12–15% better.
The cache's advantage here comes solely from inter-batch overlap and the
shorter critical path, so the asserted margins are smaller than Fig. 16's.
"""

from repro.analysis.report import format_table
from repro.baselines.octomap_rt import OctoMapRTPipeline
from repro.core.octocache import OctoCacheRTMap
from repro.uav.environments import ENVIRONMENT_NAMES, make_environment
from repro.uav.mission import MissionConfig, run_mission
from repro.uav.vehicle import ASCTEC_PELICAN

DEPTH = 12
MAX_CYCLES = 900

PIPELINES = {"octomap_rt": OctoMapRTPipeline, "octocache_rt": OctoCacheRTMap}


def fly_rt(env, kind):
    config = MissionConfig(
        environment=env,
        uav=ASCTEC_PELICAN,
        resolution=env.rt_resolution,
        max_cycles=MAX_CYCLES,
        model_octree_offload=True,
    )
    cls = PIPELINES[kind]

    def attempt():
        return run_mission(
            config,
            lambda res: cls(
                resolution=res, depth=DEPTH, max_range=config.sensing_range
            ),
        )

    result = attempt()
    if not result.success and not result.crashed:
        result = attempt()  # one retry for stochastic hover-loop timeouts
    return result


def test_fig17_uav_navigation_rt(benchmark, emit):
    def run():
        results = {}
        for name in ENVIRONMENT_NAMES:
            env = make_environment(name)
            results[name] = (fly_rt(env, "octomap_rt"), fly_rt(env, "octocache_rt"))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, (octomap_rt, octocache_rt) in results.items():
        rows.append(
            [
                name,
                f"{octomap_rt.mean_response_latency * 1000:.0f}ms",
                f"{octocache_rt.mean_response_latency * 1000:.0f}ms",
                f"{octomap_rt.mean_response_latency / octocache_rt.mean_response_latency:.2f}x",
                f"{octomap_rt.completion_time:.1f}s",
                f"{octocache_rt.completion_time:.1f}s",
                f"{(1 - octocache_rt.completion_time / octomap_rt.completion_time) * 100:.0f}%",
            ]
        )
    emit(
        "fig17_uav_rt_comparison",
        format_table(
            [
                "environment",
                "OctoMap-RT resp",
                "OctoCache-RT resp",
                "runtime speedup",
                "OctoMap-RT T",
                "OctoCache-RT T",
                "T saved",
            ],
            rows,
        ),
    )

    savings = []
    for name, (octomap_rt, octocache_rt) in results.items():
        assert octomap_rt.success and not octomap_rt.crashed, name
        assert octocache_rt.success and not octocache_rt.crashed, name
        # Paper: 1.33-1.53x; asserted: a real (if smaller) win everywhere.
        speedup = (
            octomap_rt.mean_response_latency
            / octocache_rt.mean_response_latency
        )
        assert speedup > 1.05, (name, speedup)
        # Completion time: no catastrophic per-environment regression
        # (trajectories are wall-clock driven, so single runs jitter)...
        assert (
            octocache_rt.completion_time < octomap_rt.completion_time * 1.2
        ), name
        savings.append(
            1.0 - octocache_rt.completion_time / octomap_rt.completion_time
        )
    # ...and a clear aggregate saving (paper: 12-15% across environments).
    assert sum(savings) / len(savings) > 0.05, savings
