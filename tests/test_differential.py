"""Differential testing: every pipeline builds the same map.

The strongest structural guarantee in the repository: for any random scan
sequence, all non-RT pipelines (vanilla OctoMap, serial OctoCache with
tiny/huge/hash-indexed caches, parallel OctoCache, adaptive OctoCache,
dense grid, SkiMap) produce voxel-identical occupancy — because they all
implement the same accumulated log-odds semantics over different storage.
Hypothesis drives the scan generator; one failure here localises a
semantic divergence immediately.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.octomap import OctoMapPipeline
from repro.baselines.skimap import SkiMapPipeline
from repro.baselines.voxelgrid import VoxelGridPipeline
from repro.core.adaptive import AdaptiveOctoCacheMap
from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.core.parallel import ParallelOctoCacheMap
from repro.sensor.pointcloud import PointCloud

DEPTH = 7
RES = 0.25

scan_params = st.tuples(
    st.integers(min_value=0, max_value=2**31 - 1),  # seed
    st.integers(min_value=5, max_value=40),  # points
    st.floats(min_value=1.0, max_value=5.0),  # wall distance
)


def make_cloud(seed, n, distance):
    rng = np.random.default_rng(seed)
    points = np.column_stack(
        [
            rng.uniform(distance, distance + 1.0, n),
            rng.uniform(-2.0, 2.0, n),
            rng.uniform(0.0, 2.0, n),
        ]
    )
    origin = (float(rng.uniform(-0.5, 0.5)), 0.0, 1.0)
    return PointCloud(points, origin)


def build_pipelines():
    return [
        OctoMapPipeline(resolution=RES, depth=DEPTH),
        OctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=16, bucket_threshold=1),
        ),
        OctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(
                num_buckets=256, bucket_threshold=4, use_morton_indexing=False
            ),
        ),
        ParallelOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=16, bucket_threshold=1),
        ),
        AdaptiveOctoCacheMap(
            resolution=RES,
            depth=DEPTH,
            cache_config=CacheConfig(num_buckets=8, bucket_threshold=1),
        ),
        VoxelGridPipeline(resolution=RES, grid_depth=DEPTH),
        SkiMapPipeline(resolution=RES, depth=DEPTH),
    ]


class TestDifferential:
    @given(st.lists(scan_params, min_size=1, max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_all_pipelines_agree(self, scans):
        pipelines = build_pipelines()
        for seed, n, distance in scans:
            cloud = make_cloud(seed, n, distance)
            for pipeline in pipelines:
                pipeline.insert_point_cloud(cloud)
        for pipeline in pipelines:
            pipeline.finalize()
        reference = pipelines[0]
        for key, value in reference.octree.iter_finest_leaves():
            for pipeline in pipelines[1:]:
                got = pipeline.query_key(key)
                assert got is not None, (pipeline.name, key)
                assert got == pytest.approx(value, abs=1e-5), (
                    pipeline.name,
                    key,
                )

    @given(st.lists(scan_params, min_size=1, max_size=3))
    @settings(max_examples=10, deadline=None)
    def test_unknown_space_agrees(self, scans):
        """Voxels unknown to OctoMap are unknown to everyone."""
        pipelines = build_pipelines()
        for seed, n, distance in scans:
            cloud = make_cloud(seed, n, distance)
            for pipeline in pipelines:
                pipeline.insert_point_cloud(cloud)
        for pipeline in pipelines:
            pipeline.finalize()
        reference = pipelines[0]
        rng = np.random.default_rng(0)
        probes = rng.uniform(-7.0, 7.0, size=(40, 3))
        for probe in probes:
            coord = tuple(probe)
            expected = reference.query(coord)
            for pipeline in pipelines[1:]:
                got = pipeline.query(coord)
                if expected is None:
                    assert got is None, (pipeline.name, coord)
                else:
                    assert got == pytest.approx(expected, abs=1e-5)
