"""Tests for the concurrent occupancy-map service."""

import threading
import time

import numpy as np
import pytest

from repro.octree.merge import map_agreement
from repro.sensor.pointcloud import PointCloud
from repro.service.server import (
    BackpressureError,
    OccupancyMapService,
    ServiceConfig,
)

RES = 0.2
DEPTH = 8


def wall_cloud(seed=0, points=50):
    rng = np.random.default_rng(seed)
    pts = np.column_stack(
        [
            np.full(points, 3.0),
            rng.uniform(-2, 2, points),
            rng.uniform(0.2, 2, points),
        ]
    )
    return PointCloud(pts, origin=(0.0, 0.0, 1.0))


def make_service(**overrides):
    defaults = dict(
        resolution=RES, depth=DEPTH, num_shards=2, max_range=10.0
    )
    defaults.update(overrides)
    return OccupancyMapService(ServiceConfig(**defaults))


class TestConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            ServiceConfig(resolution=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(resolution=0.1, num_shards=0)
        with pytest.raises(ValueError):
            ServiceConfig(resolution=0.1, queue_capacity=0)
        with pytest.raises(ValueError):
            ServiceConfig(resolution=0.1, backpressure="drop-oldest")
        with pytest.raises(ValueError):
            ServiceConfig(resolution=0.1, coalesce=0)


class TestIngestAndQuery:
    def test_submit_flush_query_roundtrip(self):
        with make_service() as service:
            receipt = service.submit(wall_cloud())
            assert receipt.accepted
            assert receipt.observations > 0
            service.flush()
            hits = sum(
                service.is_occupied((3.05, y, 1.0)) is True
                for y in np.linspace(-1.5, 1.5, 13)
            )
            assert hits > 0
            assert service.is_occupied((-20.0, -20.0, -20.0)) is None

    def test_metrics_populated(self):
        with make_service() as service:
            service.submit(wall_cloud())
            service.flush()
            service.is_occupied((0.5, 0.0, 1.0))
            service.cast_ray((0.0, 0.0, 1.0), (1.0, 0.0, 0.0), max_range=8.0)
            service.occupied_in_box((2.5, -2.0, 0.2), (3.5, 2.0, 2.0))
            stats = service.stats_dict()
        counters = stats["metrics"]["counters"]
        assert counters["ingest.scans"] == 1
        assert counters["ingest.observations"] > 0
        assert counters["query.points"] == 1
        assert counters["query.rays"] == 1
        assert counters["query.boxes"] == 1
        assert counters["shard.batches_applied"] >= 1
        histograms = stats["metrics"]["histograms"]
        assert histograms["ingest.trace_seconds"]["count"] == 1
        assert histograms["query.point_seconds"]["count"] == 1
        assert len(stats["shards"]) == 2
        report = service.stats_report()
        assert "hit ratio" in report
        assert "p99" in report

    def test_concurrent_producers_and_consumers(self):
        with make_service(num_shards=4) as service:
            errors = []

            def produce(seed):
                try:
                    for i in range(3):
                        service.submit(wall_cloud(seed * 10 + i))
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            def consume():
                try:
                    rng = np.random.default_rng(7)
                    for _ in range(40):
                        coord = tuple(rng.uniform(-2, 4, 3))
                        value = service.query(coord)
                        assert value is None or isinstance(value, float)
                except BaseException as error:  # pragma: no cover
                    errors.append(error)

            threads = [
                threading.Thread(target=produce, args=(s,)) for s in range(3)
            ] + [threading.Thread(target=consume) for _ in range(3)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            service.flush()
            assert not errors
            snapshot = service.snapshot()
            assert snapshot.num_nodes > 0

    def test_snapshot_matches_live_queries_when_idle(self):
        with make_service() as service:
            service.submit(wall_cloud())
            service.flush()
            snapshot = service.snapshot()
            report = map_agreement(snapshot, service.map.snapshot())
            assert report.decision_agreement == 1.0


class TestBackpressure:
    def _slow_apply(self, service, delay=0.05):
        """Make every shard apply slow so queues actually fill."""
        original = service.map.apply_to_shard

        def slowed(shard_id, observations):
            time.sleep(delay)
            return original(shard_id, observations)

        service.map.apply_to_shard = slowed

    def test_reject_policy_drops_and_counts(self):
        service = make_service(
            num_shards=1,
            queue_capacity=1,
            backpressure="reject",
            coalesce=1,
        )
        try:
            self._slow_apply(service)
            receipts = [service.submit(wall_cloud(seed)) for seed in range(6)]
            rejected = sum(receipt.rejected for receipt in receipts)
            assert rejected > 0
            counters = service.metrics.to_dict()["counters"]
            assert counters["ingest.rejected_observations"] == rejected
        finally:
            service.close()

    def test_must_accept_raises_on_reject(self):
        service = make_service(
            num_shards=1, queue_capacity=1, backpressure="reject", coalesce=1
        )
        try:
            self._slow_apply(service, delay=0.2)
            with pytest.raises(BackpressureError):
                for seed in range(6):
                    service.submit(wall_cloud(seed), must_accept=True)
        finally:
            service.close()

    def test_block_policy_never_drops(self):
        service = make_service(
            num_shards=1, queue_capacity=1, backpressure="block", coalesce=1
        )
        try:
            self._slow_apply(service, delay=0.01)
            receipts = [service.submit(wall_cloud(seed)) for seed in range(5)]
            assert all(receipt.accepted for receipt in receipts)
            service.flush()
            applied = service.metrics.counter("shard.batches_applied").value
            assert applied >= 1
        finally:
            service.close()


class TestLifecycle:
    def test_close_is_idempotent(self):
        service = make_service()
        service.submit(wall_cloud())
        service.close()
        service.close()  # second close must be a clean no-op
        with pytest.raises(RuntimeError):
            service.submit(wall_cloud())

    def test_close_flushes_shard_caches(self):
        service = make_service()
        service.submit(wall_cloud())
        service.close()
        assert service.map.resident_voxels() == 0
        assert service.map.octree_nodes() > 0

    def test_worker_error_surfaces_on_flush_not_hang(self):
        service = make_service(num_shards=1, coalesce=1)

        def explode(shard_id, observations):
            raise RuntimeError("shard apply failed")

        service.map.apply_to_shard = explode
        service.submit(wall_cloud())
        with pytest.raises(RuntimeError, match="shard worker error"):
            service.flush()
        service.close()  # close after error is clean

    def test_context_manager_closes(self):
        with make_service() as service:
            service.submit(wall_cloud())
        assert service._closed
        with pytest.raises(RuntimeError):
            service.submit(wall_cloud())

    def test_coalescing_merges_backlogged_batches(self):
        service = make_service(num_shards=1, queue_capacity=16, coalesce=8)
        try:
            # Stall the worker so a backlog builds, then release it.
            gate = threading.Event()
            original = service.map.apply_to_shard

            def gated(shard_id, observations):
                gate.wait(timeout=5.0)
                return original(shard_id, observations)

            service.map.apply_to_shard = gated
            for seed in range(6):
                service.submit(wall_cloud(seed))
            gate.set()
            service.flush()
            coalesced = service.metrics.counter(
                "shard.batches_coalesced"
            ).value
            assert coalesced > 0
        finally:
            service.close()
