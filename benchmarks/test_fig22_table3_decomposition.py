"""Figure 22 + Table 3: OctoCache runtime decomposition and queue overhead.

Figure 22's findings: cache insertion is several times faster than the
octree updates it replaces (2.57–5.85× in the paper); thread 2's octree
update shrinks to a small fraction of OctoMap's octree work (9.7–23.8%);
and the voxel count written to the octree drops sharply.  Table 3 adds
that buffer enqueue/dequeue overhead is negligible.

Regenerated on all three datasets with both the serial pipeline (stage
shares) and the real two-thread pipeline (queue overhead).
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import run_construction, suggest_cache_config

from .conftest import BENCH_DEPTH, BENCH_MAX_BATCHES, pipeline_factory

RESOLUTION = 0.2


def test_fig22_table3_decomposition(benchmark, all_datasets, emit):
    def run():
        results = []
        for dataset in all_datasets:
            config = suggest_cache_config(dataset, RESOLUTION, BENCH_DEPTH)
            vanilla = run_construction(
                dataset,
                RESOLUTION,
                pipeline_factory("octomap", dataset),
                depth=BENCH_DEPTH,
                max_batches=BENCH_MAX_BATCHES,
            )
            parallel = run_construction(
                dataset,
                RESOLUTION,
                pipeline_factory("octocache_parallel", dataset, cache_config=config),
                depth=BENCH_DEPTH,
                max_batches=BENCH_MAX_BATCHES,
            )
            results.append((dataset.name, vanilla, parallel))
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    fig22_rows = []
    table3_rows = []
    for name, vanilla, parallel in results:
        stages = parallel.stage_seconds
        fig22_rows.append(
            [
                name,
                f"{vanilla.stage_seconds.get('octree_update', 0.0):.2f}",
                f"{vanilla.octree_voxels_written}",
                f"{stages.get('cache_insertion', 0.0):.2f}",
                f"{stages.get('cache_eviction', 0.0):.2f}",
                f"{stages.get('octree_update', 0.0):.2f}",
                f"{parallel.octree_voxels_written}",
                f"{stages.get('thread1_wait', 0.0):.2f}",
            ]
        )
        table3_rows.append(
            [
                name,
                f"{stages.get('ray_tracing', 0.0):.3f}",
                f"{stages.get('cache_insertion', 0.0):.3f}",
                f"{stages.get('cache_eviction', 0.0):.3f}",
                f"{stages.get('octree_update', 0.0):.3f}",
                f"{stages.get('enqueue', 0.0):.4f}",
            ]
        )
    emit(
        "fig22_runtime_decomposition",
        format_table(
            [
                "dataset",
                "OctoMap octree(s)",
                "OctoMap voxels",
                "cache insert(s)",
                "cache evict(s)",
                "octree t2(s)",
                "OctoCache voxels",
                "t1 wait(s)",
            ],
            fig22_rows,
        ),
    )
    emit(
        "table3_queue_overhead",
        format_table(
            [
                "dataset",
                "ray tracing(s)",
                "cache insertion(s)",
                "cache eviction(s)",
                "octree update(s)",
                "enqueue(s)",
            ],
            table3_rows,
        ),
    )

    for name, vanilla, parallel in results:
        stages = parallel.stage_seconds
        octomap_octree = vanilla.stage_seconds["octree_update"]
        cache_insert = stages["cache_insertion"]
        # Fig 22: cache insertion is faster than the octree update it
        # replaces (paper 2.57-5.85x; asserted > 1.5x).
        assert octomap_octree / cache_insert > 1.5, (name, octomap_octree, cache_insert)
        # Fig 22: thread 2's octree update is a fraction of OctoMap's.
        # (0.95 rather than the paper's 10-24%: the low-overlap campus
        # dataset keeps most voxels flowing to the octree.)
        assert stages["octree_update"] < 0.95 * octomap_octree, name
        # Fig 22: the octree receives far fewer voxel writes.
        assert parallel.octree_voxels_written < 0.75 * vanilla.octree_voxels_written
        # Table 3: queue overhead is negligible (<5% of the total).
        queue_overhead = stages.get("enqueue", 0.0)
        assert queue_overhead < 0.05 * parallel.total_seconds, name
