"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_construct_defaults(self):
        args = build_parser().parse_args(["construct"])
        assert args.dataset == "fr079_corridor"
        assert args.pipeline == "octocache"

    def test_rejects_unknown_pipeline(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["construct", "--pipeline", "magic"])

    def test_mission_options(self):
        args = build_parser().parse_args(
            ["mission", "--environment", "farm", "--uav", "spark"]
        )
        assert args.environment == "farm"
        assert args.uav == "spark"

    def test_serve_bench_defaults(self):
        args = build_parser().parse_args(["serve-bench"])
        assert args.shards == 4
        assert args.clients == 8
        assert args.backpressure == "block"
        assert not args.verify

    def test_serve_bench_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve-bench", "--backpressure", "nope"])

    def test_trace_bench_defaults(self):
        args = build_parser().parse_args(["trace-bench"])
        assert args.batches == 6
        assert args.shards == 2
        assert args.trace_out is None
        assert args.chrome_trace is None

    def test_trace_bench_output_paths(self):
        args = build_parser().parse_args(
            ["trace-bench", "--trace-out", "p.json", "--chrome-trace", "t.json"]
        )
        assert args.trace_out == "p.json"
        assert args.chrome_trace == "t.json"


class TestCommands:
    def test_stats_runs(self, capsys):
        code = main(
            ["stats", "--dataset", "fr079_corridor", "--resolution", "0.4"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "duplication ratio" in out

    def test_construct_runs(self, capsys):
        code = main(
            [
                "construct",
                "--dataset",
                "fr079_corridor",
                "--resolution",
                "0.4",
                "--batches",
                "3",
                "--ray-scale",
                "0.3",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "cache hit ratio" in out

    def test_ordering_runs(self, capsys):
        code = main(["ordering", "--keys", "1500", "--resolution", "0.4"])
        assert code == 0
        out = capsys.readouterr().out
        assert "morton" in out

    def test_mission_runs(self, capsys):
        code = main(
            [
                "mission",
                "--environment",
                "room",
                "--pipeline",
                "octocache",
                "--max-cycles",
                "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "reached goal" in out

    def test_serve_bench_runs(self, capsys):
        code = main(
            [
                "serve-bench",
                "--shards",
                "2",
                "--clients",
                "2",
                "--batches",
                "4",
                "--resolution",
                "0.4",
                "--ray-scale",
                "0.3",
                "--queries-per-scan",
                "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "p99" in out  # latency percentiles
        assert "queue_depth" in out
        assert "hit ratio" in out

    def test_serve_bench_json(self, capsys):
        code = main(
            [
                "serve-bench",
                "--shards",
                "2",
                "--clients",
                "2",
                "--batches",
                "2",
                "--resolution",
                "0.4",
                "--ray-scale",
                "0.3",
                "--json",
            ]
        )
        assert code == 0
        import json

        stats = json.loads(capsys.readouterr().out)
        assert "metrics" in stats
        assert len(stats["shards"]) == 2

    def test_trace_bench_runs_and_exports(self, capsys, tmp_path):
        profile_path = tmp_path / "profile.json"
        trace_path = tmp_path / "out.trace.json"
        code = main(
            [
                "trace-bench",
                "--batches",
                "2",
                "--ray-scale",
                "0.3",
                "--depth",
                "9",
                "--trace-out",
                str(profile_path),
                "--chrome-trace",
                str(trace_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "categories traced" in out
        assert "simcache" in out
        assert "cache_insertion" in out
        assert "MISMATCH" not in out
        import json

        profile = json.loads(profile_path.read_text())
        assert profile["coverage"] >= 0.95
        trace = json.loads(trace_path.read_text())
        assert trace["traceEvents"]
