"""Tests for the sharded occupancy map: consistency with the serial map."""

import numpy as np
import pytest

from repro.core.config import CacheConfig
from repro.core.octocache import OctoCacheMap
from repro.octree.merge import map_agreement
from repro.sensor.pointcloud import PointCloud
from repro.sensor.scaninsert import trace_scan
from repro.service.sharded_map import ShardedMap

RES = 0.2
DEPTH = 8


def wall_cloud(seed=0, points=60):
    rng = np.random.default_rng(seed)
    pts = np.column_stack(
        [
            np.full(points, 3.0),
            rng.uniform(-2, 2, points),
            rng.uniform(0.2, 2, points),
        ]
    )
    return PointCloud(pts, origin=(0.0, 0.0, 1.0))


def traced(cloud):
    return trace_scan(cloud, RES, DEPTH, max_range=10.0)


class TestShardedConsistency:
    @pytest.mark.parametrize("num_shards", [1, 2, 4])
    def test_queries_match_serial_map(self, num_shards):
        serial = OctoCacheMap(resolution=RES, depth=DEPTH, max_range=10.0)
        sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=num_shards, max_range=10.0
        )
        for seed in range(3):
            batch = traced(wall_cloud(seed))
            serial.insert_batch(batch)
            sharded.insert_observations(batch.observations)
        for key in traced(wall_cloud(0)).unique_keys():
            assert sharded.query_key(key) == pytest.approx(
                serial.query_key(key)
            )

    def test_snapshot_agrees_with_serial_build(self):
        serial = OctoCacheMap(resolution=RES, depth=DEPTH, max_range=10.0)
        sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=4, max_range=10.0
        )
        for seed in range(4):
            batch = traced(wall_cloud(seed))
            serial.insert_batch(batch)
            sharded.insert_observations(batch.observations)
        serial.finalize()
        snapshot = sharded.snapshot()
        report = map_agreement(serial.octree, snapshot)
        assert report.missing == 0
        assert report.decision_agreement == 1.0
        # Symmetric: the snapshot holds nothing the serial map lacks.
        reverse = map_agreement(snapshot, serial.octree)
        assert reverse.missing == 0
        assert reverse.decision_agreement == 1.0

    def test_snapshot_sees_cache_resident_voxels(self):
        """Snapshot must include voxels not yet evicted to any octree."""
        sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=2, max_range=10.0
        )
        batch = traced(wall_cloud())
        sharded.insert_observations(batch.observations)
        assert sharded.octree_nodes() >= 0  # octrees may be empty...
        snapshot = sharded.snapshot()
        for key in batch.unique_keys():  # ...but the snapshot answers.
            assert snapshot.search(key) is not None

    def test_insert_point_cloud_traces_once(self):
        sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=2, max_range=10.0
        )
        record = sharded.insert_point_cloud(wall_cloud())
        assert record.observations > 0
        assert record.shard_busy  # at least one shard did work
        assert record.modeled_cost <= record.serialized_cost + 1e-12


class TestShardedQueries:
    def setup_method(self):
        self.sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=4, max_range=10.0
        )
        self.sharded.insert_point_cloud(wall_cloud())

    def test_is_occupied_at_wall(self):
        # The wall plane at x=3 must contain occupied voxels.
        hits = sum(
            self.sharded.is_occupied((3.05, y, 1.0)) is True
            for y in np.linspace(-1.5, 1.5, 13)
        )
        assert hits > 0

    def test_free_space_near_origin(self):
        value = self.sharded.query((0.5, 0.0, 1.0))
        assert value is not None
        assert not self.sharded.params.is_occupied(value)

    def test_unknown_far_away(self):
        assert self.sharded.is_occupied((-20.0, -20.0, -20.0)) is None

    def test_cast_ray_hits_wall(self):
        # Aim straight down an occupied voxel's row so the ray cannot slip
        # through an unobserved gap in the randomly sampled wall.
        keys = self.sharded.occupied_in_box((2.5, -2.0, 0.2), (3.5, 2.0, 2.0))
        assert keys
        target = self.sharded._coord_of(keys[0])
        hit = self.sharded.cast_ray(
            (0.0, target[1], target[2]), (1.0, 0.0, 0.0), max_range=8.0
        )
        assert hit.hit
        assert hit.endpoint[0] == pytest.approx(3.0, abs=4 * RES)

    def test_cast_ray_misses_into_free_space(self):
        hit = self.sharded.cast_ray(
            (0.0, 0.0, 1.0), (-1.0, 0.0, 0.0), max_range=4.0
        )
        assert not hit.hit

    def test_cast_ray_respects_unknown_blocking(self):
        hit = self.sharded.cast_ray(
            (0.0, 0.0, 1.0),
            (0.0, 0.0, -1.0),
            max_range=30.0,
            ignore_unknown=False,
        )
        assert not hit.hit
        assert hit.blocked_by_unknown

    def test_cast_ray_clamps_to_map_boundary(self):
        # Range far beyond the map cube must not raise.
        hit = self.sharded.cast_ray(
            (0.0, 0.0, 1.0), (-1.0, -1.0, 0.0), max_range=1e6
        )
        assert not hit.hit

    def test_occupied_in_box_finds_wall_and_respects_cache(self):
        keys = self.sharded.occupied_in_box((2.5, -2.0, 0.2), (3.5, 2.0, 2.0))
        assert keys
        # Every reported key queries as occupied through the normal path.
        for key in keys[:10]:
            assert self.sharded.params.is_occupied(self.sharded.query_key(key))

    def test_occupied_in_box_matches_after_finalize(self):
        before = self.sharded.occupied_in_box(
            (2.5, -2.0, 0.2), (3.5, 2.0, 2.0)
        )
        self.sharded.finalize()
        after = self.sharded.occupied_in_box((2.5, -2.0, 0.2), (3.5, 2.0, 2.0))
        assert before == after


class TestLifecycle:
    def test_context_manager_flushes(self):
        with ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=2, max_range=10.0
        ) as sharded:
            sharded.insert_point_cloud(wall_cloud())
        assert sharded.resident_voxels() == 0
        assert sharded.octree_nodes() > 0

    def test_tiny_cache_forces_eviction_and_stays_consistent(self):
        config = CacheConfig(num_buckets=8, bucket_threshold=1)
        serial = OctoCacheMap(
            resolution=RES, depth=DEPTH, max_range=10.0, cache_config=config
        )
        sharded = ShardedMap(
            resolution=RES,
            depth=DEPTH,
            num_shards=3,
            max_range=10.0,
            cache_config=config,
        )
        for seed in range(3):
            batch = traced(wall_cloud(seed))
            serial.insert_batch(batch)
            sharded.insert_observations(batch.observations)
        serial.finalize()
        report = map_agreement(serial.octree, sharded.snapshot())
        assert report.missing == 0
        assert report.decision_agreement == 1.0

    def test_hit_ratios_per_shard(self):
        sharded = ShardedMap(
            resolution=RES, depth=DEPTH, num_shards=2, max_range=10.0
        )
        sharded.insert_point_cloud(wall_cloud())
        sharded.insert_point_cloud(wall_cloud())  # revisit: hits expected
        ratios = sharded.hit_ratios()
        assert len(ratios) == 2
        assert any(ratio > 0 for ratio in ratios)
