"""Figures 7–8: inter-batch voxel overlap along the scan trajectory.

The paper's CDF shows two datasets above 80% overlap with the previous 3
batches and the sparse Freiburg campus dropping to ~40%.  The asserted
shape: overlap is substantial everywhere, and campus is the low-overlap
outlier of the three.
"""

import numpy as np
import pytest

from repro.analysis.report import format_table
from repro.datasets.generator import DATASET_NAMES, make_dataset
from repro.datasets.overlap import overlap_cdf, overlap_ratios

from .conftest import BENCH_DEPTH

RESOLUTION = 0.3


@pytest.fixture(scope="module")
def dense_datasets():
    """Full-density trajectories: overlap is a property of *step length
    relative to sensing range*, so this figure needs the scale-1.0 pose
    spacing (the construction benchmarks can use sparser, cheaper data)."""
    return [make_dataset(name, scale=1.0) for name in DATASET_NAMES]


def test_fig08_overlap_cdf(benchmark, dense_datasets, emit):
    def run():
        return {
            dataset.name: overlap_ratios(
                dataset, RESOLUTION, BENCH_DEPTH, window=3
            )
            for dataset in dense_datasets
        }

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for name, series in ratios.items():
        arr = np.asarray(series)
        rows.append(
            [
                name,
                len(series),
                f"{np.median(arr):.2f}",
                f"{arr.mean():.2f}",
                f"{(arr > 0.8).mean() * 100:.0f}%",
            ]
        )
    emit(
        "fig08_overlap_summary",
        format_table(
            ["dataset", "batches", "median", "mean", ">80% overlap"], rows
        ),
    )

    cdf_rows = []
    grid = [0.0, 0.2, 0.4, 0.6, 0.8, 1.0]
    for name, series in ratios.items():
        for threshold, fraction in overlap_cdf(series, grid):
            cdf_rows.append([name, f"{threshold:.1f}", f"{fraction:.2f}"])
    emit(
        "fig08_overlap_cdf",
        format_table(["dataset", "overlap <=", "CDF"], cdf_rows),
    )

    medians = {name: float(np.median(series)) for name, series in ratios.items()}
    # Campus is the low-overlap outlier (the paper's 40% dataset).
    assert medians["freiburg_campus"] == min(medians.values())
    # The dense trajectories overlap heavily.
    assert medians["fr079_corridor"] > 0.4
    assert medians["new_college"] > 0.4
